//! # sparqlog
//!
//! An analytical toolkit for large SPARQL query logs, reproducing the system
//! behind *"An Analytical Study of Large SPARQL Query Logs"* (Bonifati,
//! Martens, Timm; VLDB 2017).
//!
//! # Workspace layout
//!
//! This umbrella crate re-exports the individual workspace crates (each a
//! member under `crates/`) so that a downstream user can depend on a single
//! crate:
//!
//! * [`parser`] — SPARQL 1.1 lexer, AST, recursive-descent parser and the
//!   canonical serializer used for duplicate elimination.
//! * [`algebra`] — shallow analysis (keywords, triples, operator sets,
//!   projection), query fragments (CQ, CPF, CQF, AOF, well-designed, CQOF)
//!   and the single-pass [`algebra::QueryWalk`] every measure is derived
//!   from.
//! * [`graph`] — canonical graph / hypergraph construction, shape
//!   classification, treewidth and generalized hypertree width.
//! * [`paths`] — property-path taxonomy and C_tract tractability test.
//! * [`store`] — an in-memory RDF store with a binary-join and a
//!   worst-case-optimal trie-join engine.
//! * [`gmark`] — a schema-driven graph and query-workload generator.
//! * [`synth`] — a per-dataset calibrated SPARQL query-log synthesizer.
//! * [`streaks`] — Levenshtein-based streak detection over query logs.
//! * [`core`] — the corpus pipeline (parallel ingestion, the single-pass
//!   analysis engine, report drivers).
//! * [`shard`] — multi-process sharded analysis: the binary snapshot codec,
//!   the `sparqlog-shard-worker` mode, the reusable worker supervision
//!   layer (heartbeats, stall detection) and the coordinator that merges
//!   per-process snapshots into reports byte-identical to the
//!   single-process engine's.
//! * [`serve`] — the long-running analysis daemon: TCP/Unix-socket
//!   sessions submit jobs, a supervised worker pool restarts and
//!   reassigns dead workers, and incremental reports stream back to any
//!   number of concurrent clients.
//! * [`obs`] — dependency-free metrics and tracing: lock-free counters,
//!   gauges and mergeable log-linear latency histograms behind a global
//!   registry, plus the structured event-journal schema
//!   ([`obs::EventRecord`]). Disabled (`SPARQLOG_METRICS=0`) it costs one
//!   relaxed atomic load per instrumentation point and never touches the
//!   clock; reports stay byte-identical either way.
//! * [`persist`] — the crash-safe snapshot store behind `--store`:
//!   checksummed append-only records, explicit commit points, fsync
//!   discipline, and a recovery scan that truncates torn tails and names
//!   exactly what was dropped. [`core::analyze_files_incremental`] and
//!   the serve daemon use it to re-serve settled work without
//!   re-analysis (warm starts, resubmission dedup).
//!
//! Offline shims for the third-party dependencies live under `vendor/` (see
//! `vendor/README.md`), and `crates/bench` hosts one harness binary per
//! table/figure of the paper plus criterion micro-benchmarks.
//!
//! # The fused streaming pipeline
//!
//! The corpus pipeline touches each query's AST exactly once, never
//! materializes what it can stream, and analyses each batch as it parses
//! ([`core::fused`]):
//!
//! 1. [`core::corpus::analyze_streams`] pulls batches of raw entries from
//!    [`core::corpus::LogReader`]s (in-memory or buffered line-oriented
//!    files whose line boundaries are found a machine word at a time) and,
//!    per entry, parses, hashes the canonical form into a 128-bit
//!    fingerprint *without building the canonical string*
//!    ([`parser::CanonicalHasher`]) and resolves the occurrence against a
//!    lock-free per-worker map: a first occurrence is analysed on the spot
//!    and memoized in the [`core::cache::AnalysisCache`], a duplicate's AST
//!    is dropped inside its batch — peak memory is O(in-flight batches +
//!    distinct analyses), not O(corpus).
//! 2. [`core::QueryAnalysis`] runs one [`algebra::QueryWalk`] per distinct
//!    canonical form — one traversal feeding features, projection, property
//!    paths and the AOF pattern tree — and one canonical-graph construction
//!    shared by the shape, treewidth, girth and constants-excluded analyses.
//! 3. The **occurrence-weighted fold**
//!    ([`core::DatasetAnalysis::add_times`]) turns per-log
//!    [`core::LogSummary`] records (counts + fingerprint/occurrence pairs)
//!    into the corpus analysis: the Unique population folds each distinct
//!    fingerprint once per log, the Valid population folds occurrence
//!    counts. Results are bit-identical for any worker count or batch
//!    schedule (see `tests/determinism.rs`, `tests/fused.rs`).
//!
//! The staged two-phase pipeline ([`core::corpus::ingest_streams`] then
//! [`core::CorpusAnalysis::analyze`]) survives as the differential baseline
//! and for callers who need the parsed ASTs; the seed's multi-walk analysis
//! path survives in [`core::baseline`] and the materializing ingest path as
//! [`core::corpus::ingest`] / [`core::corpus::ingest_all_materializing`] —
//! the references for the differential tests (`tests/differential.rs`,
//! `tests/streaming.rs`, `tests/fused.rs`) and the `ablation_*` harnesses.
//!
//! # Quickstart
//!
//! Run `cargo run --example quickstart` for the full tour, or start with:
//!
//! ```
//! use sparqlog::algebra::QueryFeatures;
//! use sparqlog::core::analysis::Population;
//! use sparqlog::core::corpus::{analyze_streams, LogReader, MemoryLogReader};
//! use sparqlog::core::report;
//! use sparqlog::parser::parse_query;
//!
//! // Per-query analysis.
//! let q = parse_query(
//!     "SELECT ?s WHERE { ?s <http://xmlns.com/foaf/0.1/name> ?n . FILTER(lang(?n) = 'en') }",
//! ).expect("valid SPARQL");
//! let feats = QueryFeatures::of(&q);
//! assert_eq!(feats.triple_patterns, 1);
//! assert!(feats.uses_filter);
//!
//! // Corpus analysis on the fused engine: each batch is parsed,
//! // fingerprinted, deduplicated and folded in one pass — no AST outlives
//! // its batch. FileLogReader streams `\n`-terminated logs straight from
//! // disk the same way.
//! let readers: Vec<Box<dyn LogReader>> = vec![Box::new(MemoryLogReader::new(
//!     "example",
//!     vec![
//!         "SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string(),
//!         "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }".to_string(),
//!         "not a query".to_string(),
//!     ],
//! ))];
//! let fused = analyze_streams(readers, Population::Unique).expect("in-memory streams");
//! assert_eq!(fused.summaries[0].counts.valid, 2);
//! assert_eq!(fused.corpus.combined.counts.valid, 2);
//! assert_eq!(fused.corpus.combined.cycle_lengths.get(&3), Some(&1));
//! // Malformed entries are structured data, not exceptions: the third
//! // entry lands in the per-log error tally and the report's error table.
//! assert_eq!(fused.summaries[0].errors.count(sparqlog::parser::ErrorKind::Syntax), 1);
//! println!("{}", report::table1(&fused.corpus));
//! ```
//!
//! Logs are rarely clean, so the error model is first-class
//! ([`core::recover`]): every per-entry failure is classified
//! ([`parser::ErrorKind`]: lex / syntax / invalid-utf8 / oversize-entry /
//! depth-exceeded / worker-panic), tallied per log
//! ([`core::ErrorTally`]), and governed by a
//! [`core::RecoveryPolicy`] — `strict` aborts on defects with the log
//! and line named, `lenient` recovers and tallies everything,
//! `budget:<n>` tolerates `n` defects per 10k entries — honoured
//! identically by the fused, staged, sharded and served engines
//! (`--recovery` / `SPARQLOG_RECOVERY`; `tests/robustness.rs` and the
//! `tests/fuzz_recovery.rs` fuzz harness hold the byte-identity line).
//!
//! # Sharding across processes
//!
//! The fused engine's commutative merge layer ([`core::LogSummary`],
//! [`core::DatasetAnalysis`] merges, [`core::cache::AnalysisCache`]) is a
//! real distribution boundary: the [`shard`] coordinator partitions a
//! corpus of on-disk logs across N `sparqlog-shard-worker` processes,
//! decodes their framed binary snapshots (a dependency-free varint codec
//! with an explicit version byte), and merges them into a report **byte-
//! identical** to the single-process fused engine's at any shard count ×
//! worker-thread matrix (`tests/shard.rs`, the `ablation_shard` gate):
//!
//! ```no_run
//! use sparqlog::core::{report, Population};
//! use sparqlog::shard::{analyze_sharded, LogSpec, ShardOptions, WorkerCommand};
//!
//! let logs = vec![
//!     LogSpec::new("DBpedia15", "logs/dbpedia15.log"),
//!     LogSpec::new("WikiData17", "logs/wikidata17.log"),
//! ];
//! let mut options = ShardOptions::new(WorkerCommand::resolve_default()?);
//! options.shards = 4;
//! let sharded = analyze_sharded(&logs, Population::Unique, &options)?;
//! println!("{}", report::table1(&sharded.corpus));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # The analysis service
//!
//! The same supervision layer powers a long-running daemon
//! ([`serve`], the `sparqlog-serve` / `sparqlog-client` binaries): jobs
//! arrive over a socket, partitions fan out to supervised worker
//! processes (heartbeat liveness, bounded-backoff restarts,
//! reassignment without double-counting), and a complete job's report is
//! byte-identical to the in-process engine's:
//!
//! ```no_run
//! use sparqlog::core::{Population, RecoveryPolicy};
//! use sparqlog::serve::{Client, ServeAddr};
//! use std::time::Duration;
//!
//! let addr = ServeAddr::Tcp("127.0.0.1:7878".to_string());
//! let mut client = Client::connect(&addr)?;
//! let (job, _partitions) = client.submit(
//!     Population::Unique,
//!     RecoveryPolicy::Lenient, // tally malformed entries instead of failing
//!     vec![("DBpedia15".to_string(), "logs/dbpedia15.log".to_string())],
//! )?;
//! client.wait_settled(job, Duration::from_secs(600))?;
//! println!("{}", client.report(job, true)?.text);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use sparqlog_algebra as algebra;
pub use sparqlog_core as core;
pub use sparqlog_gmark as gmark;
pub use sparqlog_graph as graph;
pub use sparqlog_obs as obs;
pub use sparqlog_parser as parser;
pub use sparqlog_paths as paths;
pub use sparqlog_persist as persist;
pub use sparqlog_serve as serve;
pub use sparqlog_shard as shard;
pub use sparqlog_store as store;
pub use sparqlog_streaks as streaks;
pub use sparqlog_synth as synth;
