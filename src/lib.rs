//! # sparqlog
//!
//! An analytical toolkit for large SPARQL query logs, reproducing the system
//! behind *"An Analytical Study of Large SPARQL Query Logs"* (Bonifati,
//! Martens, Timm; VLDB 2017).
//!
//! # Workspace layout
//!
//! This umbrella crate re-exports the individual workspace crates (each a
//! member under `crates/`) so that a downstream user can depend on a single
//! crate:
//!
//! * [`parser`] — SPARQL 1.1 lexer, AST, recursive-descent parser and the
//!   canonical serializer used for duplicate elimination.
//! * [`algebra`] — shallow analysis (keywords, triples, operator sets,
//!   projection), query fragments (CQ, CPF, CQF, AOF, well-designed, CQOF)
//!   and the single-pass [`algebra::QueryWalk`] every measure is derived
//!   from.
//! * [`graph`] — canonical graph / hypergraph construction, shape
//!   classification, treewidth and generalized hypertree width.
//! * [`paths`] — property-path taxonomy and C_tract tractability test.
//! * [`store`] — an in-memory RDF store with a binary-join and a
//!   worst-case-optimal trie-join engine.
//! * [`gmark`] — a schema-driven graph and query-workload generator.
//! * [`synth`] — a per-dataset calibrated SPARQL query-log synthesizer.
//! * [`streaks`] — Levenshtein-based streak detection over query logs.
//! * [`core`] — the corpus pipeline (parallel ingestion, the single-pass
//!   analysis engine, report drivers).
//!
//! Offline shims for the third-party dependencies live under `vendor/` (see
//! `vendor/README.md`), and `crates/bench` hosts one harness binary per
//! table/figure of the paper plus criterion micro-benchmarks.
//!
//! # The streaming single-pass pipeline
//!
//! The corpus pipeline touches each query's AST exactly once and never
//! materializes what it can stream:
//!
//! 1. [`core::corpus::ingest_streams`] pulls batches of raw entries from
//!    [`core::corpus::LogReader`]s (in-memory or buffered line-oriented
//!    files), parses them on a self-scheduling worker pool, and
//!    deduplicates by hashing each query's canonical form into a 128-bit
//!    fingerprint *without building the canonical string*
//!    ([`parser::CanonicalHasher`]); duplicate elimination runs on
//!    fingerprint-range shards merged commutatively.
//!    [`core::corpus::ingest_all`] applies the same streaming semantics to
//!    borrowed `&[RawLog]` input, parsing entries in place.
//! 2. [`core::QueryAnalysis`] runs one [`algebra::QueryWalk`] per query —
//!    one traversal feeding features, projection, property paths and the AOF
//!    pattern tree — and one canonical-graph construction shared by the
//!    shape, treewidth, girth and constants-excluded analyses.
//! 3. [`core::CorpusAnalysis::analyze`] folds the per-query records into
//!    per-dataset tallies on a work-stealing pool bounded by the available
//!    cores; results are bit-identical for any worker count or chunk
//!    schedule (see `tests/determinism.rs`).
//!
//! The seed's multi-walk analysis path survives in [`core::baseline`] and
//! the materializing ingest path as [`core::corpus::ingest`] /
//! [`core::corpus::ingest_all_materializing`] — the references for the
//! differential tests (`tests/differential.rs`, `tests/streaming.rs`) and
//! the `single_pass` / `ablation_streaming` harnesses.
//!
//! # Quickstart
//!
//! Run `cargo run --example quickstart` for the full tour, or start with:
//!
//! ```
//! use sparqlog::algebra::QueryFeatures;
//! use sparqlog::core::analysis::{CorpusAnalysis, Population};
//! use sparqlog::core::corpus::{ingest_streams, LogReader, MemoryLogReader};
//! use sparqlog::core::report;
//! use sparqlog::parser::parse_query;
//!
//! // Per-query analysis.
//! let q = parse_query(
//!     "SELECT ?s WHERE { ?s <http://xmlns.com/foaf/0.1/name> ?n . FILTER(lang(?n) = 'en') }",
//! ).expect("valid SPARQL");
//! let feats = QueryFeatures::of(&q);
//! assert_eq!(feats.triple_patterns, 1);
//! assert!(feats.uses_filter);
//!
//! // Corpus analysis: stream the logs through the ingestion pipeline
//! // (incremental LogReader feed, parallel parse, zero-materialization
//! // fingerprints, sharded dedup), then analyze and report. FileLogReader
//! // streams `\n`-terminated logs straight from disk the same way.
//! let readers: Vec<Box<dyn LogReader>> = vec![Box::new(MemoryLogReader::new(
//!     "example",
//!     vec![
//!         "SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string(),
//!         "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }".to_string(),
//!         "not a query".to_string(),
//!     ],
//! ))];
//! let logs = ingest_streams(readers).expect("in-memory ingestion cannot fail");
//! let corpus = CorpusAnalysis::analyze(&logs, Population::Unique);
//! assert_eq!(corpus.combined.counts.valid, 2);
//! assert_eq!(corpus.combined.cycle_lengths.get(&3), Some(&1));
//! println!("{}", report::table1(&corpus));
//! ```

pub use sparqlog_algebra as algebra;
pub use sparqlog_core as core;
pub use sparqlog_gmark as gmark;
pub use sparqlog_graph as graph;
pub use sparqlog_parser as parser;
pub use sparqlog_paths as paths;
pub use sparqlog_store as store;
pub use sparqlog_streaks as streaks;
pub use sparqlog_synth as synth;
