//! # sparqlog
//!
//! An analytical toolkit for large SPARQL query logs, reproducing the system
//! behind *"An Analytical Study of Large SPARQL Query Logs"* (Bonifati,
//! Martens, Timm; VLDB 2017).
//!
//! This umbrella crate re-exports the individual workspace crates so that a
//! downstream user can depend on a single crate:
//!
//! * [`parser`] — SPARQL 1.1 lexer, AST and recursive-descent parser.
//! * [`algebra`] — shallow analysis (keywords, triples, operator sets,
//!   projection) and query fragments (CQ, CPF, CQF, AOF, well-designed, CQOF).
//! * [`graph`] — canonical graph / hypergraph construction, shape
//!   classification, treewidth and generalized hypertree width.
//! * [`paths`] — property-path taxonomy and C_tract tractability test.
//! * [`store`] — an in-memory RDF store with a binary-join and a
//!   worst-case-optimal trie-join engine.
//! * [`gmark`] — a schema-driven graph and query-workload generator.
//! * [`synth`] — a per-dataset calibrated SPARQL query-log synthesizer.
//! * [`streaks`] — Levenshtein-based streak detection over query logs.
//! * [`core`] — the corpus pipeline and the per-table/figure report drivers.
//!
//! # Quickstart
//!
//! ```
//! use sparqlog::parser::parse_query;
//! use sparqlog::algebra::QueryFeatures;
//!
//! let q = parse_query(
//!     "SELECT ?s WHERE { ?s <http://xmlns.com/foaf/0.1/name> ?n . FILTER(lang(?n) = 'en') }",
//! ).expect("valid SPARQL");
//! let feats = QueryFeatures::of(&q);
//! assert_eq!(feats.triple_patterns, 1);
//! assert!(feats.uses_filter);
//! ```

pub use sparqlog_algebra as algebra;
pub use sparqlog_core as core;
pub use sparqlog_gmark as gmark;
pub use sparqlog_graph as graph;
pub use sparqlog_parser as parser;
pub use sparqlog_paths as paths;
pub use sparqlog_store as store;
pub use sparqlog_streaks as streaks;
pub use sparqlog_synth as synth;
