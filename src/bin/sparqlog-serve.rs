//! The analysis daemon CLI: listens on a TCP or Unix socket, accepts
//! log-analysis jobs from `sparqlog-client`, and fans them out to a pool
//! of supervised `sparqlog-shard-worker` processes.
//!
//! ```text
//! sparqlog-serve [--tcp ADDR | --unix PATH] [options]
//! ```
//!
//! * `--tcp ADDR`            listen on a TCP address (default `127.0.0.1:7878`;
//!   `127.0.0.1:0` picks an ephemeral port and prints it)
//! * `--unix PATH`           listen on a Unix-domain socket instead
//! * `--slots N`             concurrent worker processes (default: parallelism)
//! * `--workers N`           analysis threads per worker process
//! * `--heartbeat-ms N`      worker liveness heartbeat period (default 200)
//! * `--stall-timeout-ms N`  kill workers silent this long (default: off)
//! * `--max-restarts N`      restarts per partition before the job fails
//! * `--backoff-ms N`        first restart backoff, doubling per attempt
//! * `--outbox N`            per-session response outbox capacity (frames)
//! * `--shed`                shed slow consumers instead of blocking them
//! * `--event-log PATH`      mirror the structured event log to a file
//! * `--store PATH`          persist completed jobs to a crash-safe snapshot
//!   store: settled jobs warm-start after a restart and resubmitted logs
//!   merge from the store without re-analysis
//!
//! Both `--store` and `--event-log` paths are validated writable at
//! startup (the daemon exits nonzero with a clear message rather than
//! failing the first commit hours in).
//!
//! SIGTERM/SIGINT drain gracefully: in-flight jobs finish, new submits are
//! rejected, then the daemon exits.

use sparqlog::serve::{ServeAddr, ServeConfig, Server, SlowConsumerPolicy};
use sparqlog::shard::WorkerCommand;
use std::path::Path;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sparqlog-serve [--tcp ADDR | --unix PATH] [--slots N] [--workers N] \
         [--heartbeat-ms N] [--stall-timeout-ms N] [--max-restarts N] [--backoff-ms N] \
         [--outbox N] [--shed] [--event-log PATH] [--store PATH]"
    );
    std::process::exit(2);
}

/// Fails fast on an unusable `--store`/`--event-log` path: the file must
/// be creatable and appendable *now*, without truncating anything already
/// there. Returns the failure to report.
fn check_writable(what: &str, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(format!(
                "{what} {}: parent directory {} does not exist",
                path.display(),
                parent.display()
            ));
        }
    }
    if path.is_dir() {
        return Err(format!("{what} {}: is a directory", path.display()));
    }
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(_) => Ok(()),
        Err(error) => Err(format!("{what} {}: {error}", path.display())),
    }
}

fn main() {
    let mut addr = ServeAddr::Tcp("127.0.0.1:7878".to_string());
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => match args.next() {
                Some(spec) => addr = ServeAddr::Tcp(spec),
                None => usage(),
            },
            "--unix" => match args.next() {
                Some(path) => addr = ServeAddr::Unix(path.into()),
                None => usage(),
            },
            "--slots" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.worker_slots = n,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.worker_threads = n,
                None => usage(),
            },
            "--heartbeat-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.heartbeat = Duration::from_millis(n),
                None => usage(),
            },
            "--stall-timeout-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(0) => config.stall_timeout = None,
                Some(n) => config.stall_timeout = Some(Duration::from_millis(n)),
                None => usage(),
            },
            "--max-restarts" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_restarts = n,
                None => usage(),
            },
            "--backoff-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.restart_backoff = Duration::from_millis(n),
                None => usage(),
            },
            "--outbox" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.outbox_frames = n,
                None => usage(),
            },
            "--shed" => config.slow_policy = SlowConsumerPolicy::Shed,
            "--event-log" => match args.next() {
                Some(path) => config.event_log_path = Some(path.into()),
                None => usage(),
            },
            "--store" => match args.next() {
                Some(path) => config.store_path = Some(path.into()),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    for (what, path) in [
        ("--store", config.store_path.as_deref()),
        ("--event-log", config.event_log_path.as_deref()),
    ] {
        if let Some(path) = path {
            if let Err(message) = check_writable(what, path) {
                eprintln!("sparqlog-serve: {message}");
                std::process::exit(1);
            }
        }
    }

    config.worker = match WorkerCommand::resolve_default() {
        Ok(worker) => worker,
        Err(error) => {
            eprintln!("sparqlog-serve: {error}");
            std::process::exit(1);
        }
    };

    sparqlog::serve::signal::install();
    let server = match Server::bind(config, &addr) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("sparqlog-serve: bind failed: {error}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(ServeAddr::Tcp(spec)) => eprintln!("sparqlog-serve: listening on tcp {spec}"),
        Ok(ServeAddr::Unix(path)) => {
            eprintln!("sparqlog-serve: listening on unix {}", path.display());
        }
        Err(_) => {}
    }
    if let Err(error) = server.run() {
        eprintln!("sparqlog-serve: {error}");
        std::process::exit(1);
    }
}
