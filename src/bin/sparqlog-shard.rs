//! The shard coordinator CLI: analyses on-disk SPARQL logs across N worker
//! processes and prints the corpus report — byte-identical to the
//! single-process fused engine's.
//!
//! ```text
//! sparqlog-shard [--shards N] [--workers N] [--valid] [--full]
//!                [--recovery POLICY] <label>=<path>...
//! ```
//!
//! * `--shards N`   worker processes (default: `SPARQLOG_SHARDS` env, else
//!   the available parallelism)
//! * `--workers N`  fused-engine threads per worker process
//! * `--valid`      fold the Valid (with-duplicates) population instead of
//!   Unique
//! * `--full`       print the full report (all tables) instead of Table 1
//! * `--recovery POLICY`  how malformed input is handled: `strict`,
//!   `lenient`, or `budget:<n>` (tolerated defects per 10k entries);
//!   default: the `SPARQLOG_RECOVERY` environment, else strict
//!
//! The worker binary (`sparqlog-shard-worker`) is looked up next to this
//! executable, or via the `SPARQLOG_SHARD_WORKER` environment variable.

use sparqlog::core::{report, Population, RecoveryPolicy};
use sparqlog::shard::{analyze_sharded_all, LogSpec, ShardOptions, WorkerCommand};

fn usage() -> ! {
    eprintln!(
        "usage: sparqlog-shard [--shards N] [--workers N] [--valid] [--full] \
         [--recovery strict|lenient|budget:<n>] <label>=<path>..."
    );
    std::process::exit(2);
}

fn main() {
    let mut shards = 0usize;
    let mut worker_threads = 0usize;
    let mut population = Population::Unique;
    let mut recovery = RecoveryPolicy::Auto;
    let mut full = false;
    let mut logs = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => shards = n,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => worker_threads = n,
                None => usage(),
            },
            "--valid" => population = Population::Valid,
            "--recovery" => match args.next().as_deref().and_then(RecoveryPolicy::parse) {
                Some(policy) => recovery = policy,
                None => usage(),
            },
            "--full" => full = true,
            "--help" | "-h" => usage(),
            spec => match spec.split_once('=') {
                Some((label, path)) if !label.is_empty() && !path.is_empty() => {
                    logs.push(LogSpec::new(label, path));
                }
                _ => usage(),
            },
        }
    }
    if logs.is_empty() {
        usage();
    }

    let worker = match WorkerCommand::resolve_default() {
        Ok(worker) => worker,
        Err(error) => {
            eprintln!("sparqlog-shard: {error}");
            std::process::exit(1);
        }
    };
    let options = ShardOptions {
        shards,
        worker_threads,
        worker,
        recovery,
    };
    match analyze_sharded_all(&logs, population, &options) {
        Ok(sharded) => {
            if full {
                println!("{}", report::full_report(&sharded.corpus));
            } else {
                println!("{}", report::table1(&sharded.corpus));
            }
            println!(
                "[{} shards, {} snapshot bytes, cache: {} hits / {} misses]",
                sharded.shards(),
                sharded.snapshot_bytes(),
                sharded.cache.hits,
                sharded.cache.misses
            );
        }
        Err(failure) => {
            // Partial failures list every failed shard, not just the first,
            // so a flaky machine's whole blast radius is visible in one run.
            eprintln!("sparqlog-shard: {} shard(s) failed", failure.errors.len());
            eprintln!("  {:>5}  error", "shard");
            for error in &failure.errors {
                match error.shard() {
                    Some(shard) => eprintln!("  {shard:>5}  {error}"),
                    None => eprintln!("  {:>5}  {error}", "-"),
                }
            }
            std::process::exit(1);
        }
    }
}
