//! The analysis-service client CLI.
//!
//! ```text
//! sparqlog-client [--tcp ADDR | --unix PATH] [--retries N] [--retry-backoff-ms N] <command>
//! ```
//!
//! `--retries N` retries a refused/reset connection with exponential
//! backoff (first delay `--retry-backoff-ms`, default 100 ms, doubling,
//! capped at 2 s) — enough to ride out a daemon restart. Resubmitting the
//! same logs after a restart is idempotent when the daemon runs with
//! `--store`: the work merges from the snapshot store instead of
//! re-running.
//!
//! Commands:
//!
//! * `ping`                          liveness check (prints drain state)
//! * `submit [--valid] [--wait] [--full] [--recovery POLICY] <label>=<path>...`
//!   submit a job (paths resolved on the server); with `--wait`, poll
//!   until it settles and print the report. `POLICY` is `strict`,
//!   `lenient`, or `budget:<n>` (defects per 10k entries); the default
//!   defers to the server's `SPARQLOG_RECOVERY` environment
//! * `status <job>`                  one job's progress
//! * `report <job> [--full]`         the job's (possibly partial) report
//! * `drain`                         ask the server to refuse new jobs
//! * `events [<job>]`                the structured event log
//! * `metrics`                       the server's metric registry in text
//!   exposition format (pipeline, cache, shard, persist, and serve
//!   layers); empty when the server runs with `SPARQLOG_METRICS=0`
//!
//! Exits non-zero when a waited-on or reported job has failed.

use sparqlog::core::{Population, RecoveryPolicy};
use sparqlog::serve::{Client, ClientError, ConnectRetry, JobPhase, ServeAddr};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sparqlog-client [--tcp ADDR | --unix PATH] \
         [--retries N] [--retry-backoff-ms N] \
         (ping | submit [--valid] [--wait] [--full] [--recovery POLICY] \
         <label>=<path>... | \
         status <job> | report <job> [--full] | drain | events [<job>] | metrics)"
    );
    std::process::exit(2);
}

fn fail(error: ClientError) -> ! {
    eprintln!("sparqlog-client: {error}");
    std::process::exit(1);
}

fn main() {
    let mut addr = ServeAddr::Tcp("127.0.0.1:7878".to_string());
    let mut retry = ConnectRetry {
        attempts: 0,
        ..ConnectRetry::default()
    };
    let mut args = std::env::args().skip(1).peekable();
    loop {
        match args.peek().map(String::as_str) {
            Some("--tcp") => {
                args.next();
                match args.next() {
                    Some(spec) => addr = ServeAddr::Tcp(spec),
                    None => usage(),
                }
            }
            Some("--unix") => {
                args.next();
                match args.next() {
                    Some(path) => addr = ServeAddr::Unix(path.into()),
                    None => usage(),
                }
            }
            Some("--retries") => {
                args.next();
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => retry.attempts = n,
                    None => usage(),
                }
            }
            Some("--retry-backoff-ms") => {
                args.next();
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => retry.backoff = Duration::from_millis(n),
                    None => usage(),
                }
            }
            _ => break,
        }
    }
    let Some(command) = args.next() else { usage() };
    let mut client = match Client::connect_with_retry(&addr, &retry) {
        Ok(client) => client,
        Err(error) => fail(error),
    };

    match command.as_str() {
        "ping" => match client.ping() {
            Ok((draining, jobs)) => {
                println!(
                    "pong: {} ({jobs} jobs accepted)",
                    if draining { "draining" } else { "serving" }
                );
            }
            Err(error) => fail(error),
        },
        "submit" => {
            let mut population = Population::Unique;
            let mut recovery = RecoveryPolicy::Auto;
            let mut wait = false;
            let mut full = false;
            let mut logs = Vec::new();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--valid" => population = Population::Valid,
                    "--wait" => wait = true,
                    "--full" => full = true,
                    "--recovery" => match args.next().as_deref().and_then(RecoveryPolicy::parse) {
                        Some(policy) => recovery = policy,
                        None => usage(),
                    },
                    spec => match spec.split_once('=') {
                        Some((label, path)) if !label.is_empty() && !path.is_empty() => {
                            logs.push((label.to_string(), path.to_string()));
                        }
                        _ => usage(),
                    },
                }
            }
            if logs.is_empty() {
                usage();
            }
            let (job, partitions) = match client.submit(population, recovery, logs) {
                Ok(accepted) => accepted,
                Err(error) => fail(error),
            };
            eprintln!("sparqlog-client: job {job} accepted ({partitions} partitions)");
            if !wait {
                println!("{job}");
                return;
            }
            let status = match client.wait_settled(job, Duration::from_secs(24 * 3600)) {
                Ok(status) => status,
                Err(error) => fail(error),
            };
            if status.phase == JobPhase::Failed {
                eprintln!("sparqlog-client: job {job} failed: {}", status.error);
                std::process::exit(1);
            }
            match client.report(job, full) {
                Ok(report) => println!("{}", report.text),
                Err(error) => fail(error),
            }
        }
        "status" => {
            let Some(job) = args.next().and_then(|v| v.parse().ok()) else {
                usage()
            };
            match client.status(job) {
                Ok(status) => {
                    println!(
                        "job {}: {:?} ({}/{} partitions, {} restarts, {} malformed entries){}",
                        status.job,
                        status.phase,
                        status.completed,
                        status.total,
                        status.restarts,
                        status.errors,
                        if status.error.is_empty() {
                            String::new()
                        } else {
                            format!(" — {}", status.error)
                        }
                    );
                    if status.phase == JobPhase::Failed {
                        std::process::exit(1);
                    }
                }
                Err(error) => fail(error),
            }
        }
        "report" => {
            let Some(job) = args.next().and_then(|v| v.parse().ok()) else {
                usage()
            };
            let full = matches!(args.next().as_deref(), Some("--full"));
            match client.report(job, full) {
                Ok(report) => {
                    if !report.complete {
                        eprintln!(
                            "sparqlog-client: partial report ({}/{} partitions)",
                            report.completed, report.total
                        );
                    }
                    println!("{}", report.text);
                }
                Err(error) => fail(error),
            }
        }
        "drain" => match client.drain() {
            Ok(()) => println!("draining"),
            Err(error) => fail(error),
        },
        "events" => {
            let job = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            match client.events(job) {
                Ok(lines) => {
                    for line in lines {
                        println!("{line}");
                    }
                }
                Err(error) => fail(error),
            }
        }
        "metrics" => match client.metrics() {
            Ok((snapshot, text)) => {
                if snapshot.is_empty() {
                    eprintln!("sparqlog-client: no metrics (server runs with metrics disabled?)");
                }
                print!("{text}");
            }
            Err(error) => fail(error),
        },
        _ => usage(),
    }
}
