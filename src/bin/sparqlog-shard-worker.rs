//! The shard worker binary: analyses its assigned partition of logs with
//! the fused single-pass engine and writes a framed binary snapshot to
//! stdout, to be consumed by the shard coordinator
//! (`sparqlog_shard::coordinator`, or the `sparqlog-shard` CLI).
//!
//! Invoked by the coordinator with
//! `--shard N --population unique|valid [--workers N] --log <index> <label> <path>...`;
//! see `sparqlog_shard::worker` for the full contract.

fn main() {
    std::process::exit(sparqlog_shard::worker::run_cli(std::env::args().skip(1)));
}
