//! The Section 5.1 experiment in miniature: generate a Bib graph and compare
//! a binary-join engine against a worst-case-optimal trie-join engine on
//! chain and cycle workloads.
//!
//! Run with `cargo run --release --example chain_vs_cycle`.

use sparqlog::gmark::{
    generate_graph, generate_workload, GraphConfig, QueryShape, Schema, WorkloadConfig,
};
use sparqlog::store::{BinaryJoinEngine, QueryEngine, QueryMode, TrieJoinEngine};
use std::time::Duration;

fn main() {
    let schema = Schema::bib();
    let graph = generate_graph(
        &schema,
        GraphConfig {
            nodes: 5_000,
            seed: 1,
        },
    );
    let store = graph.to_store();
    println!(
        "Bib graph: {} nodes, {} triples\n",
        graph.node_count(),
        store.len()
    );

    let binary = BinaryJoinEngine::new();
    let trie = TrieJoinEngine::new();
    let timeout = Duration::from_millis(500);

    println!(
        "{:<10} {:>6} {:>16} {:>16}",
        "workload", "len", "binary-join(ns)", "trie-join(ns)"
    );
    for shape in [QueryShape::Chain, QueryShape::Cycle] {
        for len in 3..=6 {
            let wl = generate_workload(
                &schema,
                WorkloadConfig {
                    shape,
                    length: len,
                    count: 5,
                    seed: 11 + len as u64,
                },
            );
            let avg = |engine: &dyn QueryEngine| {
                let mut total = 0u64;
                for q in &wl.queries {
                    let out = engine.evaluate(&store, q, QueryMode::Ask, timeout);
                    total += if out.timed_out {
                        timeout.as_nanos() as u64
                    } else {
                        out.elapsed_ns
                    };
                }
                total / wl.queries.len() as u64
            };
            println!(
                "{:<10} {:>6} {:>16} {:>16}",
                shape.label(),
                len,
                avg(&binary),
                avg(&trie)
            );
        }
    }
    println!("\nCycles are disproportionately expensive for the binary-join engine,");
    println!("mirroring the PostgreSQL-vs-Blazegraph gap reported in Figure 3 of the paper.");
}
