//! Classify the structure of a SPARQL query given on the command line (or a
//! built-in flower-shaped example): fragment, canonical-graph shape,
//! treewidth and — for variable-predicate queries — hypertree width.
//!
//! Run with
//! `cargo run --example shape_of_query -- 'SELECT * WHERE { ?a <p> ?b . ?b <p> ?a }'`

use sparqlog::graph::StructuralReport;
use sparqlog::parser::parse_query;

fn main() {
    let arg = std::env::args().nth(1);
    let text = arg.unwrap_or_else(|| {
        // A flower: a central node with a petal and two stamens.
        "SELECT * WHERE { ?x <http://p> ?a . ?a <http://p> ?t . ?x <http://p> ?b . ?b <http://p> ?t . \
         ?x <http://q> ?s1 . ?x <http://q> ?s2 }"
            .to_string()
    });
    let query = match parse_query(&text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("not a valid SPARQL query: {e}");
            std::process::exit(1);
        }
    };
    let report = StructuralReport::of(&query);
    println!("triples:        {}", report.triples);
    println!(
        "fragment:       AOF={} CQ={} CQF={} CQOF={}",
        report.fragments.aof, report.fragments.cq, report.fragments.cqf, report.fragments.cqof
    );
    match &report.shape {
        Some(shape) => {
            println!("shape:          {:?}", shape.primary());
            println!(
                "  chain={} star={} tree={} forest={} cycle={} flower={} flower_set={}",
                shape.chain,
                shape.star,
                shape.tree,
                shape.forest,
                shape.cycle,
                shape.flower,
                shape.flower_set
            );
            println!("treewidth:      {:?}", report.treewidth);
            println!("shortest cycle: {:?}", report.shortest_cycle);
        }
        None => println!("shape:          (not a CQ-like query without variable predicates)"),
    }
    if let Some(ht) = report.hypertree {
        println!(
            "hypertree:      width {} with {} decomposition nodes",
            ht.width, ht.nodes
        );
    }
}
