//! Find refinement streaks in a (synthetic) single-day DBpedia log, the way
//! Section 8 of the paper does, and print the longest one.
//!
//! Run with `cargo run --release --example streak_hunting`.

use sparqlog::streaks::{detect_streaks, StreakConfig, StreakHistogram};
use sparqlog::synth::{generate_single_day_log, Dataset};

fn main() {
    let log = generate_single_day_log(Dataset::DBpedia16, 2_000, 99);
    println!("single-day log with {} entries", log.entries.len());

    let config = StreakConfig {
        window: 30,
        threshold: 0.25,
    };
    let streaks = detect_streaks(&log.entries, config);
    let histogram = StreakHistogram::from_streaks(&streaks);

    println!("streaks found: {}", histogram.total);
    println!("longest streak: {} queries", histogram.longest);
    for (label, count) in histogram.rows() {
        println!("  length {label:<8} {count}");
    }

    if let Some(longest) = streaks.iter().max_by_key(|s| s.len()) {
        println!("\nthe longest streak's first and last member:");
        let first = &log.entries[longest.members[0]];
        let last = &log.entries[*longest.members.last().expect("non-empty")];
        println!("  seed:  {first}");
        println!("  final: {last}");
    }
}
