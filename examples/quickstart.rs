//! Quickstart: parse a SPARQL query and inspect everything the toolkit can
//! tell you about it — syntactic features, fragment membership, canonical
//! graph shape, treewidth and projection usage.
//!
//! Run with `cargo run --example quickstart`.

use sparqlog::algebra::{classify_fragments, projection_use, QueryFeatures};
use sparqlog::core::analysis::Population;
use sparqlog::core::corpus::{analyze_streams, LogReader, MemoryLogReader};
use sparqlog::graph::StructuralReport;
use sparqlog::parser::{canonical_fingerprint_of, parse_query, to_canonical_string};

fn main() {
    // The "Locations of archaeological sites" query from WikiData, quoted in
    // Section 3 of the paper.
    let text = r#"
        PREFIX wdt: <http://www.wikidata.org/prop/direct/>
        PREFIX wd:  <http://www.wikidata.org/entity/>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        SELECT ?label ?coord ?subj
        WHERE {
          ?subj wdt:P31/wdt:P279* wd:Q839954 .
          ?subj wdt:P625 ?coord .
          ?subj rdfs:label ?label FILTER(lang(?label) = "en")
        }"#;

    let query = parse_query(text).expect("the example query is valid SPARQL");
    println!("canonical form:\n  {}\n", to_canonical_string(&query));

    let features = QueryFeatures::of(&query);
    println!("query form:          {:?}", features.form);
    println!("triple patterns:     {}", features.triple_patterns);
    println!("property paths:      {}", features.path_patterns);
    println!("uses FILTER:         {}", features.uses_filter);
    println!("uses And (joins):    {}", features.uses_and);
    println!("projection:          {:?}", projection_use(&query));

    let fragments = classify_fragments(&query);
    println!(
        "\nfragments: AOF={} CQ={} CPF={} CQF={} well-designed={} CQOF={}",
        fragments.aof,
        fragments.cq,
        fragments.cpf,
        fragments.cqf,
        fragments.well_designed,
        fragments.cqof
    );

    // A plain conjunctive query gets the full structural treatment.
    let cq = parse_query(
        "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a . ?a <http://q> ?d }",
    )
    .unwrap();
    let report = StructuralReport::of(&cq);
    let shape = report.shape.expect("CQ has a canonical graph");
    println!("\nsecond query (a triangle with a tail):");
    println!(
        "  shape: cycle={} flower={} forest={}",
        shape.cycle, shape.flower, shape.forest
    );
    println!("  treewidth: {:?}", report.treewidth);
    println!("  shortest cycle: {:?}", report.shortest_cycle);

    // Corpus analysis runs on the fused ingest→analyze engine: a `LogReader`
    // feeds entries batch by batch, each query is fingerprinted by hashing
    // its canonical form without materializing the string, a first
    // occurrence is analysed on the spot and a duplicate's AST is dropped
    // inside its batch — no AST outlives its batch, and the fold weights
    // each distinct form by its occurrence count.
    let log = MemoryLogReader::new(
        "quickstart",
        vec![
            text.to_string(),
            "SELECT ?x WHERE { ?x a <http://example.org/C> }".to_string(),
            "SELECT   ?x   WHERE { ?x a <http://example.org/C> }".to_string(), // duplicate
            "not sparql".to_string(),
        ],
    );
    let readers: Vec<Box<dyn LogReader>> = vec![Box::new(log)];
    let fused = analyze_streams(readers, Population::Unique).expect("in-memory streams");
    let counts = fused.summaries[0].counts;
    println!(
        "\nstreamed a {}-entry log: {} valid, {} unique (fingerprint {:032x})",
        counts.total,
        counts.valid,
        counts.unique,
        canonical_fingerprint_of(&query)
    );
    println!(
        "corpus-level keyword census: {} SELECT of {} queries ({} distinct analyses kept)",
        fused.corpus.combined.keywords.select,
        fused.corpus.combined.keywords.total_queries,
        fused.fused.distinct_forms
    );
}
