//! Analyse a (synthetic) multi-source query-log corpus end to end, the way
//! the paper analyses its 13 endpoint logs: ingest, deduplicate, and print
//! the headline tables.
//!
//! Run with `cargo run --release --example analyze_corpus`.

use sparqlog::core::analysis::{CorpusAnalysis, Population};
use sparqlog::core::corpus::{ingest_all, RawLog};
use sparqlog::core::report;
use sparqlog::synth::{generate_corpus, CorpusConfig};

fn main() {
    // A small corpus: 1/100,000 of the real Table-1 sizes (≈ 2k queries).
    let corpus = generate_corpus(CorpusConfig {
        scale: 1e-5,
        seed: 7,
        max_entries_per_dataset: 0,
    });
    let raw: Vec<RawLog> = corpus
        .logs
        .iter()
        .map(|l| RawLog::new(l.dataset.label(), l.entries.clone()))
        .collect();

    let ingested = ingest_all(&raw);
    let analysis = CorpusAnalysis::analyze(&ingested, Population::Unique);

    println!(
        "=== Table 1: corpus sizes ===\n{}",
        report::table1(&analysis)
    );
    println!(
        "=== Table 2: keyword counts ===\n{}",
        report::table2_keywords(&analysis.combined)
    );
    println!(
        "=== Table 3: operator sets ===\n{}",
        report::table3_opsets(&analysis.combined)
    );
    println!(
        "=== Section 5.2: fragments ===\n{}",
        report::section52_fragments(&analysis.combined)
    );
    println!(
        "=== Table 4: shapes ===\n{}",
        report::table4_shapes(&analysis.combined)
    );
    println!(
        "=== Table 5: property paths ===\n{}",
        report::table5_paths(&analysis.combined)
    );
}
