//! Property-based tests of the parser and canonicalizer, using the
//! profile-driven synthesizer as a generator of realistic SPARQL queries.

use proptest::prelude::*;
use sparqlog::algebra::QueryFeatures;
use sparqlog::parser::{parse_query, to_canonical_string};
use sparqlog::synth::{Dataset, DatasetProfile, Synthesizer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every query the synthesizer produces (for any dataset profile and any
    /// seed) parses, and canonicalization is a fixpoint: parse → print →
    /// parse → print yields the same string.
    #[test]
    fn synthesized_queries_parse_and_canonicalize(seed in 0u64..10_000, dataset_idx in 0usize..13) {
        let dataset = Dataset::ALL[dataset_idx];
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), seed);
        for _ in 0..5 {
            let text = synth.fresh_query();
            let parsed = parse_query(&text);
            prop_assert!(parsed.is_ok(), "failed to parse {text:?}: {:?}", parsed.err());
            let parsed = parsed.unwrap();
            let canon = to_canonical_string(&parsed);
            let reparsed = parse_query(&canon);
            prop_assert!(reparsed.is_ok(), "canonical form unparseable: {canon:?}");
            let recanon = to_canonical_string(&reparsed.unwrap());
            prop_assert_eq!(&canon, &recanon, "canonicalization is not a fixpoint for {}", text);
        }
    }

    /// Feature extraction is invariant under canonicalization: the features
    /// of a query and of its canonical re-parse agree on every flag the
    /// shallow analysis uses.
    #[test]
    fn features_survive_canonicalization(seed in 0u64..10_000) {
        let mut synth = Synthesizer::new(DatasetProfile::of(Dataset::DBpedia15), seed);
        for _ in 0..5 {
            let text = synth.fresh_query();
            let q1 = parse_query(&text).expect("synthesized queries parse");
            let q2 = parse_query(&to_canonical_string(&q1)).expect("canonical form parses");
            let f1 = QueryFeatures::of(&q1);
            let f2 = QueryFeatures::of(&q2);
            prop_assert_eq!(f1.form, f2.form);
            prop_assert_eq!(f1.total_triples(), f2.total_triples());
            prop_assert_eq!(f1.uses_filter, f2.uses_filter);
            prop_assert_eq!(f1.uses_optional, f2.uses_optional);
            prop_assert_eq!(f1.uses_union, f2.uses_union);
            prop_assert_eq!(f1.uses_graph, f2.uses_graph);
            prop_assert_eq!(f1.uses_distinct, f2.uses_distinct);
            prop_assert_eq!(f1.uses_limit, f2.uses_limit);
            prop_assert_eq!(f1.uses_property_path, f2.uses_property_path);
            prop_assert_eq!(f1.uses_subquery, f2.uses_subquery);
        }
    }

    /// The lexer/parser never panic on arbitrary input — garbage is rejected
    /// with an error, not a crash.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_query(&input);
    }

    /// Arbitrary mutations of a valid query (truncations) never panic either.
    #[test]
    fn parser_never_panics_on_truncated_queries(cut in 0usize..200, seed in 0u64..1000) {
        let mut synth = Synthesizer::new(DatasetProfile::of(Dataset::DBpedia14), seed);
        let text = synth.fresh_query();
        let cut = cut.min(text.len());
        // Truncate at a character boundary.
        let mut boundary = cut;
        while !text.is_char_boundary(boundary) {
            boundary -= 1;
        }
        let _ = parse_query(&text[..boundary]);
    }
}
