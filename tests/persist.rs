//! The persistent snapshot store, end to end: the incremental engine's
//! cold run must be byte-identical to the fused engine's and its warm run
//! must re-serve everything from the store with zero re-analyses; the
//! daemon run with a store must warm-start settled jobs after a restart
//! and answer resubmissions as pure store hits (no worker processes),
//! again byte-identically.

use sparqlog::core::corpus::{analyze_streams_with, FileLogReader, FusedOptions, LogReader};
use sparqlog::core::report::full_report;
use sparqlog::core::{analyze_files_incremental, Population, RecoveryPolicy};
use sparqlog::persist::SnapshotStore;
use sparqlog::serve::{
    Client, ConnectRetry, JobPhase, ServeAddr, ServeConfig, Server, ServerHandle,
};
use sparqlog::shard::{LogSpec, WorkerCommand};
use sparqlog::synth::{generate_single_day_log, Dataset};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The worker binary built alongside this test (same package, profile).
const WORKER: &str = env!("CARGO_BIN_EXE_sparqlog-shard-worker");

/// How long to wait for jobs that should succeed.
const SETTLE: Duration = Duration::from_secs(300);

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "sparqlog-persist-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes a duplicate-heavy three-log corpus (same shape as the serve
/// tests: synthesized day logs with cross-log duplicates).
fn write_corpus(dir: &Path) -> Vec<LogSpec> {
    let mut raw: Vec<(String, Vec<String>)> = Vec::new();
    for (i, dataset) in [Dataset::DBpedia15, Dataset::WikiData17, Dataset::BioP13]
        .iter()
        .enumerate()
    {
        let day = generate_single_day_log(*dataset, 40, 4200 + i as u64);
        let mut entries = Vec::new();
        for _ in 0..2 {
            entries.extend(day.entries.iter().cloned());
        }
        raw.push((day.dataset.label().to_string(), entries));
    }
    let head: Vec<String> = raw[0].1.iter().take(15).cloned().collect();
    raw[2].1.extend(head);

    raw.into_iter()
        .enumerate()
        .map(|(index, (label, entries))| {
            let path = dir.join(format!("{index:02}.log"));
            let mut file =
                std::io::BufWriter::new(std::fs::File::create(&path).expect("create log file"));
            for entry in &entries {
                writeln!(file, "{entry}").expect("write log line");
            }
            file.flush().expect("flush log file");
            LogSpec::new(label, path)
        })
        .collect()
}

/// The single-process fused reference over the same on-disk files.
fn fused_reference(logs: &[LogSpec], population: Population) -> String {
    let readers: Vec<Box<dyn LogReader>> = logs
        .iter()
        .map(|log| {
            Box::new(FileLogReader::open(log.label.clone(), &log.path).expect("open log"))
                as Box<dyn LogReader>
        })
        .collect();
    let fused = analyze_streams_with(readers, population, FusedOptions::default())
        .expect("fused reference run");
    full_report(&fused.corpus)
}

fn file_specs(logs: &[LogSpec]) -> Vec<(String, PathBuf)> {
    logs.iter()
        .map(|log| (log.label.clone(), log.path.clone()))
        .collect()
}

fn submit_specs(logs: &[LogSpec]) -> Vec<(String, String)> {
    logs.iter()
        .map(|log| (log.label.clone(), log.path.display().to_string()))
        .collect()
}

fn worker_threads() -> usize {
    std::env::var("SPARQLOG_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2)
}

fn store_config(store: &Path) -> ServeConfig {
    ServeConfig {
        worker: WorkerCommand::new(WORKER),
        worker_slots: 2,
        worker_threads: worker_threads(),
        heartbeat: Duration::from_millis(50),
        restart_backoff: Duration::from_millis(10),
        store_path: Some(store.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn start_server(
    config: ServeConfig,
) -> (
    ServeAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config, &ServeAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

#[test]
fn incremental_cold_run_matches_fused_and_warm_run_reanalyses_nothing() {
    let scratch = Scratch::new("incremental");
    let logs = write_corpus(scratch.path());
    let files = file_specs(&logs);
    let reference = fused_reference(&logs, Population::Unique);
    let store_path = scratch.path().join("snapshots.sqps");

    // Cold: every log is a miss, analysed and persisted.
    let (mut store, report) = SnapshotStore::open(&store_path).expect("create store");
    assert!(report.is_clean());
    let cold = analyze_files_incremental(
        &files,
        Population::Unique,
        FusedOptions::default(),
        &mut store,
    )
    .expect("cold incremental run");
    assert_eq!(cold.stats.hits, 0);
    assert_eq!(cold.stats.misses, files.len() as u64);
    assert_eq!(full_report(&cold.corpus), reference);
    store.commit().expect("commit snapshots");
    drop(store);

    // Warm, through a fresh open (the recovery scan): zero re-analyses,
    // byte-identical report.
    let (mut store, report) = SnapshotStore::open(&store_path).expect("reopen store");
    assert!(report.is_clean(), "{report}");
    assert_eq!(store.snapshots(), files.len());
    let warm = analyze_files_incremental(
        &files,
        Population::Unique,
        FusedOptions::default(),
        &mut store,
    )
    .expect("warm incremental run");
    assert_eq!(warm.stats.misses, 0);
    assert_eq!(warm.stats.hits, files.len() as u64);
    assert_eq!(full_report(&warm.corpus), reference);

    // The populations key separately: a Valid-population run over the same
    // files is all misses, not wrong answers.
    let valid = analyze_files_incremental(
        &files,
        Population::Valid,
        FusedOptions::default(),
        &mut store,
    )
    .expect("valid-population run");
    assert_eq!(valid.stats.hits, 0);
    assert_eq!(
        full_report(&valid.corpus),
        fused_reference(&logs, Population::Valid)
    );
}

#[test]
fn daemon_restart_warm_starts_jobs_and_resubmission_spawns_no_workers() {
    let scratch = Scratch::new("daemon");
    let logs = write_corpus(scratch.path());
    let reference = fused_reference(&logs, Population::Unique);
    let store_path = scratch.path().join("daemon.sqps");

    // First daemon lifetime: cold analysis through real worker processes,
    // committed to the store at job completion.
    let (addr, handle, runner) = start_server(store_config(&store_path));
    let mut client = Client::connect(&addr).expect("connect");
    let (job, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(&logs),
        )
        .expect("submit");
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
    let report = client.report(job, true).expect("report");
    assert_eq!(report.text, reference);
    let lines = client.events(job).expect("events");
    assert!(
        lines.iter().any(|l| l.contains("event=store-commit")),
        "no store-commit event: {lines:?}"
    );
    drop(client);
    handle.stop();
    runner.join().expect("server thread").expect("server run");

    // Second lifetime on the same store: the settled job warm-starts (its
    // report is served with no worker ever spawned), and resubmitting the
    // same logs is pure store hits.
    let (addr, handle, runner) = start_server(store_config(&store_path));
    let mut client =
        Client::connect_with_retry(&addr, &ConnectRetry::default()).expect("reconnect");
    let warm_events = client.events(0).expect("events");
    assert!(
        warm_events
            .iter()
            .any(|l| l.contains("event=job-warm-start")),
        "no warm-start event: {warm_events:?}"
    );
    let warm = client.report(1, true).expect("warm report");
    assert!(warm.complete, "warm-started job must be complete");
    assert_eq!(warm.text, reference, "warm-started report diverged");

    let (rejob, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(&logs),
        )
        .expect("resubmit");
    let status = client.wait_settled(rejob, SETTLE).expect("wait resubmit");
    assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
    let re = client.report(rejob, true).expect("resubmitted report");
    assert_eq!(re.text, reference, "store-hit report diverged");
    let lines = client.events(rejob).expect("events");
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("event=store-hit"))
            .count(),
        logs.len(),
        "{lines:?}"
    );
    assert!(
        !lines.iter().any(|l| l.contains("event=worker-start")),
        "a worker was spawned for fully-persisted logs: {lines:?}"
    );

    handle.stop();
    runner.join().expect("server thread").expect("server run");
}
