//! The streaming ingestion subsystem: property tests proving the
//! zero-materialization `CanonicalHasher` fingerprint equal to the
//! materializing one on generated queries, edge-case coverage for the
//! streaming log readers, and shard-boundary duplicate elimination.

use proptest::prelude::*;
use sparqlog::core::corpus::{
    canonical_fingerprint, ingest, ingest_streams, ingest_streams_with, FileLogReader,
    FingerprintShards, LineLogReader, LogReader, MemoryLogReader, RawLog, SliceLogReader,
    StreamOptions,
};
use sparqlog::parser::{canonical_fingerprint_of, parse_query, to_canonical_string};
use sparqlog::synth::{Dataset, DatasetProfile, Synthesizer};
use std::io::Cursor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The streamed fingerprint (canonical walk hashed directly, no string)
    /// equals the materializing fingerprint (canonical string built, then
    /// hashed) for every query the synthesizer produces, on every dataset
    /// profile.
    #[test]
    fn streamed_fingerprint_matches_materialized(seed in 0u64..10_000, dataset_idx in 0usize..13) {
        let dataset = Dataset::ALL[dataset_idx];
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), seed);
        for _ in 0..5 {
            let text = synth.fresh_query();
            let query = parse_query(&text).expect("synthesized queries parse");
            prop_assert_eq!(
                canonical_fingerprint_of(&query),
                canonical_fingerprint(&to_canonical_string(&query)),
                "streamed fingerprint diverges for {}", text
            );
        }
    }

    /// Streaming ingestion equals the sequential materializing reference for
    /// any batch size and worker count on a synthesized log with injected
    /// duplicates and garbage.
    #[test]
    fn streaming_matches_reference_on_synthesized_logs(
        seed in 0u64..5_000,
        batch in 1usize..32,
        workers in 1usize..5,
    ) {
        let mut synth = Synthesizer::new(DatasetProfile::of(Dataset::WikiData17), seed);
        let mut entries: Vec<String> = (0..30).map(|_| synth.fresh_query()).collect();
        entries.push(entries[0].clone()); // duplicate across batch boundaries
        entries.push("garbage entry".to_string());
        let log = RawLog::new("prop", entries);
        let reference = ingest(&log);
        let readers: Vec<Box<dyn LogReader + '_>> =
            vec![Box::new(SliceLogReader::of(&log)) as Box<dyn LogReader + '_>];
        let streamed = ingest_streams_with(
            readers,
            StreamOptions {
                workers,
                batch,
                shards: 8,
                recovery: Default::default(),
            },
        )
        .expect("in-memory ingestion cannot fail");
        prop_assert_eq!(streamed[0].counts, reference.counts);
        prop_assert_eq!(&streamed[0].unique_indices, &reference.unique_indices);
        prop_assert_eq!(&streamed[0].valid_queries, &reference.valid_queries);
    }
}

#[test]
fn empty_log_streams_to_zero_counts() {
    let readers: Vec<Box<dyn LogReader>> = vec![Box::new(MemoryLogReader::new("empty", vec![]))];
    let logs = ingest_streams(readers).unwrap();
    assert_eq!(logs.len(), 1);
    assert_eq!(logs[0].label, "empty");
    assert_eq!(logs[0].counts.total, 0);
    assert_eq!(logs[0].counts.valid, 0);
    assert_eq!(logs[0].counts.unique, 0);
    assert!(logs[0].valid_queries.is_empty());
    assert!(logs[0].unique_indices.is_empty());
}

#[test]
fn empty_stream_yields_no_entries() {
    let mut reader = LineLogReader::new("empty", Cursor::new(&b""[..]));
    let mut batch = Vec::new();
    assert_eq!(reader.read_batch(&mut batch, 10).unwrap(), 0);
    assert!(batch.is_empty());
}

#[test]
fn line_reader_handles_missing_trailing_newline() {
    let text = "ASK { ?x <http://p> ?y }\nSELECT ?x WHERE { ?x a <http://C> }";
    let mut reader = LineLogReader::new("tail", Cursor::new(text.as_bytes()));
    let mut batch = Vec::new();
    assert_eq!(reader.read_batch(&mut batch, 10).unwrap(), 2);
    assert_eq!(batch[0], "ASK { ?x <http://p> ?y }");
    assert_eq!(batch[1], "SELECT ?x WHERE { ?x a <http://C> }");
    assert_eq!(reader.read_batch(&mut batch, 10).unwrap(), 0);
}

#[test]
fn line_reader_strips_crlf_terminators() {
    let text = "ASK { ?x <http://p> ?y }\r\nDESCRIBE <http://r>\r\n";
    let mut reader = LineLogReader::new("crlf", Cursor::new(text.as_bytes()));
    let mut batch = Vec::new();
    assert_eq!(reader.read_batch(&mut batch, 10).unwrap(), 2);
    assert_eq!(batch[0], "ASK { ?x <http://p> ?y }");
    assert_eq!(batch[1], "DESCRIBE <http://r>");
}

#[test]
fn line_reader_keeps_blank_lines_as_invalid_entries() {
    // A blank line is an entry that fails to parse — it must count towards
    // `total` but not `valid`, exactly like an empty string in a RawLog.
    let text = "ASK { ?x <http://p> ?y }\n\nASK { ?x <http://p> ?y }\n";
    let readers: Vec<Box<dyn LogReader>> = vec![Box::new(LineLogReader::new(
        "blanks",
        Cursor::new(text.as_bytes().to_vec()),
    ))];
    let logs = ingest_streams(readers).unwrap();
    assert_eq!(logs[0].counts.total, 3);
    assert_eq!(logs[0].counts.valid, 2);
    assert_eq!(logs[0].counts.unique, 1);
}

#[test]
fn file_reader_streams_a_log_from_disk() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("streaming_file_reader.log");
    std::fs::write(
        &path,
        "SELECT ?x WHERE { ?x a <http://C> }\nSELECT   ?x   WHERE { ?x a <http://C> }\nnot sparql\nASK { ?s <http://p> ?o }",
    )
    .unwrap();
    let readers: Vec<Box<dyn LogReader>> =
        vec![Box::new(FileLogReader::open("disk", &path).unwrap())];
    let logs = ingest_streams(readers).unwrap();
    assert_eq!(logs[0].counts.total, 4);
    assert_eq!(logs[0].counts.valid, 3);
    assert_eq!(logs[0].counts.unique, 2); // whitespace variants collapse
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_reader_size_hint_estimates_from_metadata() {
    // A file-backed reader must report a metadata-based entry estimate so
    // the ingestion pool can clamp its worker count (a tiny log should not
    // spawn a full pool), and the estimate must shrink as lines are read.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("streaming_size_hint.log");
    let line = "SELECT ?x WHERE { ?x a <http://C> }\n";
    std::fs::write(&path, line.repeat(100)).unwrap();
    let mut reader = FileLogReader::open("disk", &path).unwrap();
    let hint = reader.size_hint().expect("file readers must hint");
    // bytes / 128-byte average, rounded up: in the right order of magnitude
    // for 100 x 36-byte lines, and never zero for a non-empty file.
    assert_eq!(hint, (line.len() * 100).div_ceil(128));
    let mut batch = Vec::new();
    reader.read_batch(&mut batch, 10).unwrap();
    let after = reader.size_hint().expect("hint persists while reading");
    assert_eq!(after, hint.saturating_sub(10));

    // An empty file hints zero entries; in-memory line readers still
    // decline to guess.
    let empty = dir.join("streaming_size_hint_empty.log");
    std::fs::write(&empty, "").unwrap();
    assert_eq!(
        FileLogReader::open("disk", &empty).unwrap().size_hint(),
        Some(0)
    );
    assert_eq!(
        LineLogReader::new("mem", Cursor::new(b"x\n".to_vec())).size_hint(),
        None
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&empty).ok();
}

#[test]
fn shard_boundary_duplicates_are_eliminated() {
    // Duplicates must collapse regardless of shard count and batch size:
    // equal fingerprints always land in the same shard, and batch boundaries
    // must not reset the dedup state.
    let entries: Vec<String> = (0..40)
        .map(|i| format!("SELECT ?x WHERE {{ ?x <http://p{}> ?y }}", i % 7))
        .collect();
    let log = RawLog::new("dups", entries);
    let reference = ingest(&log);
    assert_eq!(reference.counts.unique, 7);
    for shards in [1, 2, 16, 128] {
        for batch in [1, 3, 64] {
            let readers: Vec<Box<dyn LogReader + '_>> =
                vec![Box::new(SliceLogReader::of(&log)) as Box<dyn LogReader + '_>];
            let streamed = ingest_streams_with(
                readers,
                StreamOptions {
                    workers: 2,
                    batch,
                    shards,
                    recovery: Default::default(),
                },
            )
            .unwrap();
            assert_eq!(
                streamed[0].counts, reference.counts,
                "shards {shards}, batch {batch}"
            );
            assert_eq!(streamed[0].unique_indices, reference.unique_indices);
        }
    }
}

#[test]
fn fingerprint_shards_merge_is_commutative_across_logs() {
    // Per-log shard sets combined in either order give the same corpus-wide
    // distinct count — the merge the sharded design exists for.
    let a_entries: Vec<String> = (0..20)
        .map(|i| format!("SELECT ?x WHERE {{ ?x <http://a{}> ?y }}", i % 5))
        .collect();
    let b_entries: Vec<String> = (0..20)
        .map(|i| format!("SELECT ?x WHERE {{ ?x <http://b{}> ?y }}", i % 3))
        .collect();
    let fill = |entries: &[String]| {
        let mut shards = FingerprintShards::new(8);
        for e in entries {
            let q = parse_query(e).unwrap();
            shards.insert(canonical_fingerprint_of(&q));
        }
        shards
    };
    let a = fill(&a_entries);
    let b = fill(&b_entries);
    let mut ab = a.clone();
    ab.merge(b.clone());
    let mut ba = b;
    ba.merge(a);
    assert_eq!(ab.len(), 8); // 5 + 3 distinct shapes
    assert_eq!(ab.len(), ba.len());
    assert_eq!(ab.max_shard_len(), ba.max_shard_len());
}
