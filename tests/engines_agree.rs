//! Property-based cross-engine test: on arbitrary small graphs and
//! schema-driven workloads, the binary-join engine and the worst-case-optimal
//! trie-join engine must return exactly the same number of answers.

use proptest::prelude::*;
use sparqlog::gmark::{
    generate_graph, generate_workload, GraphConfig, QueryShape, Schema, WorkloadConfig,
};
use sparqlog::store::{
    chain_query, cycle_query, star_query, BinaryJoinEngine, ConjunctiveQuery, CqAtom, CqTerm,
    QueryEngine, QueryMode, TripleStore,
};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(20);

fn store_from_edges(edges: &[(u8, u8, u8)]) -> TripleStore {
    let mut store = TripleStore::new();
    for (s, p, o) in edges {
        store.insert(&format!("n{s}"), &format!("p{}", p % 3), &format!("n{o}"));
    }
    store.build();
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_chain_star_cycle_queries(
        edges in prop::collection::vec((0u8..12, 0u8..3, 0u8..12), 1..60),
        len in 2usize..5,
    ) {
        let store = store_from_edges(&edges);
        let preds: Vec<String> = (0..len).map(|i| format!("p{}", i % 3)).collect();
        let binary = BinaryJoinEngine::new();
        let trie = TrieJoinEngine_new();
        for query in [chain_query(&preds), cycle_query(&preds), star_query(&preds)] {
            let a = binary.evaluate(&store, &query, QueryMode::Count, TIMEOUT);
            let b = trie.evaluate(&store, &query, QueryMode::Count, TIMEOUT);
            prop_assert!(!a.timed_out && !b.timed_out);
            prop_assert_eq!(a.answers, b.answers, "query {}", query);
            // ASK agrees with (count > 0).
            let ask_a = binary.evaluate(&store, &query, QueryMode::Ask, TIMEOUT);
            let ask_b = trie.evaluate(&store, &query, QueryMode::Ask, TIMEOUT);
            prop_assert_eq!(ask_a.answers > 0, a.answers > 0);
            prop_assert_eq!(ask_b.answers > 0, b.answers > 0);
        }
    }

    #[test]
    fn engines_agree_on_queries_with_constants(
        edges in prop::collection::vec((0u8..8, 0u8..2, 0u8..8), 1..40),
        anchor in 0u8..8,
    ) {
        let store = store_from_edges(&edges);
        let query = ConjunctiveQuery::new(vec![
            CqAtom::new(CqTerm::constant(format!("n{anchor}")), CqTerm::constant("p0"), CqTerm::var("x")),
            CqAtom::new(CqTerm::var("x"), CqTerm::constant("p1"), CqTerm::var("y")),
            CqAtom::new(CqTerm::var("y"), CqTerm::var("p"), CqTerm::var("z")),
        ]);
        let a = BinaryJoinEngine::new().evaluate(&store, &query, QueryMode::Count, TIMEOUT);
        let b = TrieJoinEngine_new().evaluate(&store, &query, QueryMode::Count, TIMEOUT);
        prop_assert_eq!(a.answers, b.answers);
    }
}

// Small helper so the proptest macro body stays readable.
#[allow(non_snake_case)]
fn TrieJoinEngine_new() -> sparqlog::store::TrieJoinEngine {
    sparqlog::store::TrieJoinEngine::new()
}

#[test]
fn engines_agree_on_gmark_workloads() {
    let schema = Schema::bib();
    let graph = generate_graph(
        &schema,
        GraphConfig {
            nodes: 600,
            seed: 4,
        },
    );
    let store = graph.to_store();
    let binary = BinaryJoinEngine::new();
    let trie = sparqlog::store::TrieJoinEngine::new();
    for shape in [
        QueryShape::Chain,
        QueryShape::Star,
        QueryShape::Cycle,
        QueryShape::ChainStar,
    ] {
        for len in 2..=4 {
            let wl = generate_workload(
                &schema,
                WorkloadConfig {
                    shape,
                    length: len,
                    count: 4,
                    seed: 9 + len as u64,
                },
            );
            for q in &wl.queries {
                let a = binary.evaluate(&store, q, QueryMode::Count, TIMEOUT);
                let b = trie.evaluate(&store, q, QueryMode::Count, TIMEOUT);
                assert_eq!(a.answers, b.answers, "disagreement on {q}");
            }
        }
    }
}
