//! The `SPARQLOG_WORKERS` environment override honored by the ingestion and
//! analysis pools — the hook the CI determinism matrix pins worker counts
//! with. Kept in its own integration-test binary (and a single `#[test]`)
//! because environment mutation is process-global.

use sparqlog::core::analysis::{CorpusAnalysis, EngineOptions, Population};
use sparqlog::core::corpus::{default_workers, ingest, ingest_all, RawLog};

#[test]
fn workers_env_override_pins_the_pools_without_changing_reports() {
    // A positive integer pins the worker count.
    std::env::set_var("SPARQLOG_WORKERS", "3");
    assert_eq!(default_workers(), 3);

    // Garbage and zero fall back to the available parallelism.
    std::env::set_var("SPARQLOG_WORKERS", "not-a-number");
    assert!(default_workers() >= 1);
    std::env::set_var("SPARQLOG_WORKERS", "0");
    assert!(default_workers() >= 1);

    // Reports are byte-identical whatever the override says.
    let logs: Vec<RawLog> = vec![RawLog::new(
        "env",
        (0..300)
            .map(|i| format!("SELECT ?x WHERE {{ ?x <http://p{}> ?y }}", i % 40))
            .collect(),
    )];
    let reference_ingest: Vec<_> = logs.iter().map(ingest).collect();
    let reference = format!(
        "{:?}",
        CorpusAnalysis::analyze_with(
            &reference_ingest,
            Population::Unique,
            EngineOptions {
                recovery: Default::default(),
                workers: 1,
                chunk_size: 0,
                ..EngineOptions::default()
            },
        )
    );
    for workers in ["1", "2", "8"] {
        std::env::set_var("SPARQLOG_WORKERS", workers);
        assert_eq!(default_workers(), workers.parse::<usize>().unwrap());
        let ingested = ingest_all(&logs);
        for (a, b) in ingested.iter().zip(&reference_ingest) {
            assert_eq!(a.counts, b.counts, "SPARQLOG_WORKERS={workers}");
            assert_eq!(a.unique_indices, b.unique_indices);
        }
        let run = format!(
            "{:?}",
            CorpusAnalysis::analyze(&ingested, Population::Unique)
        );
        assert_eq!(reference, run, "SPARQLOG_WORKERS={workers}");
    }
    std::env::remove_var("SPARQLOG_WORKERS");
    assert!(default_workers() >= 1);
}
