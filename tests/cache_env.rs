//! The `SPARQLOG_ANALYSIS_CACHE` environment override honored by
//! `EngineOptions` (same pattern as `SPARQLOG_WORKERS`): `0` / `false` /
//! `off` / `no` disable the fingerprint-keyed analysis cache for
//! differential runs; anything else — including unset — leaves it on. Kept
//! in its own integration-test binary (and a single `#[test]`) because
//! environment mutation is process-global.

use sparqlog::core::analysis::{CachePolicy, CorpusAnalysis, EngineOptions, Population};
use sparqlog::core::corpus::{ingest_all, RawLog};
use sparqlog::core::report::full_report;

#[test]
fn cache_env_override_toggles_the_cache_without_changing_reports() {
    // Explicit policies ignore the environment entirely.
    std::env::set_var("SPARQLOG_ANALYSIS_CACHE", "0");
    assert!(CachePolicy::Enabled.enabled());
    assert!(!CachePolicy::Disabled.enabled());

    // Auto follows the variable: disabling spellings, then everything else.
    for off in ["0", "false", "OFF", " no "] {
        std::env::set_var("SPARQLOG_ANALYSIS_CACHE", off);
        assert!(!CachePolicy::Auto.enabled(), "{off:?} must disable");
    }
    for on in ["1", "true", "yes", "anything"] {
        std::env::set_var("SPARQLOG_ANALYSIS_CACHE", on);
        assert!(CachePolicy::Auto.enabled(), "{on:?} must enable");
    }
    std::env::remove_var("SPARQLOG_ANALYSIS_CACHE");
    assert!(CachePolicy::Auto.enabled(), "unset must enable");

    // The toggle switches the engine's work profile (hit counters appear and
    // disappear) but never the report.
    let mut entries = Vec::new();
    for round in 0..3 {
        for i in 0..40 {
            let _ = round;
            entries.push(format!("SELECT ?x WHERE {{ ?x <http://p{i}> ?y }}"));
        }
    }
    let logs = ingest_all(&[RawLog::new("env", entries)]);
    std::env::set_var("SPARQLOG_ANALYSIS_CACHE", "1");
    let (cached, cached_stats) =
        CorpusAnalysis::analyze_stats(&logs, Population::Valid, EngineOptions::default());
    assert!(cached_stats.cache.expect("cache on").hits > 0);
    std::env::set_var("SPARQLOG_ANALYSIS_CACHE", "0");
    let (uncached, uncached_stats) =
        CorpusAnalysis::analyze_stats(&logs, Population::Valid, EngineOptions::default());
    assert!(uncached_stats.cache.is_none());
    assert_eq!(full_report(&cached), full_report(&uncached));
    std::env::remove_var("SPARQLOG_ANALYSIS_CACHE");
}
