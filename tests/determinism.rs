//! Multi-threaded determinism: `CorpusAnalysis::analyze` must produce
//! identical reports regardless of worker count, chunk size (and therefore
//! chunk boundaries), or the racy order in which workers claim chunks.

use sparqlog::core::analysis::{CorpusAnalysis, EngineOptions, Population};
use sparqlog::core::corpus::{
    ingest, ingest_all, ingest_streams_with, LogReader, SliceLogReader, StreamOptions,
};
use sparqlog::core::RawLog;
use sparqlog::synth::{generate_corpus, CorpusConfig};

fn corpus_logs() -> Vec<RawLog> {
    let corpus = generate_corpus(CorpusConfig {
        scale: 2e-6,
        seed: 9,
        max_entries_per_dataset: 120,
    });
    corpus
        .logs
        .iter()
        .map(|l| RawLog::new(l.dataset.label(), l.entries.clone()))
        .collect()
}

#[test]
fn analysis_is_identical_across_worker_counts_and_chunk_schedules() {
    let ingested = ingest_all(&corpus_logs());
    for population in [Population::Unique, Population::Valid] {
        let reference = format!(
            "{:?}",
            CorpusAnalysis::analyze_with(
                &ingested,
                population,
                EngineOptions {
                    recovery: Default::default(),
                    workers: 1,
                    chunk_size: 0,
                    ..EngineOptions::default()
                },
            )
        );
        // Every worker count × chunk size must reproduce the single-threaded
        // report bit-for-bit; chunk sizes of 1 and 7 shuffle the chunk
        // boundaries and hand queries of the same dataset to different
        // workers.
        for workers in [1, 2, 8] {
            for chunk_size in [0, 1, 7, 64] {
                let run = CorpusAnalysis::analyze_with(
                    &ingested,
                    population,
                    EngineOptions {
                        recovery: Default::default(),
                        workers,
                        chunk_size,
                        ..EngineOptions::default()
                    },
                );
                assert_eq!(
                    reference,
                    format!("{run:?}"),
                    "non-deterministic report: {population:?}, {workers} workers, chunk {chunk_size}"
                );
            }
        }
        // The racy chunk-claim order differs between repeated runs; the
        // report must not.
        for _ in 0..3 {
            let run = CorpusAnalysis::analyze_with(
                &ingested,
                population,
                EngineOptions {
                    recovery: Default::default(),
                    workers: 8,
                    chunk_size: 2,
                    ..EngineOptions::default()
                },
            );
            assert_eq!(reference, format!("{run:?}"));
        }
    }
}

#[test]
fn parallel_ingestion_is_identical_to_sequential() {
    let logs = corpus_logs();
    let parallel = ingest_all(&logs);
    let sequential: Vec<_> = logs.iter().map(ingest).collect();
    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.counts, s.counts, "{}", p.label);
        assert_eq!(p.unique_indices, s.unique_indices, "{}", p.label);
        assert_eq!(p.valid_queries, s.valid_queries, "{}", p.label);
    }
}

#[test]
fn streaming_ingestion_is_deterministic_across_schedules() {
    // Worker count, batch size and shard count shuffle which worker parses
    // which batch and which shard dedups which fingerprint; the ingested
    // output must not move.
    let logs = corpus_logs();
    let reference: Vec<_> = logs.iter().map(ingest).collect();
    for workers in [1, 2, 8] {
        for batch in [1, 7, 512] {
            for shards in [1, 16] {
                let readers: Vec<Box<dyn LogReader + '_>> = logs
                    .iter()
                    .map(|l| Box::new(SliceLogReader::of(l)) as Box<dyn LogReader + '_>)
                    .collect();
                let streamed = ingest_streams_with(
                    readers,
                    StreamOptions {
                        workers,
                        batch,
                        shards,
                        recovery: Default::default(),
                    },
                )
                .expect("in-memory ingestion cannot fail");
                for (s, r) in streamed.iter().zip(&reference) {
                    assert_eq!(
                        s.counts, r.counts,
                        "workers {workers}, batch {batch}, shards {shards}"
                    );
                    assert_eq!(s.unique_indices, r.unique_indices, "{}", s.label);
                    assert_eq!(s.valid_queries, r.valid_queries, "{}", s.label);
                }
            }
        }
    }
}

#[test]
fn shuffled_log_order_only_permutes_dataset_rows() {
    // Reversing the logs permutes the per-dataset rows but must leave each
    // row and the combined totals untouched.
    let logs = corpus_logs();
    let ingested = ingest_all(&logs);
    let reversed: Vec<_> = ingested.iter().rev().cloned().collect();
    let forward = CorpusAnalysis::analyze(&ingested, Population::Unique);
    let backward = CorpusAnalysis::analyze(&reversed, Population::Unique);
    for d in &forward.datasets {
        let twin = backward
            .datasets
            .iter()
            .find(|b| b.label == d.label)
            .expect("every dataset row survives reordering");
        assert_eq!(format!("{d:?}"), format!("{twin:?}"));
    }
    assert_eq!(
        format!("{:?}", forward.combined.counts),
        format!("{:?}", backward.combined.counts)
    );
    assert_eq!(
        format!("{:?}", forward.combined.keywords),
        format!("{:?}", backward.combined.keywords)
    );
}
