//! Malformed-input hardening, exercised end-to-end over an adversarial
//! fixture corpus: NUL bytes, lone carriage returns, truncated strings and
//! IRIs, an 8 MiB single-line entry, 10k-deep nested groups, an
//! invalid-UTF-8 line, all interleaved with valid entries. In Lenient mode
//! every engine — fused, staged, sharded, served — must produce
//! byte-identical reports and error tallies at any worker count; Strict
//! mode must fail with an actionable error naming the log and line; an
//! error budget must pass or fail on its exact boundary with the tally
//! preserved; and a panic planted in a worker process must be caught and
//! recorded as a `worker-panic` tally instead of killing the run.

use sparqlog::core::analysis::CorpusAnalysis;
use sparqlog::core::corpus::{
    analyze_streams_with, ingest_streams_with, FileLogReader, FusedOptions, LogReader,
    StreamOptions,
};
use sparqlog::core::report::full_report;
use sparqlog::core::{BudgetExceeded, ErrorKind, ErrorTally, Population, RecoveryPolicy};
use sparqlog::serve::{Client, JobPhase, ServeAddr, ServeConfig, Server, ServerHandle};
use sparqlog::shard::{analyze_sharded, LogSpec, ShardOptions, WorkerCommand};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The worker binary built alongside this test (same package, same profile).
const WORKER: &str = env!("CARGO_BIN_EXE_sparqlog-shard-worker");

const SETTLE: Duration = Duration::from_secs(300);

const VALID_A: &str = "SELECT ?x WHERE { ?x a <http://example.org/Widget> }";
const VALID_B: &str = "ASK { ?a <http://example.org/p> ?b }";
const VALID_C: &str = "SELECT DISTINCT ?s WHERE { ?s <http://example.org/q> ?o } LIMIT 10";

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "sparqlog-robustness-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes the adversarial fixture corpus: one log with every malformed
/// shape interleaved between valid entries, plus one clean log.
///
/// The adversarial log's entries, by 0-based position:
///
/// | 0 | valid                          |
/// | 1 | NUL bytes                      |
/// | 2 | lone `\r`s                     |
/// | 3 | truncated string literal       |
/// | 4 | truncated IRI                  |
/// | 5 | invalid UTF-8                  |
/// | 6 | valid                          |
/// | 7 | 8 MiB single-line entry        |
/// | 8 | 10k-deep nested groups         |
/// | 9 | valid (duplicate of entry 0)   |
///
/// Expected Lenient tally: `lex + syntax == 4` (1–4), `invalid_utf8 == 1`,
/// `oversize_entry == 1`, `depth_exceeded == 1` — 7 errors, 3 defects,
/// 10 total entries, 3 valid, 2 unique.
fn write_adversarial_corpus(dir: &Path) -> Vec<LogSpec> {
    let mut deep: Vec<u8> = b"ASK ".to_vec();
    deep.extend(std::iter::repeat_n(b'{', 10_000));
    deep.extend(std::iter::repeat_n(b'}', 10_000));
    let dirty: Vec<Vec<u8>> = vec![
        VALID_A.into(),
        b"\x00\x00\x00".to_vec(),
        b"lone\rcarriage\rreturns".to_vec(),
        br#"SELECT ?x WHERE { ?x <http://example.org/p> "unterminated"#.to_vec(),
        b"SELECT ?x WHERE { ?x <http://example.org/trunc".to_vec(),
        b"SELECT ?\xff\xfe WHERE { ?x ?p ?o }".to_vec(),
        VALID_B.into(),
        vec![b'x'; 8 << 20],
        deep,
        VALID_A.into(),
    ];

    let clean: Vec<Vec<u8>> = vec![VALID_A.into(), VALID_B.into(), VALID_C.into()];

    [("adversarial", dirty), ("clean", clean)]
        .into_iter()
        .map(|(label, entries)| {
            let path = dir.join(format!("{label}.log"));
            let mut bytes = Vec::new();
            for entry in &entries {
                bytes.extend_from_slice(entry);
                bytes.push(b'\n');
            }
            std::fs::write(&path, bytes).expect("write log file");
            LogSpec::new(label, path)
        })
        .collect()
}

fn readers(logs: &[LogSpec]) -> Vec<Box<dyn LogReader>> {
    logs.iter()
        .map(|log| {
            Box::new(FileLogReader::open(log.label.clone(), &log.path).expect("open log"))
                as Box<dyn LogReader>
        })
        .collect()
}

fn fused_options(workers: usize, recovery: RecoveryPolicy) -> FusedOptions {
    FusedOptions {
        workers,
        batch: 0,
        recovery,
    }
}

/// Asserts the expected tally shape of the adversarial log (see
/// [`write_adversarial_corpus`]).
fn assert_adversarial_tally(tally: &ErrorTally) {
    assert_eq!(tally.lex + tally.syntax, 4, "{tally:?}");
    assert_eq!(tally.count(ErrorKind::InvalidUtf8), 1, "{tally:?}");
    assert_eq!(tally.count(ErrorKind::OversizeEntry), 1, "{tally:?}");
    assert_eq!(tally.count(ErrorKind::DepthExceeded), 1, "{tally:?}");
    assert_eq!(tally.count(ErrorKind::WorkerPanic), 0, "{tally:?}");
    assert_eq!(tally.total(), 7, "{tally:?}");
    assert_eq!(tally.defects(), 3, "{tally:?}");
    // Every offending position fits under the exemplar cap, so the
    // exemplar list is the exact (position-sorted) error map of the log.
    let positions: Vec<u64> = tally.exemplars.iter().map(|&(_, pos)| pos).collect();
    assert_eq!(positions, vec![1, 2, 3, 4, 5, 7, 8], "{tally:?}");
}

#[test]
fn lenient_reports_and_tallies_are_byte_identical_across_every_engine() {
    let scratch = Scratch::new("matrix");
    let logs = write_adversarial_corpus(scratch.path());

    for population in [Population::Unique, Population::Valid] {
        // Reference: single-threaded fused run.
        let reference = analyze_streams_with(
            readers(&logs),
            population,
            fused_options(1, RecoveryPolicy::Lenient),
        )
        .expect("lenient fused run recovers every malformed entry");
        let reference_report = full_report(&reference.corpus);
        assert_adversarial_tally(&reference.summaries[0].errors);
        assert!(reference.summaries[1].errors.is_empty());
        assert_eq!(reference.summaries[0].counts.total, 10);
        assert_eq!(reference.summaries[0].counts.valid, 3);
        assert_eq!(reference.summaries[0].counts.unique, 2);
        assert!(
            reference_report.contains("worker-panic"),
            "report must render the error table:\n{reference_report}"
        );

        // Fused at higher worker counts and batch sizes.
        for workers in [2, 8] {
            for batch in [1, 64] {
                let fused = analyze_streams_with(
                    readers(&logs),
                    population,
                    FusedOptions {
                        workers,
                        batch,
                        recovery: RecoveryPolicy::Lenient,
                    },
                )
                .expect("lenient fused run");
                assert_eq!(
                    full_report(&fused.corpus),
                    reference_report,
                    "fused report diverged at {workers} workers, batch {batch}"
                );
                assert_eq!(fused.summaries, reference.summaries);
            }
        }

        // Staged pipeline: ingest first, analyze after.
        let staged = ingest_streams_with(
            readers(&logs),
            StreamOptions {
                workers: 2,
                batch: 3,
                shards: 8,
                recovery: RecoveryPolicy::Lenient,
            },
        )
        .expect("lenient staged ingestion");
        assert_adversarial_tally(&staged[0].errors);
        let staged_corpus = CorpusAnalysis::analyze(&staged, population);
        assert_eq!(
            full_report(&staged_corpus),
            reference_report,
            "staged report diverged"
        );

        // Sharded, across a process boundary.
        for shards in [1, 2] {
            for worker_threads in [1, 2, 8] {
                let options = ShardOptions {
                    shards,
                    worker_threads,
                    worker: WorkerCommand::new(WORKER),
                    recovery: RecoveryPolicy::Lenient,
                };
                let sharded =
                    analyze_sharded(&logs, population, &options).unwrap_or_else(|error| {
                        panic!("{shards} shards × {worker_threads} workers: {error}")
                    });
                assert_eq!(
                    full_report(&sharded.corpus),
                    reference_report,
                    "sharded report diverged at {shards} shards, {worker_threads} workers"
                );
                assert_eq!(sharded.summaries, reference.summaries);
            }
        }
    }
}

#[test]
fn strict_utf8_failure_names_the_log_and_line() {
    let scratch = Scratch::new("strict");
    let logs = write_adversarial_corpus(scratch.path());
    let error = analyze_streams_with(
        readers(&logs),
        Population::Unique,
        fused_options(1, RecoveryPolicy::Strict),
    )
    .expect_err("strict mode must fail on the invalid-UTF-8 line");
    let message = error.to_string();
    assert!(message.contains("adversarial"), "{message}");
    // The bad bytes sit on 1-based line 6 of the adversarial log.
    assert!(message.contains("line 6"), "{message}");
    assert!(message.contains("valid UTF-8"), "{message}");
}

#[test]
fn error_budget_passes_and_fails_on_its_exact_boundary() {
    let scratch = Scratch::new("budget");
    let logs = write_adversarial_corpus(scratch.path());
    // 3 defects in 13 entries across both logs. The budget compares
    // defects/total against max_per_10k/10_000 exactly: 3/13 ≈ 2307.7 per
    // 10k, so 2308 passes and 2307 fails.
    let within = analyze_streams_with(
        readers(&logs),
        Population::Unique,
        fused_options(2, RecoveryPolicy::ErrorBudget { max_per_10k: 2308 }),
    )
    .expect("a defect rate on the budget boundary passes");
    assert_adversarial_tally(&within.summaries[0].errors);

    let error = analyze_streams_with(
        readers(&logs),
        Population::Unique,
        fused_options(2, RecoveryPolicy::ErrorBudget { max_per_10k: 2307 }),
    )
    .expect_err("one fewer per-10k must trip the budget");
    let budget = error
        .get_ref()
        .and_then(|payload| payload.downcast_ref::<BudgetExceeded>())
        .expect("budget failures carry the BudgetExceeded payload");
    assert_eq!(budget.defects, 3);
    assert_eq!(budget.total, 13);
    assert_eq!(budget.max_per_10k, 2307);
    // The tally survives the failure: the caller still sees what went wrong.
    assert_adversarial_tally(&budget.tally);
}

#[test]
fn planted_worker_panic_is_caught_and_tallied_across_the_process_boundary() {
    let scratch = Scratch::new("drill");
    let entries = [
        VALID_A,
        "SELECT ?drill WHERE { ?drill a <http://example.org/PanicDrill> }",
        VALID_B,
    ];
    let path = scratch.path().join("drill.log");
    std::fs::write(&path, entries.join("\n") + "\n").expect("write log");
    let logs = vec![LogSpec::new("drill", path)];

    let options = ShardOptions {
        shards: 1,
        worker_threads: 2,
        worker: WorkerCommand::new(WORKER).env("SPARQLOG_PANIC_DRILL", "PanicDrill"),
        recovery: RecoveryPolicy::Lenient,
    };
    let sharded =
        analyze_sharded(&logs, Population::Unique, &options).expect("the panic must be contained");
    let tally = &sharded.summaries[0].errors;
    assert_eq!(tally.count(ErrorKind::WorkerPanic), 1, "{tally:?}");
    assert_eq!(tally.total(), 1, "{tally:?}");
    assert_eq!(
        tally.exemplars,
        vec![(ErrorKind::WorkerPanic.wire_code(), 1)]
    );
    assert_eq!(sharded.summaries[0].counts.valid, 2);
    assert!(
        full_report(&sharded.corpus).contains("worker-panic@1"),
        "{}",
        full_report(&sharded.corpus)
    );
}

fn start_server(config: ServeConfig) -> (ServeAddr, ServerHandle) {
    let server = Server::bind(config, &ServeAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    std::thread::spawn(move || server.run());
    (addr, handle)
}

fn submit_specs(logs: &[LogSpec]) -> Vec<(String, String)> {
    logs.iter()
        .map(|log| (log.label.clone(), log.path.display().to_string()))
        .collect()
}

#[test]
fn served_jobs_honor_the_policy_and_report_identical_tallies() {
    let scratch = Scratch::new("serve");
    let logs = write_adversarial_corpus(scratch.path());
    let reference = analyze_streams_with(
        readers(&logs),
        Population::Unique,
        fused_options(1, RecoveryPolicy::Lenient),
    )
    .expect("fused reference");
    let reference_report = full_report(&reference.corpus);

    let config = ServeConfig {
        worker: WorkerCommand::new(WORKER),
        worker_slots: 2,
        worker_threads: 2,
        heartbeat: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let (addr, handle) = start_server(config);
    let mut client = Client::connect(&addr).expect("connect");

    // Lenient submit: completes with the full merged tally on status and a
    // report byte-identical to the in-process engine's.
    let (job, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Lenient,
            submit_specs(&logs),
        )
        .expect("submit lenient");
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
    assert_eq!(status.errors, 7);
    let report = client.report(job, true).expect("report");
    assert!(report.complete);
    assert_eq!(report.errors, 7);
    assert_eq!(report.text, reference_report);

    // Budgeted submit under the defect rate: the job fails at the final
    // merge with the tally preserved.
    let (job, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::ErrorBudget { max_per_10k: 2307 },
            submit_specs(&logs),
        )
        .expect("submit budgeted");
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Failed, "{}", status.error);
    assert!(
        status.error.contains("error budget exceeded"),
        "{}",
        status.error
    );
    assert_eq!(status.errors, 7, "the tally survives the failed job");
    let events = client.events(job).expect("events");
    assert!(
        events.iter().any(|line| line.contains("event=job-failed")),
        "{events:?}"
    );

    handle.stop();
}
