//! Cross-crate integration test: generate a synthetic corpus, run the whole
//! analysis pipeline and check that the qualitative findings of the paper
//! hold on it (who dominates, orderings, rough magnitudes).

use sparqlog::core::analysis::{CorpusAnalysis, Population};
use sparqlog::core::corpus::{ingest_all, RawLog};
use sparqlog::core::report;
use sparqlog::synth::{generate_corpus, CorpusConfig, Dataset};

fn analyzed(scale: f64, seed: u64) -> CorpusAnalysis {
    let corpus = generate_corpus(CorpusConfig {
        scale,
        seed,
        max_entries_per_dataset: 0,
    });
    let raw: Vec<RawLog> = corpus
        .logs
        .iter()
        .map(|l| RawLog::new(l.dataset.label(), l.entries.clone()))
        .collect();
    let ingested = ingest_all(&raw);
    CorpusAnalysis::analyze(&ingested, Population::Unique)
}

#[test]
fn corpus_accounting_is_consistent() {
    let analysis = analyzed(1e-5, 42);
    assert_eq!(analysis.datasets.len(), 13);
    for d in &analysis.datasets {
        assert!(d.counts.valid <= d.counts.total, "{}", d.label);
        assert!(d.counts.unique <= d.counts.valid, "{}", d.label);
        assert_eq!(d.keywords.total_queries, d.counts.unique, "{}", d.label);
    }
    let c = &analysis.combined.counts;
    let sum_total: u64 = analysis.datasets.iter().map(|d| d.counts.total).sum();
    assert_eq!(c.total, sum_total);
}

#[test]
fn headline_findings_of_the_paper_hold_on_the_synthetic_corpus() {
    let analysis = analyzed(2e-5, 7);
    let combined = &analysis.combined;

    // Section 4.1: SELECT queries dominate the corpus.
    let k = &combined.keywords;
    assert!(k.select > k.ask + k.describe + k.construct);

    // Section 4.2: the majority of SELECT/ASK queries are small. (The paper
    // measures this on the full-scale corpus where WikiData's 309 hand-picked
    // multi-triple queries are negligible; at the test's reduced scale they
    // are over-represented, so we check the endpoint logs individually and
    // use a softer bound for the combined corpus.)
    assert!(combined.triples.cumulative_share_at_most(2) > 0.35);
    for d in &analysis.datasets {
        if d.label.starts_with("BioP") || d.label == "SWDF13" {
            assert!(
                d.triples.cumulative_share_at_most(2) > 0.5,
                "{} should be dominated by small queries",
                d.label
            );
        }
    }

    // Section 4.3: CPF patterns cover the majority of SELECT/ASK queries,
    // and adding Opt increases the coverage.
    let cpf_share = combined.opsets.cpf_subtotal() as f64 / combined.opsets.total.max(1) as f64;
    assert!(cpf_share > 0.4, "CPF subtotal share {cpf_share}");
    assert!(combined.opsets.cpf_plus_opt_increment() > 0);

    // Section 5.2: the fragment hierarchy is ordered CQ ≤ CQF ≤ CQOF, with
    // well-designed patterns covering almost all AOF patterns.
    let f = &combined.fragments;
    assert!(f.cq <= f.cqf && f.cqf <= f.cqof);
    assert!(f.well_designed_share_of_aof() > 0.9);

    // Section 6.1: the overwhelming majority of CQ-like queries are acyclic,
    // and flower sets reach (almost) full coverage.
    let shapes = &combined.shapes_cqof;
    assert!(shapes.forest as f64 / shapes.total.max(1) as f64 > 0.9);
    assert!(shapes.flower_set >= shapes.forest);
    assert!(shapes.treewidth_le2 + shapes.treewidth_3 + shapes.treewidth_ge4 == shapes.total);
    assert_eq!(shapes.treewidth_ge4, 0, "no query should need treewidth 4");

    // Section 6.2: variable-predicate queries are overwhelmingly of hypertree
    // width 1 or 2.
    let h = &combined.hypertree;
    assert!(h.width1 + h.width2 >= h.width3);

    // Section 7: property paths exist and are almost all tractable.
    assert!(combined.paths.total > 0);
    assert!(combined.paths.potentially_hard * 20 <= combined.paths.navigational().max(1));
}

#[test]
fn dataset_idiosyncrasies_survive_the_pipeline() {
    let analysis = analyzed(2e-5, 13);
    let by_label = |label: &str| {
        analysis
            .datasets
            .iter()
            .find(|d| d.label == label)
            .unwrap_or_else(|| panic!("missing dataset {label}"))
    };
    // BioMed13 is DESCRIBE-dominated; its S/A share is the smallest.
    let biomed = by_label("BioMed13");
    assert!(biomed.triples.select_ask_share() < 0.5);
    // BritM14 queries almost always use DISTINCT — at the test's small scale
    // (a handful of unique BritM queries) we check that the share stays well
    // above the corpus-wide DISTINCT share rather than pinning 97 %.
    let britm = by_label("BritM14");
    let britm_distinct =
        britm.keywords.distinct as f64 / britm.keywords.total_queries.max(1) as f64;
    let corpus_distinct = analysis.combined.keywords.distinct as f64
        / analysis.combined.keywords.total_queries.max(1) as f64;
    assert!(
        britm_distinct > 0.5 && britm_distinct > corpus_distinct,
        "BritM14 DISTINCT share {britm_distinct} vs corpus {corpus_distinct}"
    );
    // BioPortal remains the GRAPH-heavy source.
    let biop = by_label("BioP13");
    assert!(biop.keywords.graph as f64 / biop.keywords.total_queries.max(1) as f64 > 0.5);
    // WikiData17 is generated in full and is always 308-309 valid queries.
    let wd = by_label("WikiData17");
    assert!(wd.counts.total == 309);
    assert!(wd.counts.valid >= 300);
}

#[test]
fn valid_population_is_a_superset_of_unique() {
    let corpus = generate_corpus(CorpusConfig {
        scale: 1e-5,
        seed: 3,
        max_entries_per_dataset: 0,
    });
    let raw: Vec<RawLog> = corpus
        .logs
        .iter()
        .map(|l| RawLog::new(l.dataset.label(), l.entries.clone()))
        .collect();
    let ingested = ingest_all(&raw);
    let unique = CorpusAnalysis::analyze(&ingested, Population::Unique);
    let valid = CorpusAnalysis::analyze(&ingested, Population::Valid);
    assert!(valid.combined.keywords.total_queries >= unique.combined.keywords.total_queries);
    assert!(valid.combined.opsets.total >= unique.combined.opsets.total);
}

#[test]
fn reports_render_for_the_full_corpus() {
    let analysis = analyzed(1e-5, 21);
    let combined = &analysis.combined;
    let all = [
        report::table1(&analysis),
        report::table2_keywords(combined),
        report::figure1_triples(&analysis),
        report::table3_opsets(combined),
        report::section44_projection(combined),
        report::section52_fragments(combined),
        report::figure5_sizes(combined),
        report::table4_shapes(combined),
        report::section61_cycles(combined),
        report::section62_hypertree(combined),
        report::table5_paths(combined),
    ];
    for (i, r) in all.iter().enumerate() {
        assert!(r.lines().count() >= 2, "report {i} too short:\n{r}");
    }
    // Every dataset label appears in Table 1.
    for d in Dataset::ALL {
        assert!(all[0].contains(d.label()), "table 1 missing {}", d.label());
    }
}
