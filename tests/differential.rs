//! Differential test: the single-pass analysis engine must produce
//! byte-identical `DatasetAnalysis` / `CorpusAnalysis` results to the seed
//! multi-walk path on a mixed corpus.

use sparqlog::core::analysis::{CorpusAnalysis, Population};
use sparqlog::core::baseline::{add_query_multiwalk, analyze_multiwalk};
use sparqlog::core::corpus::{
    ingest, ingest_all, ingest_all_materializing, ingest_streams_with, LogReader, SliceLogReader,
    StreamOptions,
};
use sparqlog::core::{DatasetAnalysis, EngineOptions, QueryAnalysis, RawLog};
use sparqlog::parser::parse_query;
use sparqlog::synth::{generate_single_day_log, Dataset};

/// Handcrafted queries exercising every corner the pipeline measures:
/// all four query forms, property paths, cycles, variable predicates,
/// OPTIONAL nesting, filters (simple and not), EXISTS, subqueries,
/// aggregates, UNION/GRAPH/MINUS, VALUES, and bodyless queries.
fn handcrafted() -> Vec<String> {
    [
        // Plain CQs: chain, star, single edge with a constant.
        "SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z }",
        "SELECT ?x WHERE { ?x <http://a> ?b . ?x <http://c> ?d . ?x <http://e> ?f }",
        "SELECT ?x WHERE { ?x <http://p> <http://const> }",
        // Cycles: triangle, square, equality-closed chain.
        "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }",
        "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?d . ?d <http://p> ?a }",
        "SELECT * WHERE { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?d FILTER(?d = ?a) }",
        // Property paths of every flavour.
        "SELECT ?x WHERE { ?x <http://a>/<http://b> ?y }",
        "SELECT ?x WHERE { ?x <http://a>* ?y }",
        "SELECT ?x WHERE { ?x (<http://a>|<http://b>)+ ?y }",
        "SELECT ?x WHERE { ?x ^<http://a> ?y . ?y !<http://b> ?z }",
        "SELECT ?x WHERE { ?x (<http://a>/<http://b>)* ?y }",
        // Variable predicates (hypergraph analysis).
        "ASK { ?x1 ?p ?x2 . ?x2 <http://a> ?x3 . ?x3 ?p ?x4 }",
        "SELECT ?s WHERE { ?s ?p ?o }",
        // OPTIONAL: CQOF, wide interface, non-well-designed.
        "SELECT * WHERE { ?A <http://name> ?N OPTIONAL { ?A <http://email> ?E } }",
        "SELECT * WHERE { { ?A <http://name> ?N OPTIONAL { ?A <http://email> ?E } } OPTIONAL { ?A <http://web> ?W } }",
        "SELECT * WHERE { ?A <http://knows> ?N OPTIONAL { ?A <http://worksWith> ?N } }",
        "SELECT * WHERE { ?A <http://name> ?N OPTIONAL { ?A <http://email> ?W } OPTIONAL { ?A <http://web> ?W } }",
        // Filters: simple, two-variable, EXISTS, aggregate-bearing.
        "SELECT ?x WHERE { ?x <http://p> ?y FILTER(?y > 10) }",
        "SELECT ?x WHERE { ?x <http://p> ?y . ?x <http://q> ?z FILTER(?y < ?z) }",
        "SELECT ?x WHERE { ?x a <http://C> FILTER NOT EXISTS { ?x <http://p> ?y } }",
        "SELECT ?x WHERE { ?x <http://p> ?y FILTER EXISTS { ?y <http://q>/<http://r> ?z } }",
        // Projection corners: SELECT *, full list, ASK with/without vars, BIND.
        "SELECT * WHERE { ?x <http://p> ?y }",
        "SELECT ?x ?y WHERE { ?x <http://p> ?y }",
        "ASK { <http://s> <http://p> <http://o> }",
        "ASK { ?x <http://p> ?y }",
        "SELECT ?x WHERE { ?x <http://p> ?y BIND(?y + 1 AS ?z) }",
        "SELECT (COUNT(?x) AS ?c) WHERE { ?x <http://p> ?y } GROUP BY ?y HAVING (AVG(?y) > 2)",
        // Subqueries (aggregates inside, projection hiding).
        "SELECT ?x WHERE { { SELECT ?x (SUM(?v) AS ?s) WHERE { ?x <http://p> ?v } GROUP BY ?x } }",
        "SELECT ?x WHERE { { SELECT ?x ?y WHERE { ?x <http://p> ?y . ?y <http://q> ?z } } }",
        // UNION / GRAPH / MINUS / VALUES / SERVICE-free operator mix.
        "SELECT ?x WHERE { { ?x <http://p> ?y } UNION { ?x <http://q> ?y } UNION { ?x <http://r> ?y } }",
        "SELECT * WHERE { GRAPH ?g { ?x <http://a>/<http://b> ?y } }",
        "SELECT ?x WHERE { ?x a <http://C> MINUS { ?x a <http://D> } }",
        "SELECT ?x WHERE { ?x <http://a> ?y VALUES ?x { <http://v> <http://w> } }",
        // CONSTRUCT / DESCRIBE incl. bodyless.
        "CONSTRUCT { ?s <http://p> ?o } WHERE { ?s <http://q> ?o }",
        "DESCRIBE <http://r>",
        "DESCRIBE ?x WHERE { ?x a <http://C> }",
        // Duplicates (modulo whitespace / prefixes) and garbage.
        "SELECT   ?x   WHERE { ?x <http://p> ?y . ?y <http://q> ?z }",
        "PREFIX ex: <http://> SELECT ?x WHERE { ?x ex:p ?y . ?y ex:q ?z }",
        "this is not sparql at all",
        "",
        // Modifier-heavy query.
        "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } ORDER BY ?x LIMIT 10 OFFSET 5",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn mixed_corpus() -> Vec<RawLog> {
    let mut logs = vec![RawLog::new("handcrafted", handcrafted())];
    for (i, dataset) in [Dataset::DBpedia15, Dataset::Lgd14, Dataset::BioP13]
        .iter()
        .enumerate()
    {
        let day = generate_single_day_log(*dataset, 150, 1000 + i as u64);
        logs.push(RawLog::new(day.dataset.label(), day.entries));
    }
    logs
}

#[test]
fn corpus_analysis_is_byte_identical_to_the_multiwalk_path() {
    let ingested = ingest_all(&mixed_corpus());
    for population in [Population::Unique, Population::Valid] {
        let reference = analyze_multiwalk(&ingested, population);
        let single_pass = CorpusAnalysis::analyze(&ingested, population);
        assert_eq!(
            format!("{reference:?}"),
            format!("{single_pass:?}"),
            "single-pass vs multi-walk mismatch on {population:?}"
        );
        // Also through the explicitly-parallel entry point.
        let parallel = CorpusAnalysis::analyze_with(
            &ingested,
            population,
            EngineOptions {
                recovery: Default::default(),
                workers: 4,
                chunk_size: 3,
                ..EngineOptions::default()
            },
        );
        assert_eq!(format!("{reference:?}"), format!("{parallel:?}"));
    }
}

#[test]
fn streaming_ingestion_is_byte_identical_to_the_materializing_path() {
    // The streaming engine (incremental LogReader feed, canonical walk
    // hashed without materializing the string, sharded dedup) must agree
    // with the sequential materializing reference and the materializing
    // pool on counts, queries, unique indices AND the downstream reports.
    let raw = mixed_corpus();
    let reference: Vec<_> = raw.iter().map(ingest).collect();
    let pooled = ingest_all_materializing(&raw);
    for (batch, workers) in [(1, 1), (3, 4), (512, 2)] {
        let readers: Vec<Box<dyn LogReader + '_>> = raw
            .iter()
            .map(|l| Box::new(SliceLogReader::of(l)) as Box<dyn LogReader + '_>)
            .collect();
        let streamed = ingest_streams_with(
            readers,
            StreamOptions {
                recovery: Default::default(),
                workers,
                batch,
                shards: 8,
            },
        )
        .expect("in-memory ingestion cannot fail");
        for ((s, r), p) in streamed.iter().zip(&reference).zip(&pooled) {
            assert_eq!(s.counts, r.counts, "batch {batch}, workers {workers}");
            assert_eq!(s.unique_indices, r.unique_indices);
            assert_eq!(s.valid_queries, r.valid_queries);
            assert_eq!(s.counts, p.counts);
            assert_eq!(s.unique_indices, p.unique_indices);
        }
        for population in [Population::Unique, Population::Valid] {
            assert_eq!(
                format!("{:?}", CorpusAnalysis::analyze(&reference, population)),
                format!("{:?}", CorpusAnalysis::analyze(&streamed, population)),
                "corpus report differs on {population:?} (batch {batch}, workers {workers})"
            );
        }
    }
}

#[test]
fn per_query_fold_is_byte_identical_on_every_handcrafted_query() {
    // Pinpointing variant: fold each parseable query individually so a
    // regression names the exact query instead of a whole-corpus diff.
    for text in handcrafted() {
        let Ok(query) = parse_query(&text) else {
            continue;
        };
        let mut reference = DatasetAnalysis::default();
        add_query_multiwalk(&mut reference, &query);
        let mut single_pass = DatasetAnalysis::default();
        single_pass.add(&QueryAnalysis::of(&query));
        assert_eq!(
            format!("{reference:?}"),
            format!("{single_pass:?}"),
            "single-pass vs multi-walk mismatch on {text:?}"
        );
    }
}

#[test]
fn synthesized_queries_fold_identically_across_datasets() {
    use sparqlog::synth::{DatasetProfile, Synthesizer};
    for dataset in Dataset::ALL {
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), 77);
        for _ in 0..40 {
            let text = synth.fresh_query();
            let query = parse_query(&text).expect("synthesized queries parse");
            let mut reference = DatasetAnalysis::default();
            add_query_multiwalk(&mut reference, &query);
            let mut single_pass = DatasetAnalysis::default();
            single_pass.add(&QueryAnalysis::of(&query));
            assert_eq!(
                format!("{reference:?}"),
                format!("{single_pass:?}"),
                "mismatch on {dataset:?} query {text:?}"
            );
        }
    }
}
