//! Property-based tests of the streak detector (Section 8).

use proptest::prelude::*;
use sparqlog::streaks::{
    detect_streaks, normalized_levenshtein, similar_within, strip_prologue, StreakConfig,
};
use sparqlog::synth::{generate_single_day_log, Dataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Structural invariants of every detected streak: members are strictly
    /// increasing, gaps respect the window, and consecutive members are
    /// similar after prologue stripping.
    #[test]
    fn streaks_respect_window_and_similarity(seed in 0u64..500, window in 2usize..12) {
        let log = generate_single_day_log(Dataset::DBpedia16, 120, seed);
        let config = StreakConfig { window, threshold: 0.25 };
        let streaks = detect_streaks(&log.entries, config);
        for streak in &streaks {
            prop_assert!(streak.len() >= 2);
            for pair in streak.members.windows(2) {
                prop_assert!(pair[1] > pair[0]);
                prop_assert!(pair[1] - pair[0] <= window, "gap exceeds window");
                let a = strip_prologue(&log.entries[pair[0]]);
                let b = strip_prologue(&log.entries[pair[1]]);
                prop_assert!(
                    similar_within(a, b, 0.25),
                    "consecutive streak members are not similar:\n{a}\n{b}"
                );
            }
        }
    }

    /// The Levenshtein distance is a metric-like similarity: symmetric, zero
    /// on equal strings, and bounded by the longer length.
    #[test]
    fn levenshtein_properties(a in "[a-zA-Z ?{}<>/:.]{0,40}", b in "[a-zA-Z ?{}<>/:.]{0,40}") {
        let d_ab = normalized_levenshtein(&a, &b);
        let d_ba = normalized_levenshtein(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert_eq!(normalized_levenshtein(&a, &a), 0.0);
        // The cheap prefilter agrees with the exact test.
        prop_assert_eq!(similar_within(&a, &b, 0.25), d_ab <= 0.25);
    }

    /// Prologue stripping never removes the query-form keyword itself and is
    /// idempotent.
    #[test]
    fn strip_prologue_is_idempotent(prefixes in 0usize..4, seed in 0u64..300) {
        let log = generate_single_day_log(Dataset::DBpedia14, 6, seed);
        for entry in &log.entries {
            let mut text = String::new();
            for i in 0..prefixes {
                text.push_str(&format!("PREFIX p{i}: <http://example.org/ns{i}#> "));
            }
            text.push_str(entry);
            let once = strip_prologue(&text);
            let twice = strip_prologue(once);
            prop_assert_eq!(once, twice);
        }
    }
}

#[test]
fn bigger_windows_find_at_least_as_many_streak_members() {
    let log = generate_single_day_log(Dataset::DBpedia15, 300, 11);
    let small = detect_streaks(
        &log.entries,
        StreakConfig {
            window: 5,
            threshold: 0.25,
        },
    );
    let large = detect_streaks(
        &log.entries,
        StreakConfig {
            window: 30,
            threshold: 0.25,
        },
    );
    let members =
        |streaks: &[sparqlog::streaks::Streak]| -> usize { streaks.iter().map(|s| s.len()).sum() };
    assert!(members(&large) >= members(&small));
}
