//! Fuzz harness for malformed-input recovery: byte soup, truncation sweeps
//! and single-byte mutations of valid queries, all ingested in Lenient
//! mode. Every case asserts the hardening contract end-to-end — no panic
//! escapes any engine, and the fused, staged, sharded and served paths
//! produce byte-identical reports and error tallies.
//!
//! The case count defaults to 48 per property and scales with the
//! `SPARQLOG_FUZZ_CASES` environment variable (the CI fuzz-smoke job runs
//! an elevated count). Cases are generated deterministically by the
//! proptest shim; a failure prints the offending inputs, which double as
//! the reproduction seed.

use proptest::prelude::*;
use sparqlog::core::analysis::CorpusAnalysis;
use sparqlog::core::corpus::{
    analyze_streams_with, ingest_streams_with, FileLogReader, FusedOptions, LogReader,
    StreamOptions,
};
use sparqlog::core::report::full_report;
use sparqlog::core::{Population, RecoveryPolicy};
use sparqlog::serve::{Client, JobPhase, ServeAddr, ServeConfig, Server, ServerHandle};
use sparqlog::shard::{analyze_sharded, LogSpec, ShardOptions, WorkerCommand};
use sparqlog::synth::{Dataset, DatasetProfile, Synthesizer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

const WORKER: &str = env!("CARGO_BIN_EXE_sparqlog-shard-worker");
const SETTLE: Duration = Duration::from_secs(300);
const VALID_BEFORE: &str = "SELECT ?x WHERE { ?x a <http://example.org/Widget> }";
const VALID_AFTER: &str = "ASK { ?a <http://example.org/p> ?b }";

/// Cases per property; override with `SPARQLOG_FUZZ_CASES`.
fn fuzz_cases() -> u32 {
    std::env::var("SPARQLOG_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Writes one fuzz corpus to a unique scratch file and returns its path.
fn write_case(prefix: &str, bytes: &[u8]) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("sparqlog-fuzz-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fuzz scratch dir");
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{prefix}-{n}.log"));
    std::fs::write(&path, bytes).expect("write fuzz case");
    path
}

fn reader(path: &PathBuf) -> Vec<Box<dyn LogReader>> {
    vec![Box::new(FileLogReader::open("fuzz".to_string(), path).expect("open fuzz log")) as _]
}

/// One server shared by every fuzz case (starting one per case would
/// dominate the runtime); submissions are serialized through one client.
fn serve_client() -> &'static Mutex<Client> {
    static SERVER: OnceLock<(Mutex<Client>, ServerHandle)> = OnceLock::new();
    let (client, _handle) = SERVER.get_or_init(|| {
        let config = ServeConfig {
            worker: WorkerCommand::new(WORKER),
            worker_slots: 2,
            worker_threads: 2,
            heartbeat: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let server =
            Server::bind(config, &ServeAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        std::thread::spawn(move || server.run());
        let client = Client::connect(&addr).expect("connect");
        (Mutex::new(client), handle)
    });
    client
}

/// The hardening contract, asserted for one fuzz corpus: Lenient ingestion
/// never fails, and the fused (1/2/8 workers), staged, sharded and served
/// engines agree byte-for-byte on the report and the error tally.
fn assert_engines_agree(prefix: &str, bytes: &[u8]) {
    let path = write_case(prefix, bytes);

    let reference = analyze_streams_with(
        reader(&path),
        Population::Unique,
        FusedOptions {
            workers: 1,
            batch: 0,
            recovery: RecoveryPolicy::Lenient,
        },
    )
    .expect("lenient fused ingestion must recover any input");
    let report = full_report(&reference.corpus);

    for (workers, batch) in [(2, 1), (8, 7)] {
        let fused = analyze_streams_with(
            reader(&path),
            Population::Unique,
            FusedOptions {
                workers,
                batch,
                recovery: RecoveryPolicy::Lenient,
            },
        )
        .expect("lenient fused ingestion must recover any input");
        assert_eq!(fused.summaries, reference.summaries, "{workers} workers");
        assert_eq!(full_report(&fused.corpus), report, "{workers} workers");
    }

    let staged = ingest_streams_with(
        reader(&path),
        StreamOptions {
            workers: 2,
            batch: 3,
            shards: 4,
            recovery: RecoveryPolicy::Lenient,
        },
    )
    .expect("lenient staged ingestion must recover any input");
    assert_eq!(staged[0].errors, reference.summaries[0].errors);
    let staged_corpus = CorpusAnalysis::analyze(&staged, Population::Unique);
    assert_eq!(full_report(&staged_corpus), report, "staged");

    let logs = vec![LogSpec::new("fuzz", &path)];
    let options = ShardOptions {
        shards: 2,
        worker_threads: 2,
        worker: WorkerCommand::new(WORKER),
        recovery: RecoveryPolicy::Lenient,
    };
    let sharded =
        analyze_sharded(&logs, Population::Unique, &options).expect("sharded run must recover");
    assert_eq!(sharded.summaries, reference.summaries, "sharded");
    assert_eq!(full_report(&sharded.corpus), report, "sharded");

    let mut client = serve_client().lock().expect("serve client");
    let (job, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Lenient,
            vec![("fuzz".to_string(), path.display().to_string())],
        )
        .expect("submit fuzz job");
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Complete, "served: {}", status.error);
    assert_eq!(
        status.errors,
        reference.summaries[0].errors.total(),
        "served"
    );
    let served = client.report(job, true).expect("report");
    assert_eq!(served.text, report, "served");
    drop(client);

    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Arbitrary byte soup — embedded NULs, stray newlines, invalid UTF-8,
    /// anything — never panics and never diverges between engines.
    #[test]
    fn byte_soup_recovers_identically_everywhere(
        bytes in prop::collection::vec(0u8..=255u8, 0..600),
    ) {
        assert_engines_agree("soup", &bytes);
    }

    /// A synthesized valid query truncated at an arbitrary byte offset
    /// (possibly mid-UTF-8-sequence), sandwiched between valid entries:
    /// the neighbors survive, the stump is tallied, every engine agrees.
    #[test]
    fn truncation_sweep_recovers_identically_everywhere(
        seed in 0u64..5_000,
        dataset_idx in 0usize..13,
        cut in 0usize..400,
    ) {
        let mut synth = Synthesizer::new(DatasetProfile::of(Dataset::ALL[dataset_idx]), seed);
        let query = synth.fresh_query();
        let cut = cut.min(query.len());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(VALID_BEFORE.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&query.as_bytes()[..cut]);
        bytes.push(b'\n');
        bytes.extend_from_slice(VALID_AFTER.as_bytes());
        bytes.push(b'\n');
        assert_engines_agree("trunc", &bytes);
    }

    /// A synthesized valid query with one byte overwritten by an arbitrary
    /// value (which may inject a NUL, a newline that splits the entry, or
    /// an invalid UTF-8 byte): no panic, engines byte-identical.
    #[test]
    fn single_byte_mutation_recovers_identically_everywhere(
        seed in 0u64..5_000,
        dataset_idx in 0usize..13,
        position in 0usize..4_096,
        value in 0u8..=255u8,
    ) {
        let mut synth = Synthesizer::new(DatasetProfile::of(Dataset::ALL[dataset_idx]), seed);
        let mut query = synth.fresh_query().into_bytes();
        let at = position % query.len();
        query[at] = value;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(VALID_BEFORE.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&query);
        bytes.push(b'\n');
        bytes.extend_from_slice(VALID_AFTER.as_bytes());
        bytes.push(b'\n');
        assert_engines_agree("mutate", &bytes);
    }
}
