//! The fused ingest→analyze streaming engine: differential proof that
//! `analyze_streams` renders corpus reports byte-identical to the staged
//! `ingest_streams` + `analyze_cached` pipeline — over synthesized corpora,
//! worker counts 1/2/8, batch sizes that force duplicates to straddle batch
//! boundaries, both populations, a shared cache surviving the population
//! switch, cache shard boundaries, and file-backed streams — plus the
//! occurrence-weighted fold's equivalence to repeated folds.

use proptest::prelude::*;
use sparqlog::core::analysis::{CachePolicy, EngineOptions};
use sparqlog::core::cache::AnalysisCache;
use sparqlog::core::corpus::{
    analyze_streams, analyze_streams_cached, analyze_streams_with, ingest, ingest_all,
    FileLogReader, FusedOptions, LogReader, MemoryLogReader, RawLog,
};
use sparqlog::core::report::full_report;
use sparqlog::core::{CorpusAnalysis, DatasetAnalysis, Population, QueryAnalysis};
use sparqlog::synth::{generate_single_day_log, Dataset, DatasetProfile, Synthesizer};

fn uncached_options() -> EngineOptions {
    EngineOptions {
        recovery: Default::default(),
        workers: 1,
        chunk_size: 0,
        cache: CachePolicy::Disabled,
    }
}

fn memory_readers(logs: &[RawLog]) -> Vec<Box<dyn LogReader + 'static>> {
    logs.iter()
        .map(|log| {
            Box::new(MemoryLogReader::new(log.label.clone(), log.entries.clone()))
                as Box<dyn LogReader + 'static>
        })
        .collect()
}

/// A fixed duplicate-heavy corpus: three synthesized day logs, each tiled
/// three times, with cross-log duplicates (the first log's head is appended
/// to the last).
fn duplicate_heavy_corpus() -> Vec<RawLog> {
    let mut raw = Vec::new();
    for (i, dataset) in [Dataset::DBpedia15, Dataset::WikiData17, Dataset::BioP13]
        .iter()
        .enumerate()
    {
        let day = generate_single_day_log(*dataset, 80, 400 + i as u64);
        let mut entries = Vec::new();
        for _ in 0..3 {
            entries.extend(day.entries.iter().cloned());
        }
        raw.push(RawLog::new(day.dataset.label(), entries));
    }
    let head: Vec<String> = raw[0].entries.iter().take(30).cloned().collect();
    raw[2].entries.extend(head);
    raw
}

#[test]
fn fused_matches_staged_on_the_fixed_corpus_across_workers_and_batches() {
    let raw = duplicate_heavy_corpus();
    let staged_logs = ingest_all(&raw);
    for population in [Population::Unique, Population::Valid] {
        let (staged, _) =
            CorpusAnalysis::analyze_stats(&staged_logs, population, uncached_options());
        let staged_report = full_report(&staged);
        for workers in [1, 2, 8] {
            // Batch 7 splits the tiled logs mid-repeat, so duplicates of one
            // canonical form land in different batches (and, at >1 workers,
            // in different workers' occurrence maps).
            for batch in [0, 7] {
                let fused = analyze_streams_with(
                    memory_readers(&raw),
                    population,
                    FusedOptions {
                        workers,
                        batch,
                        recovery: Default::default(),
                    },
                )
                .unwrap();
                assert_eq!(
                    full_report(&fused.corpus),
                    staged_report,
                    "fused vs staged diverged: {population:?}, {workers} workers, batch {batch}"
                );
                for (summary, staged_log) in fused.summaries.iter().zip(&staged_logs) {
                    assert_eq!(summary.counts, staged_log.counts);
                    let occurrence_total: u64 =
                        summary.occurrences.iter().map(|&(_, count)| count).sum();
                    assert_eq!(occurrence_total, summary.counts.valid);
                    assert_eq!(summary.occurrences.len() as u64, summary.counts.unique);
                }
            }
        }
    }
}

#[test]
fn shared_cache_survives_the_population_switch_without_reanalysing() {
    let raw = duplicate_heavy_corpus();
    let cache = AnalysisCache::new();
    let valid = analyze_streams_cached(
        memory_readers(&raw),
        Population::Valid,
        FusedOptions::default(),
        &cache,
    )
    .unwrap();
    let after_valid = cache.stats();
    let unique = analyze_streams_cached(
        memory_readers(&raw),
        Population::Unique,
        FusedOptions::default(),
        &cache,
    )
    .unwrap();
    let after_unique = cache.stats();
    // The switch re-streams the corpus but every canonical form is already
    // memoized: no new analyses, no new distinct entries.
    assert_eq!(after_valid.misses, after_unique.misses);
    assert_eq!(after_valid.distinct, after_unique.distinct);
    assert!(after_unique.hits > after_valid.hits);
    // Both runs agree with fresh staged uncached references.
    let staged_logs = ingest_all(&raw);
    let (valid_ref, _) =
        CorpusAnalysis::analyze_stats(&staged_logs, Population::Valid, uncached_options());
    let (unique_ref, _) =
        CorpusAnalysis::analyze_stats(&staged_logs, Population::Unique, uncached_options());
    assert_eq!(full_report(&valid.corpus), full_report(&valid_ref));
    assert_eq!(full_report(&unique.corpus), full_report(&unique_ref));
}

#[test]
fn cache_shard_boundaries_do_not_change_the_fused_report() {
    let raw = duplicate_heavy_corpus();
    let single = AnalysisCache::with_shards(1);
    let many = AnalysisCache::with_shards(64);
    let mut reports = Vec::new();
    for cache in [&single, &many] {
        let fused = analyze_streams_cached(
            memory_readers(&raw),
            Population::Valid,
            FusedOptions {
                workers: 2,
                batch: 16,
                recovery: Default::default(),
            },
            cache,
        )
        .unwrap();
        reports.push(full_report(&fused.corpus));
    }
    assert_eq!(reports[0], reports[1]);
    assert_eq!(single.len(), many.len());
    // Occurrence accounting covers every valid entry on both shardings.
    let lookups: u64 = ingest_all(&raw).iter().map(|l| l.counts.valid).sum();
    for cache in [&single, &many] {
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, lookups);
    }
}

#[test]
fn file_backed_streams_match_in_memory_streams() {
    let raw = duplicate_heavy_corpus();
    let dir = std::env::temp_dir().join(format!("sparqlog-fused-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut file_readers: Vec<Box<dyn LogReader + 'static>> = Vec::new();
    for (index, log) in raw.iter().enumerate() {
        let path = dir.join(format!("{index}.log"));
        // CRLF terminators and a missing trailing newline exercise the
        // word-at-a-time line scanner's edge cases end to end.
        let mut bytes = log.entries.join("\r\n").into_bytes();
        if index == 0 {
            bytes.extend_from_slice(b"\r\n");
        }
        std::fs::write(&path, bytes).unwrap();
        file_readers.push(Box::new(
            FileLogReader::open(log.label.clone(), &path).unwrap(),
        ));
    }
    let from_files = analyze_streams(file_readers, Population::Valid).unwrap();
    let from_memory = analyze_streams(memory_readers(&raw), Population::Valid).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(from_files.summaries, from_memory.summaries);
    assert_eq!(
        full_report(&from_files.corpus),
        full_report(&from_memory.corpus)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fused and staged reports agree on any synthesized corpus, for any
    /// worker count and batch size, on both populations.
    #[test]
    fn fused_reports_match_staged_on_synthesized_corpora(
        seed in 0u64..5_000,
        dataset_idx in 0usize..13,
        workers in 1usize..9,
        batch in 1usize..24,
    ) {
        let dataset = Dataset::ALL[dataset_idx];
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), seed);
        let mut entries: Vec<String> = (0..40).map(|_| synth.fresh_query()).collect();
        // Force duplicates, including across what will be batch boundaries.
        let tiled: Vec<String> = entries.iter().take(20).cloned().collect();
        entries.extend(tiled);
        entries.push("garbage entry".to_string());
        let raw = vec![RawLog::new("prop", entries)];
        let staged_logs = ingest_all(&raw);
        for population in [Population::Unique, Population::Valid] {
            let fused = analyze_streams_with(
                memory_readers(&raw),
                population,
                FusedOptions {
                        workers,
                        batch,
                        recovery: Default::default(),
                    },
            ).unwrap();
            let (staged, _) =
                CorpusAnalysis::analyze_stats(&staged_logs, population, uncached_options());
            prop_assert_eq!(
                full_report(&fused.corpus),
                full_report(&staged),
                "fused differential diverged: {:?}, {} workers, batch {}",
                population, workers, batch
            );
            prop_assert_eq!(fused.summaries[0].counts, staged_logs[0].counts);
        }
    }

    /// The occurrence-weighted fold equals repeated folds, query by query:
    /// `add_times(qa, n)` must match `n` calls to `add(qa)` bit for bit.
    #[test]
    fn weighted_fold_equals_repeated_folds(
        seed in 0u64..5_000,
        dataset_idx in 0usize..13,
        times in 0u64..12,
    ) {
        let dataset = Dataset::ALL[dataset_idx];
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), seed);
        for _ in 0..4 {
            let text = synth.fresh_query();
            let query = sparqlog::parser::parse_query(&text).expect("synthesized queries parse");
            let qa = QueryAnalysis::of(&query);
            let mut weighted = DatasetAnalysis::default();
            weighted.add_times(&qa, times);
            let mut repeated = DatasetAnalysis::default();
            for _ in 0..times {
                repeated.add(&qa);
            }
            prop_assert_eq!(
                format!("{weighted:?}"),
                format!("{repeated:?}"),
                "weighted fold diverges for {} x {}", times, text
            );
        }
    }

    /// The per-log summary's first-occurrence accounting matches the
    /// sequential reference ingest for any entry mix.
    #[test]
    fn summary_counts_match_sequential_ingest(
        seed in 0u64..5_000,
        dataset_idx in 0usize..13,
        batch in 1usize..16,
    ) {
        let dataset = Dataset::ALL[dataset_idx];
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), seed);
        let mut entries: Vec<String> = (0..24).map(|_| synth.fresh_query()).collect();
        entries.push(String::new());
        entries.push("DESCRIBE <http://r>".to_string());
        entries.extend(entries.clone());
        let raw = RawLog::new("prop", entries);
        let fused = analyze_streams_with(
            memory_readers(std::slice::from_ref(&raw)),
            Population::Unique,
            FusedOptions {
                workers: 3,
                batch,
                recovery: Default::default(),
            },
        ).unwrap();
        let reference = ingest(&raw);
        prop_assert_eq!(fused.summaries[0].counts, reference.counts);
    }
}
