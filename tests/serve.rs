//! The networked analysis service, exercised end-to-end over real sockets
//! and real worker processes: concurrent clients must read byte-identical
//! complete reports (equal to the single-process fused engine's), a slow
//! consumer must not stall other sessions, a graceful drain must finish
//! in-flight jobs while refusing new ones, and a worker killed
//! mid-partition must be restarted and reassigned with no double-counted
//! occurrence in the Unique population.
//!
//! The CI determinism matrix pins `SPARQLOG_WORKERS` (analysis threads per
//! worker process); without it the tests default to 2.

use sparqlog::core::corpus::{analyze_streams_with, FileLogReader, FusedOptions, LogReader};
use sparqlog::core::report::full_report;
use sparqlog::core::{Population, RecoveryPolicy};
use sparqlog::serve::protocol::{self, Request, Response};
use sparqlog::serve::{
    Client, ClientError, JobPhase, ServeAddr, ServeConfig, Server, ServerHandle, SlowConsumerPolicy,
};
use sparqlog::shard::codec::FrameReader;
use sparqlog::shard::{LogSpec, WorkerCommand};
use sparqlog::synth::{generate_single_day_log, Dataset};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The worker binary built alongside this test (same package, same profile).
const WORKER: &str = env!("CARGO_BIN_EXE_sparqlog-shard-worker");

/// How long to wait for jobs that should succeed (generous: CI machines
/// are slow and single-core).
const SETTLE: Duration = Duration::from_secs(300);

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("sparqlog-serve-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes a duplicate-heavy corpus (three synthesized day logs, each tiled
/// three times, with cross-log duplicates) to one file per log.
fn write_corpus(dir: &Path) -> Vec<LogSpec> {
    let mut raw: Vec<(String, Vec<String>)> = Vec::new();
    for (i, dataset) in [Dataset::DBpedia15, Dataset::WikiData17, Dataset::BioP13]
        .iter()
        .enumerate()
    {
        let day = generate_single_day_log(*dataset, 60, 900 + i as u64);
        let mut entries = Vec::new();
        for _ in 0..3 {
            entries.extend(day.entries.iter().cloned());
        }
        raw.push((day.dataset.label().to_string(), entries));
    }
    // Cross-log duplicates: the first log's head reappears in the last log.
    // A reassigned partition that double-counted would shift the Unique
    // population here.
    let head: Vec<String> = raw[0].1.iter().take(20).cloned().collect();
    raw[2].1.extend(head);

    raw.into_iter()
        .enumerate()
        .map(|(index, (label, entries))| {
            let path = dir.join(format!("{index:02}.log"));
            let mut file =
                std::io::BufWriter::new(std::fs::File::create(&path).expect("create log file"));
            for entry in &entries {
                writeln!(file, "{entry}").expect("write log line");
            }
            file.flush().expect("flush log file");
            LogSpec::new(label, path)
        })
        .collect()
}

/// The single-process fused reference over the same on-disk files.
fn fused_reference(logs: &[LogSpec], population: Population) -> String {
    let readers: Vec<Box<dyn LogReader>> = logs
        .iter()
        .map(|log| {
            Box::new(FileLogReader::open(log.label.clone(), &log.path).expect("open log"))
                as Box<dyn LogReader>
        })
        .collect();
    let fused = analyze_streams_with(readers, population, FusedOptions::default())
        .expect("fused reference run");
    full_report(&fused.corpus)
}

fn worker_threads() -> usize {
    std::env::var("SPARQLOG_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2)
}

fn base_config(worker: WorkerCommand) -> ServeConfig {
    ServeConfig {
        worker,
        worker_slots: 2,
        worker_threads: worker_threads(),
        heartbeat: Duration::from_millis(50),
        restart_backoff: Duration::from_millis(10),
        ..ServeConfig::default()
    }
}

/// Binds on an ephemeral port, runs the accept loop on a background
/// thread, and returns the resolved address plus control handles.
fn start_server(
    config: ServeConfig,
) -> (
    ServeAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config, &ServeAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn submit_specs(logs: &[LogSpec]) -> Vec<(String, String)> {
    logs.iter()
        .map(|log| (log.label.clone(), log.path.display().to_string()))
        .collect()
}

#[test]
fn concurrent_clients_read_byte_identical_complete_reports() {
    let scratch = Scratch::new("concurrent");
    let logs = write_corpus(scratch.path());
    let reference = fused_reference(&logs, Population::Unique);
    let (addr, handle, runner) = start_server(base_config(WorkerCommand::new(WORKER)));

    let mut client = Client::connect(&addr).expect("connect");
    let (draining, jobs) = client.ping().expect("ping");
    assert!(!draining);
    assert_eq!(jobs, 0);
    let (job, partitions) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(&logs),
        )
        .expect("submit");
    assert_eq!(partitions, logs.len() as u64);
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
    assert_eq!(status.completed, logs.len() as u64);
    assert_eq!(status.restarts, 0);

    // Several fresh sessions read the complete report concurrently; every
    // copy must be byte-identical to the fused engine's.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.report(job, true).expect("report")
            })
        })
        .collect();
    for reader in readers {
        let report = reader.join().expect("reader thread");
        assert!(report.complete);
        assert_eq!(report.text, reference);
    }

    // The event log is queryable over the wire and names worker pids.
    let lines = client.events(job).expect("events");
    assert!(
        lines
            .iter()
            .any(|l| l.contains("event=worker-start") && l.contains("pid=")),
        "{lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("event=job-complete")),
        "{lines:?}"
    );

    handle.stop();
    runner.join().expect("server thread").expect("server run");
}

#[test]
fn a_slow_consumer_blocks_only_its_own_session() {
    // No jobs involved: the outbox path is exercised with pipelined pings.
    let config = ServeConfig {
        outbox_frames: 2,
        writer_pause: Duration::from_millis(50),
        slow_policy: SlowConsumerPolicy::Block,
        ..base_config(WorkerCommand::new(WORKER))
    };
    let (addr, handle, runner) = start_server(config);
    let ServeAddr::Tcp(spec) = &addr else {
        unreachable!()
    };

    // The slow session pipelines 40 requests without reading a single
    // response: its 2-frame outbox fills and, under the Block policy, its
    // reader thread stalls. Draining takes >= 40 * 50ms = 2s.
    let mut slow = TcpStream::connect(spec.as_str()).expect("connect slow");
    protocol::write_header(&mut slow).expect("header");
    for _ in 0..40 {
        protocol::write_request(&mut slow, &Request::Ping).expect("pipelined ping");
    }

    // A healthy session served in the meantime must not feel it.
    let started = Instant::now();
    let mut healthy = Client::connect(&addr).expect("connect healthy");
    healthy.ping().expect("healthy ping");
    let latency = started.elapsed();
    assert!(
        latency < Duration::from_millis(1500),
        "healthy session stalled behind the slow one: {latency:?}"
    );

    // The Block policy loses nothing: all 40 responses eventually arrive.
    let mut frames = FrameReader::new(slow.try_clone().expect("clone"));
    frames.read_header().expect("server header");
    for i in 0..40 {
        let response = protocol::read_response(&mut frames)
            .expect("read response")
            .unwrap_or_else(|| panic!("stream ended after {i} responses"));
        assert!(matches!(response, Response::Pong { .. }));
    }

    handle.stop();
    runner.join().expect("server thread").expect("server run");
}

#[test]
fn a_slow_consumer_is_shed_under_the_shed_policy() {
    let config = ServeConfig {
        outbox_frames: 1,
        writer_pause: Duration::from_millis(100),
        slow_policy: SlowConsumerPolicy::Shed,
        ..base_config(WorkerCommand::new(WORKER))
    };
    let (addr, handle, runner) = start_server(config);
    let ServeAddr::Tcp(spec) = &addr else {
        unreachable!()
    };

    let mut slow = TcpStream::connect(spec.as_str()).expect("connect slow");
    protocol::write_header(&mut slow).expect("header");
    for _ in 0..10 {
        protocol::write_request(&mut slow, &Request::Ping).expect("pipelined ping");
    }
    // The connection must close early: the session is shed, not served.
    // The shutdown may even beat the server's header onto the wire, so a
    // failed header read counts as zero responses, not a test failure.
    let mut frames = FrameReader::new(slow.try_clone().expect("clone"));
    let mut answered = 0;
    if frames.read_header().is_ok() {
        while let Ok(Some(_)) = protocol::read_response(&mut frames) {
            answered += 1;
        }
    }
    assert!(
        answered < 10,
        "shed session still got all {answered} responses"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while !handle
        .events()
        .snapshot()
        .iter()
        .any(|l| l.contains("event=outbox-shed"))
    {
        assert!(Instant::now() < deadline, "no outbox-shed event logged");
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.stop();
    runner.join().expect("server thread").expect("server run");
}

#[test]
fn graceful_drain_finishes_in_flight_jobs_and_rejects_new_ones() {
    let scratch = Scratch::new("drain");
    let logs = write_corpus(scratch.path());
    let reference = fused_reference(&logs, Population::Valid);
    let (addr, handle, runner) = start_server(base_config(WorkerCommand::new(WORKER)));

    let mut client = Client::connect(&addr).expect("connect");
    let (job, _) = client
        .submit(Population::Valid, RecoveryPolicy::Auto, submit_specs(&logs))
        .expect("submit");
    client.drain().expect("drain");
    let (draining, _) = client.ping().expect("ping");
    assert!(draining);

    // New submissions are refused — on this session and on fresh ones.
    let rejected = client.submit(Population::Valid, RecoveryPolicy::Auto, submit_specs(&logs));
    assert!(
        matches!(&rejected, Err(ClientError::Server(message)) if message.contains("draining")),
        "{rejected:?}"
    );
    let mut late = Client::connect(&addr).expect("late connect");
    assert!(late
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(&logs)
        )
        .is_err());

    // The in-flight job still runs to completion and serves its report.
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
    let report = client.report(job, true).expect("report");
    assert!(report.complete);
    assert_eq!(report.text, reference);

    handle.stop();
    runner.join().expect("server thread").expect("server run");
}

#[test]
fn a_killed_worker_is_restarted_and_nothing_is_double_counted() {
    // `die` kills the worker before its first frame; `abort-mid-stream`
    // kills it after it has already flushed a complete log frame — the
    // stronger case for the no-double-count guarantee, since a careless
    // merge of the partial snapshot plus the restarted worker's full one
    // would fold the first log's occurrences twice.
    for fault in ["die", "abort-mid-stream"] {
        let scratch = Scratch::new(&format!("kill-{fault}"));
        let logs = write_corpus(scratch.path());
        let reference = fused_reference(&logs, Population::Unique);
        let flag = scratch.path().join("fault.flag");
        let worker = WorkerCommand::new(WORKER)
            .env("SPARQLOG_SHARD_FAULT", fault)
            .env("SPARQLOG_SHARD_FAULT_SHARD", "1")
            .env("SPARQLOG_SHARD_FAULT_FLAG", flag.display().to_string());
        let (addr, handle, runner) = start_server(base_config(worker));

        let mut client = Client::connect(&addr).expect("connect");
        let (job, _) = client
            .submit(
                Population::Unique,
                RecoveryPolicy::Auto,
                submit_specs(&logs),
            )
            .expect("submit");
        let status = client.wait_settled(job, SETTLE).expect("wait");
        assert_eq!(
            status.phase,
            JobPhase::Complete,
            "{fault}: {}",
            status.error
        );
        assert!(
            status.restarts >= 1,
            "{fault}: the fault never fired (restarts = 0)"
        );
        let report = client.report(job, true).expect("report");
        assert!(report.complete);
        assert_eq!(
            report.text, reference,
            "{fault}: report diverged after worker restart"
        );

        let lines = client.events(job).expect("events");
        assert!(
            lines.iter().any(|l| l.contains("event=worker-death")),
            "{fault}: {lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("event=partition-recovered") && l.contains("latency_ms=")),
            "{fault}: {lines:?}"
        );

        handle.stop();
        runner.join().expect("server thread").expect("server run");
    }
}

#[test]
fn heartbeats_keep_a_slow_but_alive_worker_from_being_killed() {
    // The delayed worker goes quiet on log frames for three times the
    // stall timeout — but its heartbeat thread keeps beating, so the
    // supervisor must NOT kill it. This is the test that heartbeats
    // actually feed the activity clock.
    let scratch = Scratch::new("delay");
    let logs = write_corpus(scratch.path());
    let reference = fused_reference(&logs, Population::Unique);
    let flag = scratch.path().join("fault.flag");
    let worker = WorkerCommand::new(WORKER)
        .env("SPARQLOG_SHARD_FAULT", "delay")
        .env("SPARQLOG_SHARD_FAULT_SHARD", "0")
        .env("SPARQLOG_SHARD_FAULT_DELAY_MS", "1500")
        .env("SPARQLOG_SHARD_FAULT_FLAG", flag.display().to_string());
    let config = ServeConfig {
        stall_timeout: Some(Duration::from_millis(500)),
        ..base_config(worker)
    };
    let (addr, handle, runner) = start_server(config);

    let mut client = Client::connect(&addr).expect("connect");
    let (job, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(&logs),
        )
        .expect("submit");
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
    assert_eq!(
        status.restarts, 0,
        "a heartbeating worker was wrongly declared dead"
    );
    let report = client.report(job, true).expect("report");
    assert_eq!(report.text, reference);

    handle.stop();
    runner.join().expect("server thread").expect("server run");
}

#[test]
fn a_stalled_worker_is_killed_by_the_heartbeat_timeout_and_recovered() {
    // The stalling worker writes its header and then nothing — no frames,
    // no heartbeats. Only the supervisor's stall timeout can detect it;
    // pipe EOF never comes.
    let scratch = Scratch::new("stall");
    let logs = write_corpus(scratch.path());
    let reference = fused_reference(&logs, Population::Unique);
    let flag = scratch.path().join("fault.flag");
    let worker = WorkerCommand::new(WORKER)
        .env("SPARQLOG_SHARD_FAULT", "stall")
        .env("SPARQLOG_SHARD_FAULT_SHARD", "0")
        .env("SPARQLOG_SHARD_FAULT_FLAG", flag.display().to_string());
    let config = ServeConfig {
        stall_timeout: Some(Duration::from_millis(500)),
        ..base_config(worker)
    };
    let (addr, handle, runner) = start_server(config);

    let mut client = Client::connect(&addr).expect("connect");
    let (job, _) = client
        .submit(
            Population::Unique,
            RecoveryPolicy::Auto,
            submit_specs(&logs),
        )
        .expect("submit");
    let status = client.wait_settled(job, SETTLE).expect("wait");
    assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
    assert!(status.restarts >= 1, "the stall never fired");
    let report = client.report(job, true).expect("report");
    assert_eq!(report.text, reference);

    let lines = client.events(job).expect("events");
    assert!(
        lines
            .iter()
            .any(|l| l.contains("event=worker-death") && l.contains("stalled")),
        "{lines:?}"
    );

    handle.stop();
    runner.join().expect("server thread").expect("server run");
}
