//! The fingerprint-keyed analysis cache and the interned-term allocation
//! diet: differential proof that cache-on vs cache-off (and interned vs
//! string-term) runs render byte-identical reports, duplicate handling at
//! shard boundaries, cross-call cache reuse, and the commutative merge.

use proptest::prelude::*;
use sparqlog::core::analysis::{CachePolicy, EngineOptions};
use sparqlog::core::baseline::analyze_multiwalk;
use sparqlog::core::cache::AnalysisCache;
use sparqlog::core::corpus::{ingest_all, IngestedLog, RawLog};
use sparqlog::core::report::full_report;
use sparqlog::core::{CorpusAnalysis, Population, QueryAnalysis};
use sparqlog::synth::{generate_single_day_log, Dataset, DatasetProfile, Synthesizer};

fn cached_options() -> EngineOptions {
    EngineOptions {
        recovery: Default::default(),
        cache: CachePolicy::Enabled,
        ..EngineOptions::default()
    }
}

fn uncached_options() -> EngineOptions {
    EngineOptions {
        recovery: Default::default(),
        cache: CachePolicy::Disabled,
        ..EngineOptions::default()
    }
}

/// A fixed duplicate-heavy corpus: three synthesized day logs, each tiled
/// three times so every canonical form occurs at least three times.
fn duplicate_heavy_corpus() -> Vec<IngestedLog> {
    let mut raw = Vec::new();
    for (i, dataset) in [Dataset::DBpedia15, Dataset::WikiData17, Dataset::BioP13]
        .iter()
        .enumerate()
    {
        let day = generate_single_day_log(*dataset, 80, 400 + i as u64);
        let mut entries = Vec::new();
        for _ in 0..3 {
            entries.extend(day.entries.iter().cloned());
        }
        raw.push(RawLog::new(day.dataset.label(), entries));
    }
    ingest_all(&raw)
}

#[test]
fn cache_on_and_cache_off_reports_are_byte_identical_on_a_fixed_corpus() {
    let logs = duplicate_heavy_corpus();
    for population in [Population::Unique, Population::Valid] {
        let (cached, stats) = CorpusAnalysis::analyze_stats(&logs, population, cached_options());
        let (uncached, _) = CorpusAnalysis::analyze_stats(&logs, population, uncached_options());
        assert_eq!(
            full_report(&cached),
            full_report(&uncached),
            "cache-on vs cache-off report mismatch on {population:?}"
        );
        // The debug representation (every tally field) must agree too.
        assert_eq!(format!("{cached:?}"), format!("{uncached:?}"));
        let cache_stats = stats.cache.expect("cached run reports cache stats");
        if population == Population::Valid {
            assert!(cache_stats.hits > 0, "duplicates must hit the cache");
        }
        assert!(stats.interner.bytes_saved > 0, "interner must save bytes");
    }
}

#[test]
fn interned_term_analysis_matches_the_string_term_baseline() {
    // The baseline multi-walk path runs entirely on string terms (string
    // union-find, string-keyed canonical-graph index); the engine runs on
    // the interned diet. Byte-identical corpus reports prove the diet
    // changes allocations only.
    let logs = duplicate_heavy_corpus();
    for population in [Population::Unique, Population::Valid] {
        let reference = analyze_multiwalk(&logs, population);
        let (interned, _) = CorpusAnalysis::analyze_stats(&logs, population, cached_options());
        assert_eq!(
            format!("{reference:?}"),
            format!("{interned:?}"),
            "interned vs string-term mismatch on {population:?}"
        );
    }
}

#[test]
fn shared_cache_survives_the_population_switch_and_duplicates_across_logs() {
    let logs = duplicate_heavy_corpus();
    let cache = AnalysisCache::new();
    let (valid_run, _) =
        CorpusAnalysis::analyze_cached(&logs, Population::Valid, EngineOptions::default(), &cache);
    let after_valid = cache.stats();
    let (unique_run, _) =
        CorpusAnalysis::analyze_cached(&logs, Population::Unique, EngineOptions::default(), &cache);
    let after_unique = cache.stats();
    // Every unique-population query is a canonical form the Valid run
    // already memoized: the switch must not analyse anything new.
    assert_eq!(after_valid.misses, after_unique.misses);
    assert_eq!(after_valid.distinct, after_unique.distinct);
    assert!(after_unique.hits > after_valid.hits);
    // And the shared-cache runs agree with fresh uncached runs.
    let (valid_ref, _) =
        CorpusAnalysis::analyze_stats(&logs, Population::Valid, uncached_options());
    let (unique_ref, _) =
        CorpusAnalysis::analyze_stats(&logs, Population::Unique, uncached_options());
    assert_eq!(full_report(&valid_run), full_report(&valid_ref));
    assert_eq!(full_report(&unique_run), full_report(&unique_ref));
}

#[test]
fn duplicates_straddling_cache_shard_boundaries_are_memoized_once() {
    // Single-shard and many-shard caches must agree: a fingerprint's shard
    // assignment never affects what is memoized.
    let logs = duplicate_heavy_corpus();
    let lookups: u64 = logs.iter().map(|l| l.counts.valid).sum();
    let single = AnalysisCache::with_shards(1);
    let many = AnalysisCache::with_shards(64);
    for cache in [&single, &many] {
        CorpusAnalysis::analyze_cached(&logs, Population::Valid, EngineOptions::default(), cache);
        // Every valid occurrence is exactly one lookup. Exact hit counts are
        // schedule-dependent under concurrency (a cold fingerprint may be
        // analysed by two racing workers), but the duplicate-dominated shape
        // is not: hits must far exceed the distinct-form count.
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, lookups);
        assert!(stats.hits > stats.distinct);
    }
    assert_eq!(single.len(), many.len());
    for log in &logs {
        for &fp in &log.fingerprints {
            let a = single.get(fp).expect("memoized in the single shard");
            let b = many.get(fp).expect("memoized across 64 shards");
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}

#[test]
fn merged_worker_caches_serve_identical_lookups() {
    // Split the corpus in two, analyse each half into its own cache, merge
    // both ways: every fingerprint of the full corpus resolves identically.
    let logs = duplicate_heavy_corpus();
    let (first_half, second_half) = logs.split_at(1);
    let build = |part: &[IngestedLog]| {
        let cache = AnalysisCache::new();
        CorpusAnalysis::analyze_cached(part, Population::Valid, EngineOptions::default(), &cache);
        cache
    };
    let ab = build(first_half);
    ab.merge(build(second_half));
    let ba = build(second_half);
    ba.merge(build(first_half));
    assert_eq!(ab.len(), ba.len());
    for log in &logs {
        for &fp in &log.fingerprints {
            let a = ab.get(fp).expect("merged cache covers the corpus");
            let b = ba.get(fp).expect("merge is commutative");
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache-on and cache-off reports agree on any synthesized corpus, for
    /// any worker count and chunk size, on both populations.
    #[test]
    fn cached_reports_match_uncached_on_synthesized_corpora(
        seed in 0u64..5_000,
        dataset_idx in 0usize..13,
        workers in 1usize..5,
        chunk_size in 0usize..16,
    ) {
        let dataset = Dataset::ALL[dataset_idx];
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), seed);
        let mut entries: Vec<String> = (0..40).map(|_| synth.fresh_query()).collect();
        // Force duplicates, including across what will be chunk boundaries.
        let tiled: Vec<String> = entries.iter().take(20).cloned().collect();
        entries.extend(tiled);
        entries.push("garbage entry".to_string());
        let logs = ingest_all(&[RawLog::new("prop", entries)]);
        for population in [Population::Unique, Population::Valid] {
            let cached = CorpusAnalysis::analyze_with(
                &logs,
                population,
                EngineOptions { workers, chunk_size, cache: CachePolicy::Enabled, recovery: Default::default() },
            );
            let uncached = CorpusAnalysis::analyze_with(
                &logs,
                population,
                EngineOptions { workers: 1, chunk_size: 0, cache: CachePolicy::Disabled, recovery: Default::default() },
            );
            prop_assert_eq!(
                full_report(&cached),
                full_report(&uncached),
                "cache differential diverged: {:?}, {} workers, chunk {}",
                population, workers, chunk_size
            );
        }
    }

    /// The memoized record equals a fresh analysis for every query the
    /// synthesizer produces — the per-query version of the differential.
    #[test]
    fn memoized_record_equals_fresh_analysis(seed in 0u64..5_000, dataset_idx in 0usize..13) {
        let dataset = Dataset::ALL[dataset_idx];
        let mut synth = Synthesizer::new(DatasetProfile::of(dataset), seed);
        let cache = AnalysisCache::with_shards(4);
        for _ in 0..8 {
            let text = synth.fresh_query();
            let query = sparqlog::parser::parse_query(&text).expect("synthesized queries parse");
            let fp = sparqlog::parser::canonical_fingerprint_of(&query);
            let memoized = cache.get_or_insert_with(fp, || QueryAnalysis::of(&query));
            let fresh = QueryAnalysis::of(&query);
            prop_assert_eq!(
                format!("{:?}", memoized),
                format!("{fresh:?}"),
                "memoized record diverges for {}", text
            );
        }
    }
}
