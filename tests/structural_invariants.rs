//! Property-based tests of the structural machinery: shape-class
//! implications, treewidth bounds and hypergraph/graph agreement on random
//! query graphs.

use proptest::prelude::*;
use sparqlog::graph::{
    generalized_hypertree_width, treewidth, CanonicalGraph, GraphMode, Hypergraph, ShapeReport,
};
use sparqlog::parser::ast::{Term, TriplePattern};

/// Builds triple patterns from a random edge list over a small variable pool.
fn triples_from_edges(edges: &[(u8, u8)]) -> Vec<TriplePattern> {
    edges
        .iter()
        .map(|(a, b)| {
            TriplePattern::new(
                Term::var(format!("v{a}")),
                Term::iri("http://p"),
                Term::var(format!("v{b}")),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// The shape classes form the containment hierarchy the cumulative
    /// Table-4 roll-up relies on.
    #[test]
    fn shape_class_implications(edges in prop::collection::vec((0u8..10, 0u8..10), 1..25)) {
        let triples = triples_from_edges(&edges);
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        let s = ShapeReport::classify(&g);
        // single edge ⇒ chain ⇒ tree (when non-empty) and chain ⇒ chain set.
        if s.single_edge {
            prop_assert!(s.chain);
        }
        if s.chain {
            prop_assert!(s.chain_set && s.tree);
        }
        if s.star {
            prop_assert!(s.tree);
        }
        if s.tree {
            prop_assert!(s.forest && s.flower);
        }
        if s.forest {
            prop_assert!(s.flower_set);
        }
        if s.cycle {
            prop_assert!(s.flower && !s.forest);
        }
        if s.flower {
            prop_assert!(s.flower_set);
        }
        // Mutual exclusions.
        if s.forest {
            prop_assert!(!s.cycle);
        }
    }

    /// Treewidth matches the shape-level expectations: forests have width ≤ 1,
    /// flowers ≤ 2, and the min-fill upper bound never undercuts the exact
    /// value.
    #[test]
    fn treewidth_is_consistent_with_shapes(edges in prop::collection::vec((0u8..9, 0u8..9), 1..20)) {
        let triples = triples_from_edges(&edges);
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap();
        let s = ShapeReport::classify(&g);
        let tw = treewidth(&g).value();
        if s.forest {
            prop_assert!(tw <= 1, "forest with treewidth {tw}");
        }
        if s.flower_set && !s.forest {
            prop_assert_eq!(tw, 2, "cyclic flower sets have treewidth exactly 2");
        }
        if g.has_cycle() {
            prop_assert!(tw >= 2);
            // A cyclic graph has a girth between 3 and its node count.
            let girth = g.girth().expect("cyclic graphs have a girth");
            prop_assert!(girth >= 3 && girth <= g.node_count());
        } else {
            prop_assert!(g.girth().is_none());
        }
        prop_assert!(tw <= g.node_count().saturating_sub(1).max(1));
    }

    /// For constant-predicate queries, the hypergraph view agrees with the
    /// graph view on acyclicity: the canonical hypergraph is α-acyclic iff
    /// the canonical graph (restricted to variables) has no cycle.
    #[test]
    fn hypergraph_acyclicity_matches_graph_cyclicity(edges in prop::collection::vec((0u8..8, 0u8..8), 1..16)) {
        // Avoid self-loop edges, which the graph drops but the hypergraph keeps.
        let edges: Vec<(u8, u8)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let triples = triples_from_edges(&edges);
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::VariablesOnly).unwrap();
        let h = Hypergraph::from_triples(&triples, &[]);
        prop_assert_eq!(h.is_acyclic(), !g.has_cycle());
    }

    /// Generalized hypertree width is 1 exactly for acyclic hypergraphs, at
    /// most 2 for graphs whose primal treewidth is 2, and decompositions have
    /// at least one node whenever there is at least one edge.
    #[test]
    fn hypertree_width_bounds(edges in prop::collection::vec((0u8..7, 0u8..7), 1..14)) {
        let edges: Vec<(u8, u8)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!edges.is_empty());
        let triples = triples_from_edges(&edges);
        let h = Hypergraph::from_triples(&triples, &[]);
        let result = generalized_hypertree_width(&h, 5).expect("small hypergraphs stay within width 5");
        prop_assert!(result.exact);
        prop_assert!(result.nodes >= 1);
        prop_assert_eq!(result.width == 1, h.is_acyclic());
        // ghw never exceeds the treewidth+1 of the primal graph; for binary
        // edges it in fact never exceeds the treewidth.
        let g = CanonicalGraph::from_triples(&triples, &[], GraphMode::VariablesOnly).unwrap();
        let tw = treewidth(&g).value().max(1);
        prop_assert!(result.width <= tw + 1, "ghw {} vs treewidth {}", result.width, tw);
    }
}
