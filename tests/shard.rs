//! The multi-process sharded analysis subsystem, exercised over real
//! process boundaries: the coordinator's merged report must be
//! byte-identical to the single-process fused engine's across a shard-count
//! × worker-thread matrix, and every worker fault (early exit, kill
//! mid-stream, truncated frame, codec version mismatch) must surface as a
//! structured error naming the shard — never a hang or a panic.
//!
//! The shard counts honour the `SPARQLOG_SHARDS` environment override (the
//! CI determinism matrix pins 1/2/4 there); without it the full 1/2/4 list
//! runs locally.

use sparqlog::core::corpus::{analyze_streams_with, FileLogReader, FusedOptions, LogReader};
use sparqlog::core::report::full_report;
use sparqlog::core::Population;
use sparqlog::shard::{
    analyze_sharded, DecodeErrorKind, LogSpec, ShardError, ShardOptions, WorkerCommand,
};
use sparqlog::synth::{generate_single_day_log, Dataset};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The worker binary built alongside this test (same package, same profile).
const WORKER: &str = env!("CARGO_BIN_EXE_sparqlog-shard-worker");

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("sparqlog-shard-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes a duplicate-heavy corpus (three synthesized day logs, each tiled
/// three times, with cross-log duplicates) to one file per log.
fn write_corpus(dir: &Path) -> Vec<LogSpec> {
    let mut raw: Vec<(String, Vec<String>)> = Vec::new();
    for (i, dataset) in [Dataset::DBpedia15, Dataset::WikiData17, Dataset::BioP13]
        .iter()
        .enumerate()
    {
        let day = generate_single_day_log(*dataset, 60, 500 + i as u64);
        let mut entries = Vec::new();
        for _ in 0..3 {
            entries.extend(day.entries.iter().cloned());
        }
        raw.push((day.dataset.label().to_string(), entries));
    }
    // Cross-log duplicates: the first log's head reappears in the last log.
    let head: Vec<String> = raw[0].1.iter().take(20).cloned().collect();
    raw[2].1.extend(head);

    raw.into_iter()
        .enumerate()
        .map(|(index, (label, entries))| {
            let path = dir.join(format!("{index:02}.log"));
            let mut file =
                std::io::BufWriter::new(std::fs::File::create(&path).expect("create log file"));
            for entry in &entries {
                assert!(!entry.contains('\n'), "synthesized entries are single-line");
                writeln!(file, "{entry}").expect("write log line");
            }
            file.flush().expect("flush log file");
            LogSpec::new(label, path)
        })
        .collect()
}

/// The single-process fused reference over the same on-disk files.
fn fused_reference(
    logs: &[LogSpec],
    population: Population,
) -> (String, Vec<sparqlog::core::LogSummary>) {
    let readers: Vec<Box<dyn LogReader>> = logs
        .iter()
        .map(|log| {
            Box::new(FileLogReader::open(log.label.clone(), &log.path).expect("open log"))
                as Box<dyn LogReader>
        })
        .collect();
    let fused = analyze_streams_with(readers, population, FusedOptions::default())
        .expect("fused reference run");
    (full_report(&fused.corpus), fused.summaries)
}

/// The shard counts to exercise: `SPARQLOG_SHARDS` pins one (CI matrix),
/// otherwise the full acceptance list.
fn shard_counts() -> Vec<usize> {
    match std::env::var("SPARQLOG_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => vec![n],
        _ => vec![1, 2, 4],
    }
}

fn options(shards: usize, worker_threads: usize) -> ShardOptions {
    ShardOptions {
        shards,
        worker_threads,
        worker: WorkerCommand::new(WORKER),
        recovery: Default::default(),
    }
}

#[test]
fn coordinator_report_is_byte_identical_to_the_fused_engine() {
    let scratch = Scratch::new("matrix");
    let logs = write_corpus(scratch.path());
    for population in [Population::Unique, Population::Valid] {
        let (reference_report, reference_summaries) = fused_reference(&logs, population);
        for shards in shard_counts() {
            for worker_threads in [1, 2, 8] {
                let sharded = analyze_sharded(&logs, population, &options(shards, worker_threads))
                    .unwrap_or_else(|error| {
                        panic!("{shards} shards × {worker_threads} workers: {error}")
                    });
                assert_eq!(
                    full_report(&sharded.corpus),
                    reference_report,
                    "report diverged: {population:?}, {shards} shards, {worker_threads} workers"
                );
                assert_eq!(
                    sharded.summaries, reference_summaries,
                    "summaries diverged: {population:?}, {shards} shards, {worker_threads} workers"
                );
                assert_eq!(sharded.shards(), shards.min(logs.len()));
                assert!(sharded.snapshot_bytes() > 0);
                assert!(sharded
                    .shard_stats
                    .iter()
                    .all(|s| s.logs > 0 && s.snapshot_bytes > 0));
                // Every occurrence the workers saw is accounted for in the
                // merged cache counters.
                let valid: u64 = sharded.summaries.iter().map(|s| s.counts.valid).sum();
                assert_eq!(sharded.cache.hits + sharded.cache.misses, valid);
            }
        }
    }
}

#[test]
fn killed_worker_mid_stream_is_a_structured_error_naming_the_shard() {
    let scratch = Scratch::new("kill");
    let logs = write_corpus(scratch.path());
    // Shard 1 aborts (SIGABRT — a kill mid-stream) after flushing its first
    // complete frame; shard 0 stays healthy.
    let mut options = options(2, 1);
    options.worker = WorkerCommand::new(WORKER)
        .env("SPARQLOG_SHARD_FAULT", "abort-mid-stream")
        .env("SPARQLOG_SHARD_FAULT_SHARD", "1");
    let error = analyze_sharded(&logs, Population::Unique, &options).unwrap_err();
    let ShardError::Worker { shard, code, .. } = &error else {
        panic!("expected a worker failure, got {error}");
    };
    assert_eq!(*shard, 1);
    assert_eq!(*code, None, "an aborted worker has no exit code");
    assert!(format!("{error}").contains("shard 1"), "{error}");
}

#[test]
fn truncated_frame_is_a_structured_decode_error() {
    let scratch = Scratch::new("truncate");
    let logs = write_corpus(scratch.path());
    let mut options = options(2, 1);
    options.worker = WorkerCommand::new(WORKER)
        .env("SPARQLOG_SHARD_FAULT", "truncate")
        .env("SPARQLOG_SHARD_FAULT_SHARD", "0");
    let error = analyze_sharded(&logs, Population::Unique, &options).unwrap_err();
    let ShardError::Decode {
        shard: 0,
        error: decode,
    } = &error
    else {
        panic!("expected a decode failure on shard 0, got {error}");
    };
    assert_eq!(decode.kind, DecodeErrorKind::UnexpectedEof);
    assert!(format!("{error}").contains("shard 0"), "{error}");
}

#[test]
fn codec_version_mismatch_is_reported_per_shard() {
    let scratch = Scratch::new("version");
    let logs = write_corpus(scratch.path());
    let mut options = options(2, 1);
    options.worker = WorkerCommand::new(WORKER)
        .env("SPARQLOG_SHARD_FAULT", "wrong-version")
        .env("SPARQLOG_SHARD_FAULT_SHARD", "1");
    let error = analyze_sharded(&logs, Population::Unique, &options).unwrap_err();
    let ShardError::Decode {
        shard: 1,
        error: decode,
    } = &error
    else {
        panic!("expected a decode failure on shard 1, got {error}");
    };
    assert!(
        matches!(decode.kind, DecodeErrorKind::UnsupportedVersion { .. }),
        "{decode:?}"
    );
    assert!(format!("{error}").contains("shard 1"), "{error}");
}

#[test]
fn early_exit_surfaces_the_status_and_stderr() {
    let scratch = Scratch::new("die");
    let logs = write_corpus(scratch.path());
    let mut options = options(2, 1);
    options.worker = WorkerCommand::new(WORKER)
        .env("SPARQLOG_SHARD_FAULT", "die")
        .env("SPARQLOG_SHARD_FAULT_SHARD", "0");
    let error = analyze_sharded(&logs, Population::Unique, &options).unwrap_err();
    let ShardError::Worker {
        shard: 0,
        code: Some(3),
        stderr,
    } = &error
    else {
        panic!("expected worker exit 3 on shard 0, got {error}");
    };
    assert!(stderr.contains("injected fault: die"), "stderr: {stderr:?}");
    assert!(format!("{error}").contains("shard 0"), "{error}");
}

#[test]
fn a_stderr_flooding_worker_does_not_deadlock_the_coordinator() {
    // The worker writes several pipe buffers to stderr before its first
    // stdout byte; without the coordinator's concurrent stderr drain this
    // would wedge both processes forever. The run must complete — and still
    // produce the byte-identical report.
    let scratch = Scratch::new("stderr-flood");
    let logs = write_corpus(scratch.path());
    let (reference_report, _) = fused_reference(&logs, Population::Unique);
    let mut options = options(2, 1);
    options.worker = WorkerCommand::new(WORKER)
        .env("SPARQLOG_SHARD_FAULT", "stderr-flood")
        .env("SPARQLOG_SHARD_FAULT_SHARD", "0");
    let sharded =
        analyze_sharded(&logs, Population::Unique, &options).expect("flooded worker completes");
    assert_eq!(full_report(&sharded.corpus), reference_report);
}

#[test]
fn a_missing_log_file_is_a_worker_error_not_a_hang() {
    let scratch = Scratch::new("missing-file");
    let mut logs = write_corpus(scratch.path());
    logs.push(LogSpec::new(
        "ghost",
        scratch.path().join("does-not-exist.log"),
    ));
    let error = analyze_sharded(&logs, Population::Unique, &options(2, 1)).unwrap_err();
    let ShardError::Worker {
        code: Some(1),
        stderr,
        ..
    } = &error
    else {
        panic!("expected a worker runtime failure, got {error}");
    };
    assert!(!stderr.is_empty());
}
