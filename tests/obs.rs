//! Observability must be free of observable side effects: every engine's
//! report is byte-identical with metrics enabled and disabled, across the
//! fused, staged, sharded, and served pipelines and a worker-count matrix.
//! Alongside the identity line: histogram merge commutativity (a property
//! the cross-process absorb path depends on) and event-journal round-trips.
//!
//! Metrics enablement is process-global (`sparqlog::obs::set_enabled`), so
//! every test that toggles it serializes on [`OBS_LOCK`] — the rest of the
//! suite runs with whatever the environment selected.

use proptest::prelude::*;
use sparqlog::core::corpus::{
    analyze_streams_with, ingest_streams_with, FileLogReader, FusedOptions, LogReader,
    StreamOptions,
};
use sparqlog::core::report::full_report;
use sparqlog::core::{CorpusAnalysis, Population, RecoveryPolicy};
use sparqlog::obs::{EventRecord, LatencyHistogram};
use sparqlog::serve::{Client, JobPhase, ServeAddr, ServeConfig, Server};
use sparqlog::shard::{analyze_sharded, LogSpec, ShardOptions, WorkerCommand};
use sparqlog::synth::{generate_single_day_log, Dataset};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// The worker binary built alongside this test (same package, same profile).
const WORKER: &str = env!("CARGO_BIN_EXE_sparqlog-shard-worker");

/// Serializes tests that flip the process-global metrics switch.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("sparqlog-obs-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes a duplicate-heavy corpus (two synthesized day logs, tiled, with
/// cross-log duplicates and one malformed entry) to one file per log. The
/// malformed entry keeps the error counters honest, so every engine below
/// runs lenient.
fn write_corpus(dir: &Path) -> Vec<LogSpec> {
    let mut raw: Vec<(String, Vec<String>)> = Vec::new();
    for (i, dataset) in [Dataset::DBpedia15, Dataset::WikiData17].iter().enumerate() {
        let day = generate_single_day_log(*dataset, 40, 1300 + i as u64);
        let mut entries = Vec::new();
        for _ in 0..3 {
            entries.extend(day.entries.iter().cloned());
        }
        raw.push((day.dataset.label().to_string(), entries));
    }
    let head: Vec<String> = raw[0].1.iter().take(10).cloned().collect();
    raw[1].1.extend(head);
    raw[1].1.push("THIS IS NOT SPARQL {{{".to_string());

    raw.into_iter()
        .enumerate()
        .map(|(index, (label, entries))| {
            let path = dir.join(format!("{index:02}.log"));
            let mut file =
                std::io::BufWriter::new(std::fs::File::create(&path).expect("create log file"));
            for entry in &entries {
                writeln!(file, "{entry}").expect("write log line");
            }
            file.flush().expect("flush log file");
            LogSpec::new(label, path)
        })
        .collect()
}

fn readers(logs: &[LogSpec]) -> Vec<Box<dyn LogReader>> {
    logs.iter()
        .map(|log| {
            Box::new(FileLogReader::open(log.label.clone(), &log.path).expect("open log"))
                as Box<dyn LogReader>
        })
        .collect()
}

fn fused_report(logs: &[LogSpec], workers: usize) -> String {
    let options = FusedOptions {
        workers,
        recovery: RecoveryPolicy::Lenient,
        ..FusedOptions::default()
    };
    let fused =
        analyze_streams_with(readers(logs), Population::Unique, options).expect("fused run");
    full_report(&fused.corpus)
}

fn staged_report(logs: &[LogSpec]) -> String {
    let options = StreamOptions {
        recovery: RecoveryPolicy::Lenient,
        ..StreamOptions::default()
    };
    let ingested = ingest_streams_with(readers(logs), options).expect("staged ingest");
    full_report(&CorpusAnalysis::analyze(&ingested, Population::Unique))
}

#[test]
fn fused_and_staged_reports_are_byte_identical_with_metrics_on_and_off() {
    let _guard = OBS_LOCK.lock().unwrap();
    let scratch = Scratch::new("fused-staged");
    let logs = write_corpus(scratch.path());
    let registry = sparqlog::obs::global();

    for workers in [1usize, 2, 8] {
        sparqlog::obs::set_enabled(false);
        registry.reset();
        let off = fused_report(&logs, workers);
        assert!(
            registry.snapshot().is_empty(),
            "a disabled run must record nothing ({workers} workers)"
        );

        sparqlog::obs::set_enabled(true);
        let on = fused_report(&logs, workers);
        let snapshot = registry.snapshot();
        sparqlog::obs::set_enabled(false);

        assert_eq!(
            on, off,
            "fused report diverged under instrumentation ({workers} workers)"
        );
        for name in [
            "pipeline_runs_total",
            "pipeline_batches_total",
            "pipeline_entries_total",
            "pipeline_valid_total",
            "pipeline_errors_total",
            "pipeline_read_bytes_total",
            "cache_misses_total",
        ] {
            assert!(
                snapshot.counter(name).is_some(),
                "missing counter {name} after an enabled fused run ({workers} workers)"
            );
        }
        for name in ["pipeline_read_us", "pipeline_parse_us", "pipeline_merge_us"] {
            assert!(
                snapshot.histogram(name).is_some(),
                "missing histogram {name} after an enabled fused run ({workers} workers)"
            );
        }
    }

    sparqlog::obs::set_enabled(false);
    registry.reset();
    let off = staged_report(&logs);
    sparqlog::obs::set_enabled(true);
    let on = staged_report(&logs);
    sparqlog::obs::set_enabled(false);
    registry.reset();
    assert_eq!(on, off, "staged report diverged under instrumentation");
}

#[test]
fn sharded_reports_are_byte_identical_with_metrics_on_and_off() {
    let _guard = OBS_LOCK.lock().unwrap();
    let scratch = Scratch::new("shard");
    let logs = write_corpus(scratch.path());
    let registry = sparqlog::obs::global();

    for worker_threads in [1usize, 2, 8] {
        let run = |metrics: bool| {
            // Worker processes pick the switch up from their environment;
            // the coordinator side follows the in-process override.
            sparqlog::obs::set_enabled(metrics);
            let options = ShardOptions {
                shards: 2,
                worker_threads,
                worker: WorkerCommand::new(WORKER)
                    .env("SPARQLOG_METRICS", if metrics { "1" } else { "0" }),
                recovery: RecoveryPolicy::Lenient,
            };
            let sharded =
                analyze_sharded(&logs, Population::Unique, &options).expect("sharded run");
            full_report(&sharded.corpus)
        };

        registry.reset();
        let off = run(false);
        assert!(
            registry.snapshot().is_empty(),
            "a disabled sharded run must record nothing"
        );
        let on = run(true);
        let snapshot = registry.snapshot();
        sparqlog::obs::set_enabled(false);
        registry.reset();

        assert_eq!(
            on, off,
            "sharded report diverged under instrumentation ({worker_threads} worker threads)"
        );
        // Coordinator-side counters plus worker registries absorbed from
        // the epilogue frames.
        assert_eq!(snapshot.counter("shard_workers_total"), Some(2));
        for name in [
            "shard_snapshot_bytes_total",
            "shard_log_frames_streamed_total",
            "pipeline_runs_total",
            "pipeline_valid_total",
        ] {
            assert!(
                snapshot.counter(name).is_some(),
                "missing counter {name} after an enabled sharded run"
            );
        }
        assert!(
            snapshot.histogram("pipeline_parse_us").is_some(),
            "worker parse latencies should ride home in the epilogue"
        );
    }
}

#[test]
fn serve_reports_are_byte_identical_and_metrics_cover_every_layer() {
    let _guard = OBS_LOCK.lock().unwrap();
    let scratch = Scratch::new("serve");
    let logs = write_corpus(scratch.path());
    let registry = sparqlog::obs::global();

    sparqlog::obs::set_enabled(false);
    registry.reset();
    let reference = fused_report(&logs, 2);

    let run = |metrics: bool, store: &Path| {
        sparqlog::obs::set_enabled(metrics);
        let config = ServeConfig {
            worker: WorkerCommand::new(WORKER)
                .env("SPARQLOG_METRICS", if metrics { "1" } else { "0" }),
            worker_slots: 2,
            worker_threads: 2,
            heartbeat: Duration::from_millis(50),
            store_path: Some(store.to_path_buf()),
            ..ServeConfig::default()
        };
        let server =
            Server::bind(config, &ServeAddr::Tcp("127.0.0.1:0".to_string())).expect("bind server");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let mut client = Client::connect(&addr).expect("connect");
        let specs = logs
            .iter()
            .map(|log| (log.label.clone(), log.path.display().to_string()))
            .collect();
        let (job, _partitions) = client
            .submit(Population::Unique, RecoveryPolicy::Lenient, specs)
            .expect("submit");
        let status = client
            .wait_settled(job, Duration::from_secs(300))
            .expect("settle");
        assert_eq!(status.phase, JobPhase::Complete, "{}", status.error);
        let report = client.report(job, true).expect("report");
        let (snapshot, text) = client.metrics().expect("metrics");
        drop(client);
        handle.stop();
        runner.join().expect("server thread").expect("server run");
        (report.text, snapshot, text)
    };

    registry.reset();
    let (off_report, off_snapshot, off_text) = run(false, &scratch.path().join("store-off.sqsn"));
    assert!(off_snapshot.is_empty(), "disabled server reported metrics");
    assert!(off_text.is_empty());

    registry.reset();
    let (on_report, on_snapshot, on_text) = run(true, &scratch.path().join("store-on.sqsn"));
    sparqlog::obs::set_enabled(false);
    registry.reset();

    assert_eq!(off_report, reference, "served report diverged from fused");
    assert_eq!(on_report, reference, "instrumented served report diverged");

    // The acceptance bar: one Metrics answer spanning all five layers.
    for name in [
        "pipeline_valid_total",            // pipeline (absorbed from workers)
        "cache_misses_total",              // cache (absorbed from workers)
        "shard_log_frames_streamed_total", // shard (worker epilogue)
        "persist_opens_total",             // persist (the job store)
        "serve_sessions_total",            // serve (the daemon itself)
        "serve_jobs_submitted_total",
        "serve_jobs_completed_total",
        "serve_requests_total",
    ] {
        assert!(
            on_snapshot.counter(name).is_some(),
            "metrics answer missing {name}: {on_text}"
        );
    }
    assert!(
        on_text.contains("sparqlog_pipeline_valid_total"),
        "text exposition missing the pipeline layer: {on_text}"
    );
}

#[test]
fn event_records_round_trip_through_the_journal_format() {
    let record = EventRecord::new("worker-death")
        .with("job", 7u64)
        .with("partition", 3u64)
        .with("attempt", 1u64)
        .with("error", "shard 3: worker exited with status 3");
    let line = format!("t=1234 seq=9 {}", record.render());
    let parsed = EventRecord::parse(&line).expect("parse journal line");
    assert_eq!(parsed.timestamp_ms(), Some(1234));
    assert_eq!(parsed.seq(), Some(9));
    assert_eq!(parsed.event(), "worker-death");
    assert_eq!(parsed.u64("partition"), Some(3));
    assert_eq!(
        parsed.get("error"),
        Some("shard 3: worker exited with status 3")
    );
}

proptest! {
    /// Merging histogram snapshots is commutative and lossless on counts:
    /// the property the coordinator's absorb path relies on when worker
    /// epilogues arrive in arbitrary completion order.
    #[test]
    fn histogram_merge_is_commutative(
        left in proptest::collection::vec(0u64..1_000_000, 0..64),
        right in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let _guard = OBS_LOCK.lock().unwrap();
        sparqlog::obs::set_enabled(true);
        let a = LatencyHistogram::new();
        for value in &left {
            a.record(*value);
        }
        let b = LatencyHistogram::new();
        for value in &right {
            b.record(*value);
        }
        sparqlog::obs::set_enabled(false);

        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());

        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count, (left.len() + right.len()) as u64);
        let sum: u64 = left.iter().chain(right.iter()).sum();
        prop_assert_eq!(ab.sum, sum);
        let max = left.iter().chain(right.iter()).copied().max().unwrap_or(0);
        prop_assert_eq!(ab.max, max);
        if ab.count > 0 {
            prop_assert_eq!(ab.quantile(1.0), Some(max));
        }
    }

    /// Arbitrary field values survive a render → parse round trip modulo
    /// the documented flattening (quotes become apostrophes, line breaks
    /// become spaces).
    #[test]
    fn event_record_render_parse_round_trips(
        values in proptest::collection::vec("[ -~]{0,24}", 1..8),
    ) {
        let mut record = EventRecord::new("prop");
        for (index, value) in values.iter().enumerate() {
            record.push(&format!("k{index}"), value);
        }
        let parsed = EventRecord::parse(&record.render()).expect("round trip");
        for (index, value) in values.iter().enumerate() {
            let expected: String = value
                .chars()
                .map(|ch| if ch == '"' { '\'' } else { ch })
                .collect();
            prop_assert_eq!(parsed.get(&format!("k{index}")), Some(expected.as_str()));
        }
    }
}
