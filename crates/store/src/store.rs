//! An in-memory, dictionary-encoded RDF triple store with the three classic
//! sorted permutation indexes (SPO, POS, OSP).
//!
//! The store plays the role of the database backend in the chain-vs-cycle
//! experiment of Section 5.1: both query engines read from the same indexes,
//! so performance differences come purely from the join strategy.

use crate::dictionary::Dictionary;
use serde::{Deserialize, Serialize};

/// An encoded triple `(subject, predicate, object)`.
pub type EncodedTriple = [u32; 3];

/// A triple pattern with optionally bound positions (encoded constants).
pub type EncodedPattern = [Option<u32>; 3];

/// The in-memory triple store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TripleStore {
    /// The term dictionary.
    pub dictionary: Dictionary,
    triples: Vec<EncodedTriple>,
    /// Sorted (s, p, o).
    spo: Vec<EncodedTriple>,
    /// Sorted (p, o, s).
    pos: Vec<EncodedTriple>,
    /// Sorted (o, s, p).
    osp: Vec<EncodedTriple>,
    dirty: bool,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple given as term strings.
    pub fn insert(&mut self, s: &str, p: &str, o: &str) {
        let s = self.dictionary.encode(s);
        let p = self.dictionary.encode(p);
        let o = self.dictionary.encode(o);
        self.insert_encoded([s, p, o]);
    }

    /// Inserts an already-encoded triple.
    pub fn insert_encoded(&mut self, t: EncodedTriple) {
        self.triples.push(t);
        self.dirty = true;
    }

    /// Number of triples (including duplicates until [`TripleStore::build`]
    /// deduplicates them).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Finalises the store: deduplicates triples and (re)builds the three
    /// permutation indexes. Must be called after loading and before querying;
    /// query methods call it implicitly through [`TripleStore::ensure_built`].
    pub fn build(&mut self) {
        self.triples.sort_unstable();
        self.triples.dedup();
        self.spo = self.triples.clone();
        self.pos = self.triples.clone();
        self.pos.sort_unstable_by_key(|t| [t[1], t[2], t[0]]);
        self.osp = self.triples.clone();
        self.osp.sort_unstable_by_key(|t| [t[2], t[0], t[1]]);
        self.dirty = false;
    }

    /// Builds indexes if needed.
    pub fn ensure_built(&mut self) {
        if self.dirty || (self.spo.len() != self.triples.len()) {
            self.build();
        }
    }

    /// Returns the triples matching a pattern (bound positions must match).
    /// The best permutation index for the bound positions is used; the
    /// returned vector is freshly allocated.
    pub fn matching(&self, pattern: EncodedPattern) -> Vec<EncodedTriple> {
        debug_assert!(!self.dirty, "call build() before querying");
        let [s, p, o] = pattern;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let probe = [s, p, o];
                if self.spo.binary_search(&probe).is_ok() {
                    vec![probe]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => {
                range_scan(&self.spo, |t| [t[0], t[1]].cmp(&[s, p])).to_vec()
            }
            (Some(s), None, None) => range_scan(&self.spo, |t| t[0].cmp(&s)).to_vec(),
            (None, Some(p), Some(o)) => {
                range_scan(&self.pos, |t| [t[1], t[2]].cmp(&[p, o])).to_vec()
            }
            (None, Some(p), None) => range_scan(&self.pos, |t| t[1].cmp(&p)).to_vec(),
            (None, None, Some(o)) => range_scan(&self.osp, |t| t[2].cmp(&o)).to_vec(),
            (Some(s), None, Some(o)) => {
                range_scan(&self.osp, |t| [t[2], t[0]].cmp(&[o, s])).to_vec()
            }
            (None, None, None) => self.spo.clone(),
        }
    }

    /// Counts the triples matching a pattern without materialising them.
    pub fn count_matching(&self, pattern: EncodedPattern) -> usize {
        let [s, p, o] = pattern;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.binary_search(&[s, p, o]).is_ok()),
            (Some(s), Some(p), None) => range_scan(&self.spo, |t| [t[0], t[1]].cmp(&[s, p])).len(),
            (Some(s), None, None) => range_scan(&self.spo, |t| t[0].cmp(&s)).len(),
            (None, Some(p), Some(o)) => range_scan(&self.pos, |t| [t[1], t[2]].cmp(&[p, o])).len(),
            (None, Some(p), None) => range_scan(&self.pos, |t| t[1].cmp(&p)).len(),
            (None, None, Some(o)) => range_scan(&self.osp, |t| t[2].cmp(&o)).len(),
            (Some(s), None, Some(o)) => range_scan(&self.osp, |t| [t[2], t[0]].cmp(&[o, s])).len(),
            (None, None, None) => self.spo.len(),
        }
    }

    /// Encodes a term without interning (returns `None` for unknown terms —
    /// a pattern mentioning an unknown constant matches nothing).
    pub fn encode_existing(&self, term: &str) -> Option<u32> {
        self.dictionary.lookup(term)
    }
}

/// Returns the contiguous slice of `sorted` whose elements compare equal
/// under `key_cmp` (a comparison of the element against the probe key).
fn range_scan(
    sorted: &[EncodedTriple],
    key_cmp: impl Fn(&EncodedTriple) -> std::cmp::Ordering,
) -> &[EncodedTriple] {
    let start = sorted.partition_point(|t| key_cmp(t) == std::cmp::Ordering::Less);
    let end = sorted.partition_point(|t| key_cmp(t) != std::cmp::Ordering::Greater);
    &sorted[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("a", "knows", "b");
        s.insert("a", "knows", "c");
        s.insert("b", "knows", "c");
        s.insert("c", "likes", "a");
        s.insert("a", "knows", "b"); // duplicate
        s.build();
        s
    }

    #[test]
    fn build_deduplicates() {
        let s = sample_store();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn pattern_lookup_by_each_index() {
        let s = sample_store();
        let knows = s.encode_existing("knows").unwrap();
        let a = s.encode_existing("a").unwrap();
        let c = s.encode_existing("c").unwrap();

        assert_eq!(s.matching([Some(a), Some(knows), None]).len(), 2);
        assert_eq!(s.matching([None, Some(knows), None]).len(), 3);
        assert_eq!(s.matching([None, Some(knows), Some(c)]).len(), 2);
        assert_eq!(s.matching([None, None, Some(c)]).len(), 2);
        assert_eq!(s.matching([Some(a), None, None]).len(), 2);
        assert_eq!(s.matching([None, None, None]).len(), 4);
        assert_eq!(s.count_matching([None, Some(knows), None]), 3);
    }

    #[test]
    fn fully_bound_lookup() {
        let s = sample_store();
        let a = s.encode_existing("a").unwrap();
        let knows = s.encode_existing("knows").unwrap();
        let b = s.encode_existing("b").unwrap();
        assert_eq!(s.matching([Some(a), Some(knows), Some(b)]).len(), 1);
        assert_eq!(s.matching([Some(b), Some(knows), Some(a)]).len(), 0);
    }

    #[test]
    fn unknown_terms_lookup_to_none() {
        let s = sample_store();
        assert_eq!(s.encode_existing("nonexistent"), None);
    }

    #[test]
    fn subject_object_bound_uses_osp() {
        let s = sample_store();
        let a = s.encode_existing("a").unwrap();
        let c = s.encode_existing("c").unwrap();
        let found = s.matching([Some(a), None, Some(c)]);
        assert_eq!(found.len(), 1);
        assert_eq!(s.dictionary.decode(found[0][1]), Some("knows"));
    }
}
