//! # sparqlog-store
//!
//! An in-memory, dictionary-encoded RDF triple store with two conjunctive
//! query engines:
//!
//! * [`BinaryJoinEngine`] — pairwise joins in textual order with fully
//!   materialised intermediate results (a PostgreSQL-style relational plan);
//! * [`TrieJoinEngine`] — a worst-case-optimal, variable-at-a-time join
//!   (leapfrog-trie-join style, standing in for graph-native engines such as
//!   Blazegraph).
//!
//! Together with the `sparqlog-gmark` workload generator these reproduce the
//! chain-vs-cycle experiment of Section 5.1 / Figure 3 of *"An Analytical
//! Study of Large SPARQL Query Logs"*: both engines read the same indexes, so
//! the measured difference isolates the join strategy, which is the effect
//! the paper attributes to the maturity gap between engines on cyclic
//! queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_join;
pub mod dictionary;
pub mod exec;
pub mod pattern;
pub mod store;
pub mod trie_join;

pub use binary_join::BinaryJoinEngine;
pub use dictionary::Dictionary;
pub use exec::{ExecOutcome, QueryEngine, QueryMode};
pub use pattern::{chain_query, cycle_query, star_query, ConjunctiveQuery, CqAtom, CqTerm};
pub use store::{EncodedPattern, EncodedTriple, TripleStore};
pub use trie_join::TrieJoinEngine;
