//! Execution interface shared by the query engines.

use crate::pattern::ConjunctiveQuery;
use crate::store::TripleStore;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How the query result is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMode {
    /// ASK semantics: stop as soon as one answer is found.
    Ask,
    /// SELECT semantics: enumerate (count) every answer.
    Count,
}

/// The outcome of evaluating one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Number of answers found (for [`QueryMode::Ask`] this is 0 or 1).
    pub answers: u64,
    /// Wall-clock time spent, in nanoseconds.
    pub elapsed_ns: u64,
    /// True if the per-query timeout was reached before completion.
    /// Timed-out executions report the work done so far; the experiment
    /// harness accounts the full timeout duration, exactly as the paper does
    /// ("CyclePG times include t/o of 300s per query").
    pub timed_out: bool,
    /// The largest intermediate result (in rows) materialised during
    /// evaluation — the quantity that separates binary joins from
    /// worst-case-optimal joins on cyclic queries.
    pub max_intermediate: u64,
}

impl ExecOutcome {
    /// The elapsed time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_ns)
    }
}

/// A query engine that can evaluate conjunctive queries over a triple store.
pub trait QueryEngine {
    /// A short human-readable name ("binary-join", "trie-join").
    fn name(&self) -> &'static str;

    /// Evaluates a query, respecting `timeout` (checked periodically).
    fn evaluate(
        &self,
        store: &TripleStore,
        query: &ConjunctiveQuery,
        mode: QueryMode,
        timeout: Duration,
    ) -> ExecOutcome;
}

/// A monotonic time source, injectable so deadline behaviour is testable
/// without sleeping.
pub(crate) trait Clock {
    /// The time elapsed since the clock was created.
    fn elapsed(&self) -> Duration;
}

/// The production clock: a fixed [`std::time::Instant`] origin.
#[derive(Debug)]
pub(crate) struct MonotonicClock {
    start: std::time::Instant,
}

impl MonotonicClock {
    fn start_now() -> Self {
        MonotonicClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A deadline helper that keeps timeout checks cheap by only consulting the
/// clock every `CHECK_INTERVAL` operations.
#[derive(Debug)]
pub(crate) struct Deadline<C: Clock = MonotonicClock> {
    clock: C,
    timeout: Duration,
    counter: u32,
    expired: bool,
}

impl Deadline<MonotonicClock> {
    pub(crate) fn new(timeout: Duration) -> Self {
        Deadline::with_clock(timeout, MonotonicClock::start_now())
    }
}

impl<C: Clock> Deadline<C> {
    const CHECK_INTERVAL: u32 = 1024;

    pub(crate) fn with_clock(timeout: Duration, clock: C) -> Self {
        Deadline {
            clock,
            timeout,
            counter: 0,
            expired: false,
        }
    }

    /// Returns true if the deadline has passed (checking the clock lazily).
    pub(crate) fn expired(&mut self) -> bool {
        if self.expired {
            return true;
        }
        self.counter += 1;
        if self.counter >= Self::CHECK_INTERVAL {
            self.counter = 0;
            if self.clock.elapsed() >= self.timeout {
                self.expired = true;
            }
        }
        self.expired
    }

    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.clock.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A deterministic clock advancing a fixed step per reading.
    struct FakeClock {
        now: Rc<Cell<Duration>>,
        step: Duration,
    }

    impl Clock for FakeClock {
        fn elapsed(&self) -> Duration {
            let t = self.now.get();
            self.now.set(t + self.step);
            t
        }
    }

    fn fake(step_ns: u64) -> (FakeClock, Rc<Cell<Duration>>) {
        let now = Rc::new(Cell::new(Duration::ZERO));
        (
            FakeClock {
                now: Rc::clone(&now),
                step: Duration::from_nanos(step_ns),
            },
            now,
        )
    }

    #[test]
    fn outcome_elapsed_conversion() {
        let o = ExecOutcome {
            answers: 1,
            elapsed_ns: 1_500,
            timed_out: false,
            max_intermediate: 3,
        };
        assert_eq!(o.elapsed(), Duration::from_nanos(1_500));
    }

    #[test]
    fn deadline_expires_deterministically() {
        // Each lazy clock reading advances the fake clock by 1 µs; the
        // deadline must trip on the first reading past the timeout without
        // any real sleeping.
        let (clock, _) = fake(1_000);
        let mut d = Deadline::with_clock(Duration::from_nanos(1), clock);
        let mut checks = 0u32;
        loop {
            checks += 1;
            if d.expired() {
                break;
            }
            assert!(
                checks <= 4 * Deadline::<MonotonicClock>::CHECK_INTERVAL,
                "deadline never expired"
            );
        }
        // The first lazy reading observes 0 (below the timeout); the second
        // observes 1 µs and trips — exactly two check intervals.
        assert_eq!(checks, 2 * Deadline::<MonotonicClock>::CHECK_INTERVAL);
        // Once expired, the deadline stays expired without touching the clock.
        assert!(d.expired());
    }

    #[test]
    fn deadline_far_in_future_does_not_expire() {
        let (clock, now) = fake(1_000);
        let mut d = Deadline::with_clock(Duration::from_secs(3600), clock);
        for _ in 0..5000 {
            assert!(!d.expired());
        }
        // Jump the fake clock past the timeout: the next lazy reading trips.
        now.set(Duration::from_secs(3601));
        let mut expired = false;
        for _ in 0..=Deadline::<MonotonicClock>::CHECK_INTERVAL {
            if d.expired() {
                expired = true;
                break;
            }
        }
        assert!(expired);
    }

    #[test]
    fn wall_clock_deadline_reports_elapsed_time() {
        let d = Deadline::new(Duration::from_secs(3600));
        // Monotonic clocks only move forward; no sleeping required.
        let first = d.elapsed_ns();
        assert!(d.elapsed_ns() >= first);
    }
}
