//! Execution interface shared by the query engines.

use crate::pattern::ConjunctiveQuery;
use crate::store::TripleStore;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How the query result is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMode {
    /// ASK semantics: stop as soon as one answer is found.
    Ask,
    /// SELECT semantics: enumerate (count) every answer.
    Count,
}

/// The outcome of evaluating one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Number of answers found (for [`QueryMode::Ask`] this is 0 or 1).
    pub answers: u64,
    /// Wall-clock time spent, in nanoseconds.
    pub elapsed_ns: u64,
    /// True if the per-query timeout was reached before completion.
    /// Timed-out executions report the work done so far; the experiment
    /// harness accounts the full timeout duration, exactly as the paper does
    /// ("CyclePG times include t/o of 300s per query").
    pub timed_out: bool,
    /// The largest intermediate result (in rows) materialised during
    /// evaluation — the quantity that separates binary joins from
    /// worst-case-optimal joins on cyclic queries.
    pub max_intermediate: u64,
}

impl ExecOutcome {
    /// The elapsed time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_ns)
    }
}

/// A query engine that can evaluate conjunctive queries over a triple store.
pub trait QueryEngine {
    /// A short human-readable name ("binary-join", "trie-join").
    fn name(&self) -> &'static str;

    /// Evaluates a query, respecting `timeout` (checked periodically).
    fn evaluate(
        &self,
        store: &TripleStore,
        query: &ConjunctiveQuery,
        mode: QueryMode,
        timeout: Duration,
    ) -> ExecOutcome;
}

/// A deadline helper that keeps timeout checks cheap by only consulting the
/// clock every `CHECK_INTERVAL` operations.
#[derive(Debug)]
pub(crate) struct Deadline {
    start: std::time::Instant,
    timeout: Duration,
    counter: u32,
    expired: bool,
}

impl Deadline {
    const CHECK_INTERVAL: u32 = 1024;

    pub(crate) fn new(timeout: Duration) -> Self {
        Deadline { start: std::time::Instant::now(), timeout, counter: 0, expired: false }
    }

    /// Returns true if the deadline has passed (checking the clock lazily).
    pub(crate) fn expired(&mut self) -> bool {
        if self.expired {
            return true;
        }
        self.counter += 1;
        if self.counter >= Self::CHECK_INTERVAL {
            self.counter = 0;
            if self.start.elapsed() >= self.timeout {
                self.expired = true;
            }
        }
        self.expired
    }

    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_elapsed_conversion() {
        let o = ExecOutcome { answers: 1, elapsed_ns: 1_500, timed_out: false, max_intermediate: 3 };
        assert_eq!(o.elapsed(), Duration::from_nanos(1_500));
    }

    #[test]
    fn deadline_expires() {
        let mut d = Deadline::new(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(1));
        // Force enough checks to hit the lazy clock read.
        let mut expired = false;
        for _ in 0..5000 {
            if d.expired() {
                expired = true;
                break;
            }
        }
        assert!(expired);
    }

    #[test]
    fn deadline_far_in_future_does_not_expire() {
        let mut d = Deadline::new(Duration::from_secs(3600));
        for _ in 0..5000 {
            assert!(!d.expired());
        }
    }
}
