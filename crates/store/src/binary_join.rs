//! A pairwise (binary) join engine in the style of a relational DBMS plan.
//!
//! The engine evaluates the atoms of a conjunctive query left to right,
//! materialising the full intermediate relation after each join — exactly the
//! behaviour that makes cyclic queries expensive for relational engines such
//! as PostgreSQL in Figure 3 of the paper: a cycle query of length *k* first
//! computes the (acyclic) chain of length *k − 1*, whose intermediate result
//! can be orders of magnitude larger than the final answer, and only then
//! applies the closing join.

use crate::exec::{Deadline, ExecOutcome, QueryEngine, QueryMode};
use crate::pattern::{ConjunctiveQuery, CqTerm};
use crate::store::{EncodedPattern, TripleStore};
use std::collections::HashMap;
use std::time::Duration;

/// The binary-join engine (PostgreSQL stand-in).
#[derive(Debug, Clone, Default)]
pub struct BinaryJoinEngine {
    /// Optional cap on the number of intermediate rows; `None` means
    /// unbounded. A cap mimics `work_mem`-style pressure and is used by
    /// fault-injection tests.
    pub max_intermediate_rows: Option<usize>,
}

impl BinaryJoinEngine {
    /// Creates an engine with unbounded intermediate results.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A binding of variable indices to encoded term values.
type Row = Vec<u32>;

impl QueryEngine for BinaryJoinEngine {
    fn name(&self) -> &'static str {
        "binary-join"
    }

    fn evaluate(
        &self,
        store: &TripleStore,
        query: &ConjunctiveQuery,
        mode: QueryMode,
        timeout: Duration,
    ) -> ExecOutcome {
        let mut deadline = Deadline::new(timeout);
        let variables = query.variables();
        let var_index: HashMap<&str, usize> = variables
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();
        const UNBOUND: u32 = u32::MAX;

        // The current intermediate relation; starts with the empty row.
        let mut relation: Vec<Row> = vec![vec![UNBOUND; variables.len()]];
        let mut max_intermediate = 1u64;

        for atom in &query.atoms {
            let mut next: Vec<Row> = Vec::new();
            for row in &relation {
                if deadline.expired() {
                    return ExecOutcome {
                        answers: 0,
                        elapsed_ns: deadline.elapsed_ns(),
                        timed_out: true,
                        max_intermediate,
                    };
                }
                // Build the lookup pattern from the row's bindings.
                let mut pattern: EncodedPattern = [None, None, None];
                let mut positions: [Option<usize>; 3] = [None, None, None];
                let mut impossible = false;
                for (i, term) in atom.terms().into_iter().enumerate() {
                    match term {
                        CqTerm::Const(c) => match store.encode_existing(c) {
                            Some(id) => pattern[i] = Some(id),
                            None => {
                                impossible = true;
                                break;
                            }
                        },
                        CqTerm::Var(v) => {
                            let idx = var_index[v.as_str()];
                            positions[i] = Some(idx);
                            if row[idx] != UNBOUND {
                                pattern[i] = Some(row[idx]);
                            }
                        }
                    }
                }
                if impossible {
                    continue;
                }
                for triple in store.matching(pattern) {
                    if deadline.expired() {
                        return ExecOutcome {
                            answers: 0,
                            elapsed_ns: deadline.elapsed_ns(),
                            timed_out: true,
                            max_intermediate,
                        };
                    }
                    // Extend the row; check consistency for repeated variables
                    // within the atom.
                    let mut extended = row.clone();
                    let mut consistent = true;
                    for (i, pos) in positions.iter().enumerate() {
                        if let Some(idx) = pos {
                            let value = triple[i];
                            if extended[*idx] == UNBOUND {
                                extended[*idx] = value;
                            } else if extended[*idx] != value {
                                consistent = false;
                                break;
                            }
                        }
                    }
                    if consistent {
                        next.push(extended);
                        if let Some(cap) = self.max_intermediate_rows {
                            if next.len() > cap {
                                return ExecOutcome {
                                    answers: 0,
                                    elapsed_ns: deadline.elapsed_ns(),
                                    timed_out: true,
                                    max_intermediate: max_intermediate.max(next.len() as u64),
                                };
                            }
                        }
                    }
                }
            }
            relation = next;
            max_intermediate = max_intermediate.max(relation.len() as u64);
            if relation.is_empty() {
                break;
            }
        }

        let answers = match mode {
            QueryMode::Ask => u64::from(!relation.is_empty()),
            QueryMode::Count => relation.len() as u64,
        };
        ExecOutcome {
            answers,
            elapsed_ns: deadline.elapsed_ns(),
            timed_out: false,
            max_intermediate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{chain_query, cycle_query, CqAtom};

    fn triangle_store() -> TripleStore {
        // A directed triangle plus a long tail of edges that match the chain
        // prefix but never close the cycle.
        let mut s = TripleStore::new();
        s.insert("n1", "p", "n2");
        s.insert("n2", "p", "n3");
        s.insert("n3", "p", "n1");
        for i in 10..60 {
            s.insert(&format!("m{i}"), "p", &format!("m{}", i + 1));
        }
        s.build();
        s
    }

    fn preds(n: usize) -> Vec<String> {
        (0..n).map(|_| "p".to_string()).collect()
    }

    #[test]
    fn chain_query_counts_paths() {
        let store = triangle_store();
        let engine = BinaryJoinEngine::new();
        let q = chain_query(&preds(2));
        let out = engine.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(10));
        // Paths of length 2: in the triangle there are 3; in the tail 49.
        assert_eq!(out.answers, 3 + 49);
        assert!(!out.timed_out);
    }

    #[test]
    fn cycle_query_finds_only_the_triangle() {
        let store = triangle_store();
        let engine = BinaryJoinEngine::new();
        let q = cycle_query(&preds(3));
        let out = engine.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(10));
        // The triangle can be traversed starting at each of its three nodes.
        assert_eq!(out.answers, 3);
    }

    #[test]
    fn ask_mode_reports_boolean() {
        let store = triangle_store();
        let engine = BinaryJoinEngine::new();
        let q = cycle_query(&preds(3));
        let out = engine.evaluate(&store, &q, QueryMode::Ask, Duration::from_secs(10));
        assert_eq!(out.answers, 1);
        let q4 = cycle_query(&preds(4));
        let out4 = engine.evaluate(&store, &q4, QueryMode::Ask, Duration::from_secs(10));
        assert_eq!(out4.answers, 0);
    }

    #[test]
    fn constants_restrict_matches() {
        let store = triangle_store();
        let engine = BinaryJoinEngine::new();
        let q = ConjunctiveQuery::new(vec![CqAtom::new(
            CqTerm::constant("n1"),
            CqTerm::constant("p"),
            CqTerm::var("x"),
        )]);
        let out = engine.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(10));
        assert_eq!(out.answers, 1);
    }

    #[test]
    fn unknown_constant_matches_nothing() {
        let store = triangle_store();
        let engine = BinaryJoinEngine::new();
        let q = ConjunctiveQuery::new(vec![CqAtom::new(
            CqTerm::constant("missing"),
            CqTerm::constant("p"),
            CqTerm::var("x"),
        )]);
        let out = engine.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(10));
        assert_eq!(out.answers, 0);
    }

    #[test]
    fn repeated_variable_within_atom_requires_equality() {
        let mut store = TripleStore::new();
        store.insert("a", "p", "a");
        store.insert("a", "p", "b");
        store.build();
        let engine = BinaryJoinEngine::new();
        let q = ConjunctiveQuery::new(vec![CqAtom::new(
            CqTerm::var("x"),
            CqTerm::constant("p"),
            CqTerm::var("x"),
        )]);
        let out = engine.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(10));
        assert_eq!(out.answers, 1);
    }

    #[test]
    fn intermediate_results_grow_on_cycles() {
        let store = triangle_store();
        let engine = BinaryJoinEngine::new();
        let chain = chain_query(&preds(3));
        let cycle = cycle_query(&preds(3));
        let chain_out = engine.evaluate(&store, &chain, QueryMode::Count, Duration::from_secs(10));
        let cycle_out = engine.evaluate(&store, &cycle, QueryMode::Count, Duration::from_secs(10));
        // The cycle's final answer is small but its intermediate relation is
        // as large as the chain's.
        assert!(cycle_out.answers < chain_out.answers);
        assert!(cycle_out.max_intermediate >= cycle_out.answers);
    }

    #[test]
    fn intermediate_cap_triggers_timeout_flag() {
        let store = triangle_store();
        let engine = BinaryJoinEngine {
            max_intermediate_rows: Some(2),
        };
        let q = chain_query(&preds(3));
        let out = engine.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(10));
        assert!(out.timed_out);
    }

    #[test]
    fn zero_timeout_times_out() {
        let store = triangle_store();
        let engine = BinaryJoinEngine::new();
        let q = chain_query(&preds(6));
        let out = engine.evaluate(&store, &q, QueryMode::Count, Duration::from_nanos(1));
        // With an (effectively) zero timeout, evaluation must either finish
        // immediately or report a timeout; on any realistic machine the long
        // chain reports a timeout.
        assert!(out.timed_out || out.answers > 0);
    }
}
