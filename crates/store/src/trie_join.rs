//! A worst-case-optimal, variable-at-a-time join engine (leapfrog-trie-join
//! style), standing in for the graph-oriented engines of Figure 3
//! (Blazegraph; also the trie-join systems of Kalinsky et al. and
//! EmptyHeaded cited by the paper).
//!
//! Instead of materialising pairwise join results, the engine fixes a global
//! variable order and extends one variable at a time, intersecting the
//! candidate values contributed by *all* atoms that mention the variable.
//! On cyclic queries this avoids the blow-up of intermediate results that the
//! binary-join engine suffers, which is exactly the effect the paper's
//! chain-vs-cycle experiment demonstrates.

use crate::exec::{Deadline, ExecOutcome, QueryEngine, QueryMode};
use crate::pattern::{ConjunctiveQuery, CqTerm};
use crate::store::{EncodedPattern, TripleStore};
use std::collections::HashMap;
use std::time::Duration;

/// The worst-case-optimal trie-join engine (Blazegraph stand-in).
#[derive(Debug, Clone, Default)]
pub struct TrieJoinEngine;

impl TrieJoinEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self
    }
}

const UNBOUND: u32 = u32::MAX;

struct Search<'a> {
    store: &'a TripleStore,
    atoms: Vec<AtomPlan>,
    order: Vec<usize>,
    deadline: Deadline,
    mode: QueryMode,
    answers: u64,
    max_frontier: u64,
    timed_out: bool,
}

/// A pre-resolved atom: constants already encoded, variables mapped to their
/// index in the global variable table.
#[derive(Debug, Clone)]
struct AtomPlan {
    /// For each position: `Ok(var_index)` or `Err(Some(encoded constant))`;
    /// `Err(None)` marks a constant that does not occur in the store (the
    /// atom can never match).
    positions: [Result<usize, Option<u32>>; 3],
}

impl AtomPlan {
    fn impossible(&self) -> bool {
        self.positions.iter().any(|p| matches!(p, Err(None)))
    }

    fn mentions(&self, var: usize) -> bool {
        self.positions
            .iter()
            .any(|p| matches!(p, Ok(v) if *v == var))
    }

    /// Builds the lookup pattern under the current partial assignment.
    fn pattern(&self, assignment: &[u32]) -> EncodedPattern {
        let mut pat: EncodedPattern = [None, None, None];
        for (i, pos) in self.positions.iter().enumerate() {
            match pos {
                Ok(v) => {
                    if assignment[*v] != UNBOUND {
                        pat[i] = Some(assignment[*v]);
                    }
                }
                Err(Some(c)) => pat[i] = Some(*c),
                Err(None) => {}
            }
        }
        pat
    }

    /// The candidate values this atom allows for `var` under `assignment`.
    /// Returns a sorted, deduplicated vector.
    fn candidates(&self, store: &TripleStore, assignment: &[u32], var: usize) -> Vec<u32> {
        let pat = self.pattern(assignment);
        let mut out = Vec::new();
        for triple in store.matching(pat) {
            // Check consistency of repeated variables and collect the value
            // of `var`.
            let mut value = None;
            let mut ok = true;
            let mut locally_bound: HashMap<usize, u32> = HashMap::new();
            for (i, pos) in self.positions.iter().enumerate() {
                if let Ok(v) = pos {
                    let expected = if assignment[*v] != UNBOUND {
                        Some(assignment[*v])
                    } else {
                        locally_bound.get(v).copied()
                    };
                    match expected {
                        Some(e) if e != triple[i] => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            locally_bound.insert(*v, triple[i]);
                        }
                    }
                    if *v == var {
                        value = Some(triple[i]);
                    }
                }
            }
            if ok {
                if let Some(v) = value {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Search<'_> {
    fn run(&mut self, assignment: &mut Vec<u32>, depth: usize) {
        if self.timed_out || (self.mode == QueryMode::Ask && self.answers > 0) {
            return;
        }
        if self.deadline.expired() {
            self.timed_out = true;
            return;
        }
        if depth == self.order.len() {
            self.answers += 1;
            return;
        }
        let var = self.order[depth];
        // Intersect candidates over all atoms mentioning this variable.
        let mut candidates: Option<Vec<u32>> = None;
        for atom in &self.atoms {
            if !atom.mentions(var) {
                continue;
            }
            let vals = atom.candidates(self.store, assignment, var);
            candidates = Some(match candidates {
                None => vals,
                Some(prev) => intersect_sorted(&prev, &vals),
            });
            if matches!(&candidates, Some(c) if c.is_empty()) {
                break;
            }
        }
        let candidates = candidates.unwrap_or_default();
        self.max_frontier = self.max_frontier.max(candidates.len() as u64);
        for value in candidates {
            assignment[var] = value;
            self.run(assignment, depth + 1);
            if self.timed_out || (self.mode == QueryMode::Ask && self.answers > 0) {
                assignment[var] = UNBOUND;
                return;
            }
        }
        assignment[var] = UNBOUND;
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl QueryEngine for TrieJoinEngine {
    fn name(&self) -> &'static str {
        "trie-join"
    }

    fn evaluate(
        &self,
        store: &TripleStore,
        query: &ConjunctiveQuery,
        mode: QueryMode,
        timeout: Duration,
    ) -> ExecOutcome {
        let variables = query.variables();
        let var_index: HashMap<&str, usize> = variables
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();
        let atoms: Vec<AtomPlan> = query
            .atoms
            .iter()
            .map(|atom| {
                let mut positions: [Result<usize, Option<u32>>; 3] =
                    [Err(None), Err(None), Err(None)];
                for (i, term) in atom.terms().into_iter().enumerate() {
                    positions[i] = match term {
                        CqTerm::Var(v) => Ok(var_index[v.as_str()]),
                        CqTerm::Const(c) => Err(store.encode_existing(c)),
                    };
                }
                AtomPlan { positions }
            })
            .collect();

        let deadline = Deadline::new(timeout);
        if atoms.iter().any(AtomPlan::impossible) {
            return ExecOutcome {
                answers: 0,
                elapsed_ns: deadline.elapsed_ns(),
                timed_out: false,
                max_intermediate: 0,
            };
        }

        // Variable order: most-constrained first (descending number of atoms
        // mentioning the variable, ties broken by first occurrence).
        let mut order: Vec<usize> = (0..variables.len()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(atoms.iter().filter(|a| a.mentions(v)).count()));

        let mut search = Search {
            store,
            atoms,
            order,
            deadline,
            mode,
            answers: 0,
            max_frontier: 0,
            timed_out: false,
        };
        let mut assignment = vec![UNBOUND; variables.len()];
        if variables.is_empty() {
            // Fully ground query: every atom must be present in the store.
            let all_present = search.atoms.iter().all(|a| {
                let pat = a.pattern(&assignment);
                !store.matching(pat).is_empty()
            });
            search.answers = u64::from(all_present);
        } else {
            search.run(&mut assignment, 0);
        }
        ExecOutcome {
            answers: search.answers,
            elapsed_ns: search.deadline.elapsed_ns(),
            timed_out: search.timed_out,
            max_intermediate: search.max_frontier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary_join::BinaryJoinEngine;
    use crate::pattern::{chain_query, cycle_query, star_query, CqAtom};

    fn sample_store() -> TripleStore {
        let mut s = TripleStore::new();
        // Triangle n1 → n2 → n3 → n1 plus a chain tail.
        s.insert("n1", "p", "n2");
        s.insert("n2", "p", "n3");
        s.insert("n3", "p", "n1");
        for i in 0..40 {
            s.insert(&format!("t{i}"), "p", &format!("t{}", i + 1));
        }
        // Star data.
        s.insert("hub", "a", "l1");
        s.insert("hub", "b", "l2");
        s.insert("hub", "c", "l3");
        s.build();
        s
    }

    fn preds(n: usize) -> Vec<String> {
        (0..n).map(|_| "p".to_string()).collect()
    }

    #[test]
    fn agrees_with_binary_join_on_chains_and_cycles() {
        let store = sample_store();
        let wcoj = TrieJoinEngine::new();
        let bj = BinaryJoinEngine::new();
        for len in 2..=5 {
            let chain = chain_query(&preds(len));
            let cycle = cycle_query(&preds(len));
            for q in [chain, cycle] {
                let a = wcoj.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(30));
                let b = bj.evaluate(&store, &q, QueryMode::Count, Duration::from_secs(30));
                assert_eq!(a.answers, b.answers, "engines disagree on {q}");
            }
        }
    }

    #[test]
    fn star_query_with_distinct_predicates() {
        let store = sample_store();
        let q = star_query(&["a".to_string(), "b".to_string(), "c".to_string()]);
        let out =
            TrieJoinEngine::new().evaluate(&store, &q, QueryMode::Count, Duration::from_secs(5));
        assert_eq!(out.answers, 1);
    }

    #[test]
    fn ask_mode_short_circuits() {
        let store = sample_store();
        let q = cycle_query(&preds(3));
        let out =
            TrieJoinEngine::new().evaluate(&store, &q, QueryMode::Ask, Duration::from_secs(5));
        assert_eq!(out.answers, 1);
    }

    #[test]
    fn unsatisfiable_cycle_returns_zero() {
        let store = sample_store();
        let q = cycle_query(&preds(5));
        let out =
            TrieJoinEngine::new().evaluate(&store, &q, QueryMode::Count, Duration::from_secs(5));
        assert_eq!(out.answers, 0);
    }

    #[test]
    fn ground_query_checks_membership() {
        let store = sample_store();
        let q = ConjunctiveQuery::new(vec![CqAtom::new(
            CqTerm::constant("n1"),
            CqTerm::constant("p"),
            CqTerm::constant("n2"),
        )]);
        let out =
            TrieJoinEngine::new().evaluate(&store, &q, QueryMode::Ask, Duration::from_secs(5));
        assert_eq!(out.answers, 1);
        let q2 = ConjunctiveQuery::new(vec![CqAtom::new(
            CqTerm::constant("n2"),
            CqTerm::constant("p"),
            CqTerm::constant("n1"),
        )]);
        let out2 =
            TrieJoinEngine::new().evaluate(&store, &q2, QueryMode::Ask, Duration::from_secs(5));
        assert_eq!(out2.answers, 0);
    }

    #[test]
    fn unknown_constant_short_circuits() {
        let store = sample_store();
        let q = ConjunctiveQuery::new(vec![CqAtom::new(
            CqTerm::var("x"),
            CqTerm::constant("unknown-predicate"),
            CqTerm::var("y"),
        )]);
        let out =
            TrieJoinEngine::new().evaluate(&store, &q, QueryMode::Count, Duration::from_secs(5));
        assert_eq!(out.answers, 0);
        assert!(!out.timed_out);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut store = TripleStore::new();
        store.insert("a", "p", "a");
        store.insert("a", "p", "b");
        store.build();
        let q = ConjunctiveQuery::new(vec![CqAtom::new(
            CqTerm::var("x"),
            CqTerm::constant("p"),
            CqTerm::var("x"),
        )]);
        let out =
            TrieJoinEngine::new().evaluate(&store, &q, QueryMode::Count, Duration::from_secs(5));
        assert_eq!(out.answers, 1);
    }

    #[test]
    fn frontier_stays_small_on_cycles() {
        let store = sample_store();
        let cycle = cycle_query(&preds(3));
        let wcoj = TrieJoinEngine::new().evaluate(
            &store,
            &cycle,
            QueryMode::Count,
            Duration::from_secs(5),
        );
        let bj = BinaryJoinEngine::new().evaluate(
            &store,
            &cycle,
            QueryMode::Count,
            Duration::from_secs(5),
        );
        // The WCOJ frontier (per-variable candidate list) stays within the
        // data size, whereas the binary join materialises the full length-2
        // chain result before closing the cycle.
        assert!(wcoj.max_intermediate <= store.len() as u64);
        assert!(bj.max_intermediate >= wcoj.max_intermediate);
    }
}
