//! Dictionary encoding of RDF terms.
//!
//! Terms (IRIs, literals, blank nodes) are interned into dense `u32`
//! identifiers, the standard technique used by RDF engines to keep triple
//! representations compact and comparisons cheap.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An interning dictionary mapping term strings to dense identifiers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionary {
    terms: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its identifier (allocating one if new).
    pub fn encode(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Looks up a term without interning it.
    pub fn lookup(&self, term: &str) -> Option<u32> {
        self.index.get(term).copied()
    }

    /// Decodes an identifier back to its term string.
    pub fn decode(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Rebuilds the lookup index (needed after deserialization, since the
    /// reverse index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode("http://example.org/a");
        let b = d.encode("http://example.org/b");
        assert_ne!(a, b);
        assert_eq!(d.encode("http://example.org/a"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let id = d.encode("term");
        assert_eq!(d.decode(id), Some("term"));
        assert_eq!(d.lookup("term"), Some(id));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.decode(999), None);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut d = Dictionary::new();
        d.encode("x");
        d.encode("y");
        let mut copy = Dictionary {
            terms: d.terms.clone(),
            index: HashMap::new(),
        };
        assert_eq!(copy.lookup("x"), None);
        copy.rebuild_index();
        assert_eq!(copy.lookup("x"), Some(0));
        assert_eq!(copy.lookup("y"), Some(1));
    }
}
