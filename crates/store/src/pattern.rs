//! The conjunctive-query intermediate representation shared by the engines
//! and the workload generator.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A term position in a conjunctive-query atom: either a named variable or a
/// constant (an IRI / literal string).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CqTerm {
    /// A variable, without sigil.
    Var(String),
    /// A constant term.
    Const(String),
}

impl CqTerm {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> CqTerm {
        CqTerm::Var(name.into())
    }

    /// Convenience constructor for a constant.
    pub fn constant(value: impl Into<String>) -> CqTerm {
        CqTerm::Const(value.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            CqTerm::Var(v) => Some(v),
            CqTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for CqTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqTerm::Var(v) => write!(f, "?{v}"),
            CqTerm::Const(c) => write!(f, "<{c}>"),
        }
    }
}

/// One atom (triple pattern) of a conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CqAtom {
    /// Subject position.
    pub subject: CqTerm,
    /// Predicate position.
    pub predicate: CqTerm,
    /// Object position.
    pub object: CqTerm,
}

impl CqAtom {
    /// Creates a new atom.
    pub fn new(subject: CqTerm, predicate: CqTerm, object: CqTerm) -> Self {
        CqAtom {
            subject,
            predicate,
            object,
        }
    }

    /// Iterates over the three positions.
    pub fn terms(&self) -> [&CqTerm; 3] {
        [&self.subject, &self.predicate, &self.object]
    }

    /// The distinct variables of the atom.
    pub fn variables(&self) -> BTreeSet<&str> {
        self.terms()
            .into_iter()
            .filter_map(CqTerm::as_var)
            .collect()
    }
}

impl fmt::Display for CqAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A conjunctive query over a triple store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// The atoms, in the order they were written (the binary-join engine
    /// joins them in this order, like a textual query plan).
    pub atoms: Vec<CqAtom>,
}

impl ConjunctiveQuery {
    /// Creates a query from atoms.
    pub fn new(atoms: Vec<CqAtom>) -> Self {
        ConjunctiveQuery { atoms }
    }

    /// The distinct variables of the query, in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for term in atom.terms() {
                if let CqTerm::Var(v) = term {
                    if seen.insert(v.clone()) {
                        out.push(v.clone());
                    }
                }
            }
        }
        out
    }

    /// Renders the query as a SPARQL `ASK` query.
    pub fn to_ask_sparql(&self) -> String {
        let mut s = String::from("ASK WHERE { ");
        for atom in &self.atoms {
            s.push_str(&atom.to_string());
            s.push(' ');
        }
        s.push('}');
        s
    }

    /// Renders the query as a SPARQL `SELECT *` query.
    pub fn to_select_sparql(&self) -> String {
        let mut s = String::from("SELECT * WHERE { ");
        for atom in &self.atoms {
            s.push_str(&atom.to_string());
            s.push(' ');
        }
        s.push('}');
        s
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_select_sparql())
    }
}

/// Builds a chain query of length `k`:
/// `?x0 p1 ?x1 . ?x1 p2 ?x2 . … ?x(k-1) pk ?xk`.
pub fn chain_query(predicates: &[String]) -> ConjunctiveQuery {
    let atoms = predicates
        .iter()
        .enumerate()
        .map(|(i, p)| {
            CqAtom::new(
                CqTerm::var(format!("x{i}")),
                CqTerm::constant(p.clone()),
                CqTerm::var(format!("x{}", i + 1)),
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms)
}

/// Builds a cycle query of length `k`: a chain whose last variable is the
/// first one, closing the loop.
pub fn cycle_query(predicates: &[String]) -> ConjunctiveQuery {
    let k = predicates.len();
    let atoms = predicates
        .iter()
        .enumerate()
        .map(|(i, p)| {
            CqAtom::new(
                CqTerm::var(format!("x{i}")),
                CqTerm::constant(p.clone()),
                CqTerm::var(format!("x{}", (i + 1) % k)),
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms)
}

/// Builds a star query: `?c p1 ?l1 . ?c p2 ?l2 . …`.
pub fn star_query(predicates: &[String]) -> ConjunctiveQuery {
    let atoms = predicates
        .iter()
        .enumerate()
        .map(|(i, p)| {
            CqAtom::new(
                CqTerm::var("c"),
                CqTerm::constant(p.clone()),
                CqTerm::var(format!("l{i}")),
            )
        })
        .collect();
    ConjunctiveQuery::new(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preds(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("http://g/p{i}")).collect()
    }

    #[test]
    fn chain_query_structure() {
        let q = chain_query(&preds(3));
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.variables().len(), 4);
        assert_eq!(q.atoms[0].subject, CqTerm::var("x0"));
        assert_eq!(q.atoms[2].object, CqTerm::var("x3"));
    }

    #[test]
    fn cycle_query_closes_the_loop() {
        let q = cycle_query(&preds(4));
        assert_eq!(q.atoms.len(), 4);
        assert_eq!(q.variables().len(), 4);
        assert_eq!(q.atoms[3].object, CqTerm::var("x0"));
    }

    #[test]
    fn star_query_shares_the_centre() {
        let q = star_query(&preds(3));
        assert!(q.atoms.iter().all(|a| a.subject == CqTerm::var("c")));
        assert_eq!(q.variables().len(), 4);
    }

    #[test]
    fn sparql_rendering_is_parseable_shape() {
        let q = chain_query(&preds(2));
        let ask = q.to_ask_sparql();
        assert!(ask.starts_with("ASK WHERE {"));
        assert!(ask.contains("?x0"));
        let select = q.to_select_sparql();
        assert!(select.starts_with("SELECT *"));
    }

    #[test]
    fn atom_variables() {
        let atom = CqAtom::new(CqTerm::var("a"), CqTerm::constant("p"), CqTerm::var("b"));
        let vars = atom.variables();
        assert!(vars.contains("a") && vars.contains("b"));
        assert_eq!(vars.len(), 2);
    }
}
