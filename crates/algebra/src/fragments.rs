//! Query-fragment classification (Sections 4.3, 5 and 5.2 of the paper).
//!
//! The fragments form a hierarchy over the *AOF patterns* (bodies built from
//! triple patterns with `And`, `Opt` and `Filter` only):
//!
//! * **CQ** — conjunctive queries: only triple patterns and `And`
//!   (Definition 3.1).
//! * **CPF** — conjunctive patterns with filters: `And` + `Filter`
//!   (Definition 4.1).
//! * **CQF** — CPF patterns whose filters are all *simple*: at most one
//!   variable, or of the form `?x = ?y` (Definition 5.2).
//! * **well-designed** — AOF patterns whose pattern tree is well-designed.
//! * **CQOF** — well-designed pattern trees with interface width ≤ 1
//!   (Definition 5.5).

use crate::pattern_tree::PatternTree;
use crate::walk::BodyOps;
use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::*;

/// The fragment membership of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentReport {
    /// The query is a SELECT or ASK query (the population the fragment
    /// analysis is carried out on).
    pub select_or_ask: bool,
    /// The body is an AOF pattern (And/Opt/Filter only).
    pub aof: bool,
    /// Conjunctive query: triples + And only.
    pub cq: bool,
    /// Conjunctive pattern with filters: triples + And + Filter.
    pub cpf: bool,
    /// CPF with only simple filters.
    pub cqf: bool,
    /// AOF pattern with a well-designed pattern tree.
    pub well_designed: bool,
    /// Well-designed with interface width ≤ 1.
    pub cqof: bool,
    /// Well-designed with simple filters but interface width > 1 (the rare
    /// class the paper found only 310 of).
    pub wide_interface: bool,
    /// The body contains a triple pattern with a variable predicate
    /// (such queries are analysed via hypergraphs rather than graphs,
    /// Section 6.2).
    pub has_var_predicate: bool,
    /// Number of triple patterns in the body.
    pub triples: u32,
}

/// Tests whether a filter constraint is *simple*: it mentions at most one
/// variable, or it is exactly an equality between two variables.
pub fn is_simple_filter(e: &Expression) -> bool {
    if let Expression::Equal(a, b) = e {
        if matches!(
            (a.as_ref(), b.as_ref()),
            (Expression::Var(_), Expression::Var(_))
        ) {
            return true;
        }
    }
    e.variables().len() <= 1
}

/// Extracts the pairs of variables equated by top-level `?x = ?y` filters.
/// The shape analysis collapses such pairs into a single node (footnote 20 of
/// the paper).
pub fn variable_equalities(filters: &[&Expression]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for f in filters {
        if let Expression::Equal(a, b) = f {
            if let (Expression::Var(x), Expression::Var(y)) = (a.as_ref(), b.as_ref()) {
                out.push((x.clone(), y.clone()));
            }
        }
    }
    out
}

/// Classifies a query into the fragment hierarchy.
pub fn classify_fragments(q: &Query) -> FragmentReport {
    let mut report = FragmentReport {
        select_or_ask: matches!(q.form, QueryForm::Select | QueryForm::Ask),
        ..FragmentReport::default()
    };
    let ops = BodyOps::of_query(q);
    report.triples = ops.triples;
    report.has_var_predicate = ops.var_predicates > 0;
    if !ops.is_aof() || !q.has_body() {
        return report;
    }
    report.aof = true;
    report.cq = ops.filters == 0 && ops.optionals == 0;
    report.cpf = ops.optionals == 0;

    // The pattern tree exists for every AOF pattern.
    let Some(tree) = PatternTree::build(q) else {
        // Defensive: BodyOps and PatternTree must agree on AOF membership.
        report.aof = false;
        return report;
    };
    let filters_simple = tree.all_filters().iter().all(|f| is_simple_filter(f));
    report.cqf = report.cpf && filters_simple;
    report.well_designed = tree.is_well_designed();
    let width = tree.interface_width();
    report.cqof = report.well_designed && filters_simple && width <= 1;
    report.wide_interface = report.well_designed && filters_simple && width > 1;
    report
}

/// Classifies a query into the fragment hierarchy from a completed
/// [`QueryWalk`](crate::walk::QueryWalk): the operator counters and the
/// pattern tree both come from the walk, so no part of the query is
/// traversed again (the well-designedness and interface-width checks run on
/// the already-built tree).
pub fn classify_fragments_from_walk(
    q: &Query,
    walk: &crate::walk::QueryWalk<'_>,
) -> FragmentReport {
    let ops = &walk.ops;
    let mut report = FragmentReport {
        select_or_ask: matches!(q.form, QueryForm::Select | QueryForm::Ask),
        ..FragmentReport::default()
    };
    report.triples = ops.triples;
    report.has_var_predicate = ops.var_predicates > 0;
    if !ops.is_aof() || !q.has_body() {
        return report;
    }
    report.aof = true;
    report.cq = ops.filters == 0 && ops.optionals == 0;
    report.cpf = ops.optionals == 0;

    let Some(tree) = &walk.tree else {
        // Defensive: the walk's tree and AOF membership must agree.
        report.aof = false;
        return report;
    };
    let filters_simple = tree.all_filters().iter().all(|f| is_simple_filter(f));
    report.cqf = report.cpf && filters_simple;
    let (well_designed, width) = tree.well_designedness();
    report.well_designed = well_designed;
    report.cqof = report.well_designed && filters_simple && width <= 1;
    report.wide_interface = report.well_designed && filters_simple && width > 1;
    report
}

/// [`classify_fragments_from_walk`] over the borrowed AST and a completed
/// [`QueryWalkRef`](crate::walk::QueryWalkRef). The walk's tree is owned, so
/// the well-designedness and filter checks are shared with the owned path.
pub fn classify_fragments_from_walk_ref(
    q: &sparqlog_parser::ast_ref::Query<'_>,
    walk: &crate::walk::QueryWalkRef<'_>,
) -> FragmentReport {
    let ops = &walk.ops;
    let mut report = FragmentReport {
        select_or_ask: matches!(q.form, QueryForm::Select | QueryForm::Ask),
        ..FragmentReport::default()
    };
    report.triples = ops.triples;
    report.has_var_predicate = ops.var_predicates > 0;
    if !ops.is_aof() || !q.has_body() {
        return report;
    }
    report.aof = true;
    report.cq = ops.filters == 0 && ops.optionals == 0;
    report.cpf = ops.optionals == 0;

    let Some(tree) = &walk.tree else {
        // Defensive: the walk's tree and AOF membership must agree.
        report.aof = false;
        return report;
    };
    let filters_simple = tree.all_filters().iter().all(|f| is_simple_filter(f));
    report.cqf = report.cpf && filters_simple;
    let (well_designed, width) = tree.well_designedness();
    report.well_designed = well_designed;
    report.cqof = report.well_designed && filters_simple && width <= 1;
    report.wide_interface = report.well_designed && filters_simple && width > 1;
    report
}

/// The CQ-like fragment a query is assigned to for the shape analysis of
/// Section 6 (CQ ⊂ CQF ⊂ CQOF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CqLikeClass {
    /// Plain conjunctive query.
    Cq,
    /// Conjunctive query with simple filters (and not a plain CQ).
    Cqf,
    /// Well-designed Opt-extension with interface width 1 (and not in CQF).
    Cqof,
    /// Not in any of the CQ-like fragments.
    None,
}

impl FragmentReport {
    /// The most specific CQ-like fragment of the query (CQ ⊆ CQF ⊆ CQOF): a
    /// CQ reports `Cq`, a CQF-but-not-CQ query reports `Cqf`, etc.
    pub fn cq_like_class(&self) -> CqLikeClass {
        if self.cq {
            CqLikeClass::Cq
        } else if self.cqf {
            CqLikeClass::Cqf
        } else if self.cqof {
            CqLikeClass::Cqof
        } else {
            CqLikeClass::None
        }
    }

    /// Whether the query belongs to the (cumulative) CQ fragment.
    pub fn in_cq(&self) -> bool {
        self.cq
    }

    /// Whether the query belongs to the (cumulative) CQF fragment
    /// (every CQ is also a CQF).
    pub fn in_cqf(&self) -> bool {
        self.cq || self.cqf
    }

    /// Whether the query belongs to the (cumulative) CQOF fragment
    /// (CQ and CQF queries are also CQOF).
    pub fn in_cqof(&self) -> bool {
        self.cq || self.cqf || self.cqof
    }
}

/// Aggregated fragment statistics over SELECT/ASK queries (Section 5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentTally {
    /// Total SELECT/ASK queries seen.
    pub select_ask: u64,
    /// AOF patterns.
    pub aof: u64,
    /// Conjunctive queries.
    pub cq: u64,
    /// CQF queries (cumulative, includes CQ).
    pub cqf: u64,
    /// Well-designed AOF patterns.
    pub well_designed: u64,
    /// CQOF queries (cumulative).
    pub cqof: u64,
    /// AOF patterns containing a variable predicate.
    pub aof_var_predicate: u64,
    /// Well-designed patterns with simple filters and interface width > 1.
    pub wide_interface: u64,
}

impl FragmentTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified query.
    pub fn add(&mut self, r: &FragmentReport) {
        if !r.select_or_ask {
            return;
        }
        self.select_ask += 1;
        if r.aof {
            self.aof += 1;
            if r.has_var_predicate {
                self.aof_var_predicate += 1;
            }
        }
        if r.in_cq() {
            self.cq += 1;
        }
        if r.in_cqf() {
            self.cqf += 1;
        }
        if r.well_designed {
            self.well_designed += 1;
        }
        if r.in_cqof() {
            self.cqof += 1;
        }
        if r.wide_interface {
            self.wide_interface += 1;
        }
    }

    /// Merges another tally.
    pub fn merge(&mut self, other: &FragmentTally) {
        self.select_ask += other.select_ask;
        self.aof += other.aof;
        self.cq += other.cq;
        self.cqf += other.cqf;
        self.well_designed += other.well_designed;
        self.cqof += other.cqof;
        self.aof_var_predicate += other.aof_var_predicate;
        self.wide_interface += other.wide_interface;
    }

    /// Multiplies every counter by `times`: a tally built from one
    /// [`FragmentTally::add`] and then scaled equals `times` repeated adds of
    /// the same report. Used by the fused engine's occurrence-weighted fold.
    pub fn scale(&mut self, times: u64) {
        self.select_ask *= times;
        self.aof *= times;
        self.cq *= times;
        self.cqf *= times;
        self.well_designed *= times;
        self.cqof *= times;
        self.aof_var_predicate *= times;
        self.wide_interface *= times;
    }

    /// Share of AOF patterns among SELECT/ASK queries.
    pub fn aof_share(&self) -> f64 {
        self.aof as f64 / self.select_ask.max(1) as f64
    }

    /// Share of CQs among AOF patterns (the paper reports 54.58 %).
    pub fn cq_share_of_aof(&self) -> f64 {
        self.cq as f64 / self.aof.max(1) as f64
    }

    /// Share of CQF among AOF patterns (84.08 % in the paper).
    pub fn cqf_share_of_aof(&self) -> f64 {
        self.cqf as f64 / self.aof.max(1) as f64
    }

    /// Share of well-designed patterns among AOF patterns (98.53 %).
    pub fn well_designed_share_of_aof(&self) -> f64 {
        self.well_designed as f64 / self.aof.max(1) as f64
    }

    /// Share of CQOF among AOF patterns (93.87 %).
    pub fn cqof_share_of_aof(&self) -> f64 {
        self.cqof as f64 / self.aof.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn report(q: &str) -> FragmentReport {
        classify_fragments(&parse_query(q).unwrap())
    }

    #[test]
    fn plain_cq() {
        let r = report("SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z }");
        assert!(r.select_or_ask && r.aof && r.cq && r.cpf && r.cqf && r.well_designed && r.cqof);
        assert_eq!(r.cq_like_class(), CqLikeClass::Cq);
        assert_eq!(r.triples, 2);
    }

    #[test]
    fn cpf_with_simple_filter_is_cqf() {
        let r = report("SELECT ?x WHERE { ?x <p> ?y FILTER(?y > 10) }");
        assert!(!r.cq && r.cpf && r.cqf && r.cqof);
        assert_eq!(r.cq_like_class(), CqLikeClass::Cqf);
    }

    #[test]
    fn variable_equality_filter_is_simple() {
        let r = report("SELECT ?x WHERE { ?x <p> ?y . ?x <q> ?z FILTER(?y = ?z) }");
        assert!(r.cqf);
        let q = parse_query("SELECT ?x WHERE { ?x <p> ?y . ?x <q> ?z FILTER(?y = ?z) }").unwrap();
        let tree = PatternTree::build(&q).unwrap();
        let filters = tree.all_filters();
        assert_eq!(
            variable_equalities(&filters),
            vec![("y".to_string(), "z".to_string())]
        );
    }

    #[test]
    fn two_variable_comparison_is_not_simple() {
        let r = report("SELECT ?x WHERE { ?x <p> ?y . ?x <q> ?z FILTER(?y < ?z) }");
        assert!(r.cpf && !r.cqf);
        // Still well-designed and width ≤ 1? Single node tree → cqof requires
        // simple filters, so it is excluded from CQOF as well.
        assert!(!r.cqof);
        assert_eq!(r.cq_like_class(), CqLikeClass::None);
    }

    #[test]
    fn optional_pattern_is_cqof_but_not_cpf() {
        let r = report("SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } }");
        assert!(r.aof && !r.cq && !r.cpf && !r.cqf);
        assert!(r.well_designed && r.cqof);
        assert_eq!(r.cq_like_class(), CqLikeClass::Cqof);
    }

    #[test]
    fn wide_interface_optional_is_flagged() {
        // The OPTIONAL shares two variables with the outer pattern: interface
        // width 2, well-designed, but outside CQOF.
        let r = report("SELECT * WHERE { ?A <knows> ?N OPTIONAL { ?A <worksWith> ?N } }");
        assert!(r.aof && r.well_designed);
        assert!(!r.cqof && r.wide_interface);
        let mut t = FragmentTally::new();
        t.add(&r);
        assert_eq!(t.wide_interface, 1);
    }

    #[test]
    fn union_query_is_not_aof() {
        let r = report("SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }");
        assert!(!r.aof);
        assert_eq!(r.cq_like_class(), CqLikeClass::None);
    }

    #[test]
    fn describe_is_not_select_or_ask() {
        let r = report("DESCRIBE <http://r>");
        assert!(!r.select_or_ask);
    }

    #[test]
    fn var_predicate_flag() {
        let r = report("ASK { ?x ?p ?y . ?y <q> ?z }");
        assert!(r.has_var_predicate && r.cq);
    }

    #[test]
    fn tally_accumulates_cumulative_fragments() {
        let mut t = FragmentTally::new();
        for q in [
            "SELECT ?x WHERE { ?x <p> ?y }",                              // CQ
            "SELECT ?x WHERE { ?x <p> ?y FILTER(?y > 1) }",               // CQF
            "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } }", // CQOF
            "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }",      // not AOF
            "DESCRIBE <http://r>",                                        // not S/A
        ] {
            t.add(&report(q));
        }
        assert_eq!(t.select_ask, 4);
        assert_eq!(t.aof, 3);
        assert_eq!(t.cq, 1);
        assert_eq!(t.cqf, 2);
        assert_eq!(t.cqof, 3);
        assert!(t.cq_share_of_aof() < t.cqf_share_of_aof());
        assert!(t.cqf_share_of_aof() < t.cqof_share_of_aof());
    }
}
