//! Per-query feature extraction: the record on which all shallow analyses
//! (Tables 2, 3, 7, 8 and Figure 1/8 of the paper) are computed.

use crate::walk::BodyOps;
use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::*;

/// The features of a single query relevant to the paper's shallow analysis.
///
/// A `QueryFeatures` value is cheap to aggregate, serialize and ship across
/// threads, which is how the corpus pipeline parallelizes log analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryFeatures {
    /// The query form.
    pub form: QueryForm,
    /// Whether the query has a non-empty WHERE clause.
    pub has_body: bool,
    /// Number of plain triple patterns in the body.
    pub triple_patterns: u32,
    /// Number of non-trivial property-path patterns in the body.
    pub path_patterns: u32,
    /// Number of triple patterns with a variable in predicate position.
    pub var_predicates: u32,
    /// Whether `DISTINCT` is used on the projection.
    pub uses_distinct: bool,
    /// Whether `REDUCED` is used on the projection.
    pub uses_reduced: bool,
    /// Whether `LIMIT` is present.
    pub uses_limit: bool,
    /// Whether `OFFSET` is present.
    pub uses_offset: bool,
    /// Whether `ORDER BY` is present.
    pub uses_order_by: bool,
    /// Whether `GROUP BY` is present.
    pub uses_group_by: bool,
    /// Whether `HAVING` is present.
    pub uses_having: bool,
    /// Whether the body uses `FILTER`.
    pub uses_filter: bool,
    /// Whether the body uses conjunction (`And`, i.e. `.` joins).
    pub uses_and: bool,
    /// Whether the body uses `UNION`.
    pub uses_union: bool,
    /// Whether the body uses `OPTIONAL`.
    pub uses_optional: bool,
    /// Whether the body uses `GRAPH`.
    pub uses_graph: bool,
    /// Whether the body uses `MINUS`.
    pub uses_minus: bool,
    /// Whether the body uses `NOT EXISTS`.
    pub uses_not_exists: bool,
    /// Whether the body uses `EXISTS` (positive form).
    pub uses_exists: bool,
    /// Whether the body uses `BIND`.
    pub uses_bind: bool,
    /// Whether the body (or the query tail) uses `VALUES`.
    pub uses_values: bool,
    /// Whether the body uses `SERVICE`.
    pub uses_service: bool,
    /// Whether the query uses subqueries.
    pub uses_subquery: bool,
    /// Whether the query uses property paths.
    pub uses_property_path: bool,
    /// Aggregates used anywhere in the query (projection, HAVING, ORDER BY,
    /// GROUP BY, or inside the body).
    pub aggregates: AggregateUse,
    /// Whether any aggregate at all is used.
    pub uses_aggregate: bool,
    /// The underlying structural counters.
    pub ops: BodyOpsSummary,
}

/// Which aggregate functions a query uses (Table 2, fourth block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateUse {
    /// `COUNT` is used.
    pub count: bool,
    /// `SUM` is used.
    pub sum: bool,
    /// `MIN` is used.
    pub min: bool,
    /// `MAX` is used.
    pub max: bool,
    /// `AVG` is used.
    pub avg: bool,
    /// `SAMPLE` is used.
    pub sample: bool,
    /// `GROUP_CONCAT` is used.
    pub group_concat: bool,
}

impl AggregateUse {
    /// True if any aggregate function is used.
    pub fn any(&self) -> bool {
        self.count
            || self.sum
            || self.min
            || self.max
            || self.avg
            || self.sample
            || self.group_concat
    }

    pub(crate) fn record(&mut self, kind: AggregateKind) {
        match kind {
            AggregateKind::Count => self.count = true,
            AggregateKind::Sum => self.sum = true,
            AggregateKind::Min => self.min = true,
            AggregateKind::Max => self.max = true,
            AggregateKind::Avg => self.avg = true,
            AggregateKind::Sample => self.sample = true,
            AggregateKind::GroupConcat => self.group_concat = true,
        }
    }

    fn scan(&mut self, e: &Expression) {
        match e {
            Expression::Aggregate(a) => {
                self.record(a.kind);
                if let Some(inner) = &a.expr {
                    self.scan(inner);
                }
            }
            Expression::Var(_) | Expression::Term(_) => {}
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                self.scan(a);
                self.scan(b);
            }
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                self.scan(a);
                for x in list {
                    self.scan(x);
                }
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                self.scan(a)
            }
            Expression::FunctionCall(_, args) => {
                for a in args {
                    self.scan(a);
                }
            }
            Expression::Exists(_) | Expression::NotExists(_) => {}
        }
    }

    /// [`scan`](Self::scan) over the borrowed AST; same coverage (stops at
    /// `EXISTS`).
    fn scan_ref(&mut self, e: &sparqlog_parser::ast_ref::Expression<'_>) {
        use sparqlog_parser::ast_ref::Expression as E;
        match e {
            E::Aggregate(a) => {
                self.record(a.kind);
                if let Some(inner) = a.expr {
                    self.scan_ref(inner);
                }
            }
            E::Var(_) | E::Term(_) => {}
            E::Or(a, b)
            | E::And(a, b)
            | E::Equal(a, b)
            | E::NotEqual(a, b)
            | E::Less(a, b)
            | E::Greater(a, b)
            | E::LessEq(a, b)
            | E::GreaterEq(a, b)
            | E::Add(a, b)
            | E::Subtract(a, b)
            | E::Multiply(a, b)
            | E::Divide(a, b) => {
                self.scan_ref(a);
                self.scan_ref(b);
            }
            E::In(a, list) | E::NotIn(a, list) => {
                self.scan_ref(a);
                for x in *list {
                    self.scan_ref(x);
                }
            }
            E::Not(a) | E::UnaryMinus(a) | E::UnaryPlus(a) => self.scan_ref(a),
            E::FunctionCall(_, args) => {
                for a in *args {
                    self.scan_ref(a);
                }
            }
            E::Exists(_) | E::NotExists(_) => {}
        }
    }
}

/// A serializable copy of the [`BodyOps`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BodyOpsSummary {
    /// Number of joins (`And` combinations).
    pub joins: u32,
    /// Number of FILTER constraints.
    pub filters: u32,
    /// Number of OPTIONAL blocks.
    pub optionals: u32,
    /// Number of UNION operators.
    pub unions: u32,
    /// Number of GRAPH blocks.
    pub graphs: u32,
    /// Number of MINUS blocks.
    pub minuses: u32,
    /// Number of subqueries.
    pub subqueries: u32,
}

impl From<&BodyOps> for BodyOpsSummary {
    fn from(ops: &BodyOps) -> Self {
        BodyOpsSummary {
            joins: ops.joins,
            filters: ops.filters,
            optionals: ops.optionals,
            unions: ops.unions,
            graphs: ops.graphs,
            minuses: ops.minuses,
            subqueries: ops.subqueries,
        }
    }
}

impl QueryFeatures {
    /// Extracts the features of a query in a single pass.
    pub fn of(q: &Query) -> QueryFeatures {
        let ops = BodyOps::of_query(q);
        let mut aggregates = AggregateUse::default();
        // Scan projection expressions.
        if let Projection::Items(items) = &q.projection {
            for item in items {
                if let Some(e) = &item.expr {
                    aggregates.scan(e);
                }
            }
        }
        // Scan solution modifier expressions.
        for h in &q.modifiers.having {
            aggregates.scan(h);
        }
        for o in &q.modifiers.order_by {
            aggregates.scan(&o.expr);
        }
        for g in &q.modifiers.group_by {
            aggregates.scan(&g.expr);
        }
        // Scan the body (subquery projections, filters).
        if let Some(body) = &q.where_clause {
            scan_group_aggregates(body, &mut aggregates);
        }

        QueryFeatures {
            form: q.form,
            has_body: q.has_body(),
            triple_patterns: ops.triples,
            path_patterns: ops.paths,
            var_predicates: ops.var_predicates,
            uses_distinct: q.modifiers.distinct,
            uses_reduced: q.modifiers.reduced,
            uses_limit: q.modifiers.limit.is_some(),
            uses_offset: q.modifiers.offset.is_some(),
            uses_order_by: !q.modifiers.order_by.is_empty(),
            uses_group_by: !q.modifiers.group_by.is_empty(),
            uses_having: !q.modifiers.having.is_empty(),
            uses_filter: ops.filters > 0,
            uses_and: ops.uses_and(),
            uses_union: ops.unions > 0,
            uses_optional: ops.optionals > 0,
            uses_graph: ops.graphs > 0,
            uses_minus: ops.minuses > 0,
            uses_not_exists: ops.not_exists > 0,
            uses_exists: ops.exists > 0,
            uses_bind: ops.binds > 0,
            uses_values: ops.values_blocks > 0 || q.values.is_some(),
            uses_service: ops.services > 0,
            uses_subquery: ops.subqueries > 0,
            uses_property_path: ops.paths > 0,
            uses_aggregate: aggregates.any(),
            aggregates,
            ops: BodyOpsSummary::from(&ops),
        }
    }

    /// Builds the features from a completed [`QueryWalk`](crate::walk::QueryWalk),
    /// touching only the query-level clauses (projection, HAVING, ORDER BY,
    /// GROUP BY) — the body itself is not traversed again.
    pub fn from_walk(q: &Query, walk: &crate::walk::QueryWalk<'_>) -> QueryFeatures {
        let ops = &walk.ops;
        let mut aggregates = walk.aggregates;
        if let Projection::Items(items) = &q.projection {
            for item in items {
                if let Some(e) = &item.expr {
                    aggregates.scan(e);
                }
            }
        }
        for h in &q.modifiers.having {
            aggregates.scan(h);
        }
        for o in &q.modifiers.order_by {
            aggregates.scan(&o.expr);
        }
        for g in &q.modifiers.group_by {
            aggregates.scan(&g.expr);
        }

        QueryFeatures {
            form: q.form,
            has_body: q.has_body(),
            triple_patterns: ops.triples,
            path_patterns: ops.paths,
            var_predicates: ops.var_predicates,
            uses_distinct: q.modifiers.distinct,
            uses_reduced: q.modifiers.reduced,
            uses_limit: q.modifiers.limit.is_some(),
            uses_offset: q.modifiers.offset.is_some(),
            uses_order_by: !q.modifiers.order_by.is_empty(),
            uses_group_by: !q.modifiers.group_by.is_empty(),
            uses_having: !q.modifiers.having.is_empty(),
            uses_filter: ops.filters > 0,
            uses_and: ops.uses_and(),
            uses_union: ops.unions > 0,
            uses_optional: ops.optionals > 0,
            uses_graph: ops.graphs > 0,
            uses_minus: ops.minuses > 0,
            uses_not_exists: ops.not_exists > 0,
            uses_exists: ops.exists > 0,
            uses_bind: ops.binds > 0,
            uses_values: ops.values_blocks > 0 || q.values.is_some(),
            uses_service: ops.services > 0,
            uses_subquery: ops.subqueries > 0,
            uses_property_path: ops.paths > 0,
            uses_aggregate: aggregates.any(),
            aggregates,
            ops: BodyOpsSummary::from(ops),
        }
    }

    /// [`from_walk`](Self::from_walk) over the borrowed AST: builds the
    /// features from a completed [`QueryWalkRef`](crate::walk::QueryWalkRef)
    /// and the borrowed query's top-level clauses. Field-identical to
    /// `from_walk(&q.to_owned(), …)`.
    pub fn from_walk_ref(
        q: &sparqlog_parser::ast_ref::Query<'_>,
        walk: &crate::walk::QueryWalkRef<'_>,
    ) -> QueryFeatures {
        use sparqlog_parser::ast_ref as ar;
        let ops = &walk.ops;
        let mut aggregates = walk.aggregates;
        if let ar::Projection::Items(items) = &q.projection {
            for item in *items {
                if let Some(e) = &item.expr {
                    aggregates.scan_ref(e);
                }
            }
        }
        for h in q.modifiers.having {
            aggregates.scan_ref(h);
        }
        for o in q.modifiers.order_by {
            aggregates.scan_ref(&o.expr);
        }
        for g in q.modifiers.group_by {
            aggregates.scan_ref(&g.expr);
        }

        QueryFeatures {
            form: q.form,
            has_body: q.has_body(),
            triple_patterns: ops.triples,
            path_patterns: ops.paths,
            var_predicates: ops.var_predicates,
            uses_distinct: q.modifiers.distinct,
            uses_reduced: q.modifiers.reduced,
            uses_limit: q.modifiers.limit.is_some(),
            uses_offset: q.modifiers.offset.is_some(),
            uses_order_by: !q.modifiers.order_by.is_empty(),
            uses_group_by: !q.modifiers.group_by.is_empty(),
            uses_having: !q.modifiers.having.is_empty(),
            uses_filter: ops.filters > 0,
            uses_and: ops.uses_and(),
            uses_union: ops.unions > 0,
            uses_optional: ops.optionals > 0,
            uses_graph: ops.graphs > 0,
            uses_minus: ops.minuses > 0,
            uses_not_exists: ops.not_exists > 0,
            uses_exists: ops.exists > 0,
            uses_bind: ops.binds > 0,
            uses_values: ops.values_blocks > 0 || q.values.is_some(),
            uses_service: ops.services > 0,
            uses_subquery: ops.subqueries > 0,
            uses_property_path: ops.paths > 0,
            uses_aggregate: aggregates.any(),
            aggregates,
            ops: BodyOpsSummary::from(ops),
        }
    }

    /// Total number of triple-like patterns (plain triples plus paths) — the
    /// quantity plotted in Figure 1 of the paper.
    pub fn total_triples(&self) -> u32 {
        self.triple_patterns + self.path_patterns
    }

    /// True for SELECT and ASK queries — the forms that "truly query the
    /// data" and on which Sections 4.2–6 of the paper focus.
    pub fn is_select_or_ask(&self) -> bool {
        matches!(self.form, QueryForm::Select | QueryForm::Ask)
    }
}

fn scan_group_aggregates(g: &GroupGraphPattern, agg: &mut AggregateUse) {
    for el in &g.elements {
        match el {
            GroupElement::Filter(e) | GroupElement::Bind { expr: e, .. } => agg.scan(e),
            GroupElement::Optional(inner)
            | GroupElement::Minus(inner)
            | GroupElement::Group(inner)
            | GroupElement::Graph { pattern: inner, .. }
            | GroupElement::Service { pattern: inner, .. } => scan_group_aggregates(inner, agg),
            GroupElement::Union(branches) => {
                for b in branches {
                    scan_group_aggregates(b, agg);
                }
            }
            GroupElement::SubSelect(q) => {
                if let Projection::Items(items) = &q.projection {
                    for item in items {
                        if let Some(e) = &item.expr {
                            agg.scan(e);
                        }
                    }
                }
                for h in &q.modifiers.having {
                    agg.scan(h);
                }
                if let Some(inner) = &q.where_clause {
                    scan_group_aggregates(inner, agg);
                }
            }
            GroupElement::Triples(_) | GroupElement::Values(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn feats(q: &str) -> QueryFeatures {
        QueryFeatures::of(&parse_query(q).unwrap())
    }

    #[test]
    fn detects_query_form_and_modifiers() {
        let f = feats("SELECT DISTINCT ?x WHERE { ?x a <http://C> } ORDER BY ?x LIMIT 10 OFFSET 5");
        assert_eq!(f.form, QueryForm::Select);
        assert!(f.uses_distinct && f.uses_limit && f.uses_offset && f.uses_order_by);
        assert!(!f.uses_group_by);
    }

    #[test]
    fn detects_operators() {
        let f = feats(
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y OPTIONAL { ?y <http://q> ?z } FILTER(?y != 3) { ?x <http://r> ?w } UNION { ?x <http://s> ?w } }",
        );
        assert!(f.uses_and && f.uses_optional && f.uses_filter && f.uses_union);
        assert!(!f.uses_graph && !f.uses_minus);
        assert_eq!(f.total_triples(), 5);
    }

    #[test]
    fn detects_aggregates_everywhere() {
        let f = feats(
            "SELECT (COUNT(?x) AS ?c) (MAX(?y) AS ?m) WHERE { ?x <http://p> ?y } GROUP BY ?x HAVING (AVG(?y) > 2)",
        );
        assert!(f.aggregates.count && f.aggregates.max && f.aggregates.avg);
        assert!(!f.aggregates.sum);
        assert!(f.uses_aggregate && f.uses_group_by && f.uses_having);
    }

    #[test]
    fn detects_aggregates_in_subqueries() {
        let f = feats(
            "SELECT ?x WHERE { { SELECT ?x (SUM(?v) AS ?s) WHERE { ?x <http://p> ?v } GROUP BY ?x } }",
        );
        assert!(f.aggregates.sum);
        assert!(f.uses_subquery);
    }

    #[test]
    fn describe_without_body() {
        let f = feats("DESCRIBE <http://example.org/thing>");
        assert_eq!(f.form, QueryForm::Describe);
        assert!(!f.has_body);
        assert_eq!(f.total_triples(), 0);
        assert!(!f.is_select_or_ask());
    }

    #[test]
    fn property_paths_and_values() {
        let f = feats("SELECT ?x WHERE { ?x <http://a>/<http://b> ?y VALUES ?x { <http://v> } }");
        assert!(f.uses_property_path);
        assert!(f.uses_values);
        assert_eq!(f.path_patterns, 1);
    }

    #[test]
    fn not_exists_and_minus() {
        let f = feats(
            "SELECT ?x WHERE { ?x a <http://C> FILTER NOT EXISTS { ?x <http://p> ?y } MINUS { ?x a <http://D> } }",
        );
        assert!(f.uses_not_exists);
        assert!(f.uses_minus);
        assert!(!f.uses_exists);
    }
}
