//! Projection analysis (Section 4.4 of the paper).
//!
//! Projection is the feature that pushes the complexity of answer checking
//! for conjunctive queries from Ptime to NP-complete, so the paper measures
//! how many queries actually use it. We follow the test of Section 18.2.1 of
//! the SPARQL 1.1 recommendation, as the paper does:
//!
//! * A `SELECT *` query never uses projection.
//! * A `SELECT ?x …` query uses projection iff the set of selected variables
//!   is a *strict* subset of the in-scope (visible) variables of the body.
//! * An `ASK` query projects away every variable, so it uses projection iff
//!   its body mentions at least one variable. Most ASK queries in the logs
//!   ask for a concrete triple and therefore do not use projection.
//! * When the body uses `BIND` (or select expressions), the set of in-scope
//!   variables cannot be determined purely syntactically by this simplified
//!   test; such queries are reported as [`ProjectionUse::Unknown`], exactly
//!   the 1.3 % bucket the paper describes.

use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::*;
use std::collections::BTreeSet;

/// Whether a query uses projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProjectionUse {
    /// The query definitely uses projection.
    Yes,
    /// The query definitely does not use projection.
    No,
    /// The use of `BIND` / select expressions makes the syntactic test
    /// inconclusive.
    Unknown,
    /// The query form does not project (CONSTRUCT / DESCRIBE).
    NotApplicable,
}

/// Determines whether a query uses projection.
pub fn projection_use(q: &Query) -> ProjectionUse {
    match q.form {
        QueryForm::Construct | QueryForm::Describe => ProjectionUse::NotApplicable,
        QueryForm::Ask => {
            let vars = q.body_variables();
            if uses_bind(q) {
                ProjectionUse::Unknown
            } else if vars.is_empty() {
                ProjectionUse::No
            } else {
                ProjectionUse::Yes
            }
        }
        QueryForm::Select => {
            match &q.projection {
                Projection::All => ProjectionUse::No,
                Projection::Items(items) => {
                    if uses_bind(q) || items.iter().any(|i| i.expr.is_some()) {
                        return ProjectionUse::Unknown;
                    }
                    let selected: BTreeSet<&str> = items.iter().map(|i| i.var.as_str()).collect();
                    let visible = visible_variables(q);
                    if visible.iter().any(|v| !selected.contains(v.as_str())) {
                        ProjectionUse::Yes
                    } else {
                        ProjectionUse::No
                    }
                }
                // SELECT with DESCRIBE-style or absent projection cannot occur.
                Projection::Terms(_) | Projection::None => ProjectionUse::No,
            }
        }
    }
}

/// Determines whether a query uses projection from a completed
/// [`QueryWalk`](crate::walk::QueryWalk), without re-traversing the body.
///
/// `interner` must be the same interner the walk ran with: the selected
/// variables are interned into it, turning the strict-subset test into a
/// symbol (integer) membership check against the walk's visibility set.
pub fn projection_use_from_walk(
    q: &Query,
    walk: &crate::walk::QueryWalk<'_>,
    interner: &mut sparqlog_parser::intern::Interner,
) -> ProjectionUse {
    match q.form {
        QueryForm::Construct | QueryForm::Describe => ProjectionUse::NotApplicable,
        QueryForm::Ask => {
            if walk.has_bind {
                ProjectionUse::Unknown
            } else if walk.body_has_var {
                ProjectionUse::Yes
            } else {
                ProjectionUse::No
            }
        }
        QueryForm::Select => match &q.projection {
            Projection::All => ProjectionUse::No,
            Projection::Items(items) => {
                if walk.has_bind || items.iter().any(|i| i.expr.is_some()) {
                    return ProjectionUse::Unknown;
                }
                let selected: BTreeSet<sparqlog_parser::intern::Symbol> =
                    items.iter().map(|i| interner.intern(&i.var)).collect();
                let query_values = q
                    .values
                    .iter()
                    .flat_map(|v| v.variables.iter())
                    .map(|v| interner.intern(v));
                if walk
                    .visible_vars
                    .iter()
                    .copied()
                    .chain(query_values)
                    .any(|v| !selected.contains(&v))
                {
                    ProjectionUse::Yes
                } else {
                    ProjectionUse::No
                }
            }
            Projection::Terms(_) | Projection::None => ProjectionUse::No,
        },
    }
}

/// [`projection_use_from_walk`] over the borrowed AST and a completed
/// [`QueryWalkRef`](crate::walk::QueryWalkRef). Result-identical to running
/// the owned test on `q.to_owned()`.
pub fn projection_use_from_walk_ref(
    q: &sparqlog_parser::ast_ref::Query<'_>,
    walk: &crate::walk::QueryWalkRef<'_>,
    interner: &mut sparqlog_parser::intern::Interner,
) -> ProjectionUse {
    use sparqlog_parser::ast_ref as ar;
    match q.form {
        QueryForm::Construct | QueryForm::Describe => ProjectionUse::NotApplicable,
        QueryForm::Ask => {
            if walk.has_bind {
                ProjectionUse::Unknown
            } else if walk.body_has_var {
                ProjectionUse::Yes
            } else {
                ProjectionUse::No
            }
        }
        QueryForm::Select => match &q.projection {
            ar::Projection::All => ProjectionUse::No,
            ar::Projection::Items(items) => {
                if walk.has_bind || items.iter().any(|i| i.expr.is_some()) {
                    return ProjectionUse::Unknown;
                }
                let selected: BTreeSet<sparqlog_parser::intern::Symbol> =
                    items.iter().map(|i| interner.intern(i.var)).collect();
                let query_values = q
                    .values
                    .iter()
                    .flat_map(|v| v.variables.iter())
                    .map(|v| interner.intern(v));
                if walk
                    .visible_vars
                    .iter()
                    .copied()
                    .chain(query_values)
                    .any(|v| !selected.contains(&v))
                {
                    ProjectionUse::Yes
                } else {
                    ProjectionUse::No
                }
            }
            ar::Projection::Terms(_) | ar::Projection::None => ProjectionUse::No,
        },
    }
}

/// The set of variables *visible* (in scope) at the top level of the query
/// body: every variable occurring in the body, except those that occur only
/// inside subqueries and are not selected by the subquery.
fn visible_variables(q: &Query) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let Some(body) = &q.where_clause {
        visible_in_group(body, &mut out);
    }
    if let Some(values) = &q.values {
        out.extend(values.variables.iter().cloned());
    }
    out
}

fn visible_in_group(g: &GroupGraphPattern, out: &mut BTreeSet<String>) {
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => {
                for t in ts {
                    match t {
                        TripleOrPath::Triple(t) => {
                            for term in [&t.subject, &t.predicate, &t.object] {
                                if let Term::Var(v) = term {
                                    out.insert(v.clone());
                                }
                            }
                        }
                        TripleOrPath::Path(p) => {
                            for term in [&p.subject, &p.object] {
                                if let Term::Var(v) = term {
                                    out.insert(v.clone());
                                }
                            }
                        }
                    }
                }
            }
            // Filter variables are not *bound* by the filter, so they do not
            // add to the in-scope set.
            GroupElement::Filter(_) => {}
            GroupElement::Bind { var, .. } => {
                out.insert(var.clone());
            }
            GroupElement::Optional(inner)
            | GroupElement::Minus(inner)
            | GroupElement::Group(inner) => visible_in_group(inner, out),
            GroupElement::Union(branches) => {
                for b in branches {
                    visible_in_group(b, out);
                }
            }
            GroupElement::Graph { name, pattern } => {
                if let Term::Var(v) = name {
                    out.insert(v.clone());
                }
                visible_in_group(pattern, out);
            }
            GroupElement::Service { name, pattern, .. } => {
                if let Term::Var(v) = name {
                    out.insert(v.clone());
                }
                visible_in_group(pattern, out);
            }
            GroupElement::Values(d) => out.extend(d.variables.iter().cloned()),
            GroupElement::SubSelect(q) => {
                // Only the variables the subquery projects are visible.
                match &q.projection {
                    Projection::All => {
                        if let Some(inner) = &q.where_clause {
                            visible_in_group(inner, out);
                        }
                    }
                    Projection::Items(items) => {
                        out.extend(items.iter().map(|i| i.var.clone()));
                    }
                    _ => {}
                }
            }
        }
    }
}

fn uses_bind(q: &Query) -> bool {
    fn group_uses_bind(g: &GroupGraphPattern) -> bool {
        g.elements.iter().any(|el| match el {
            GroupElement::Bind { .. } => true,
            GroupElement::Optional(inner)
            | GroupElement::Minus(inner)
            | GroupElement::Group(inner)
            | GroupElement::Graph { pattern: inner, .. }
            | GroupElement::Service { pattern: inner, .. } => group_uses_bind(inner),
            GroupElement::Union(branches) => branches.iter().any(group_uses_bind),
            GroupElement::SubSelect(q) => q.where_clause.as_ref().is_some_and(group_uses_bind),
            _ => false,
        })
    }
    q.where_clause.as_ref().is_some_and(group_uses_bind)
}

/// Aggregated projection statistics over a corpus (the Section 4.4 numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectionTally {
    /// SELECT queries that use projection.
    pub select_yes: u64,
    /// ASK queries that use projection.
    pub ask_yes: u64,
    /// Queries that definitely do not use projection.
    pub no: u64,
    /// Queries where the test is inconclusive because of BIND.
    pub unknown: u64,
    /// CONSTRUCT / DESCRIBE queries (not applicable).
    pub not_applicable: u64,
    /// Queries using subqueries.
    pub with_subqueries: u64,
    /// Total queries recorded.
    pub total: u64,
}

impl ProjectionTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query.
    pub fn add(&mut self, q: &Query) {
        let use_ = projection_use(q);
        let has_subqueries = crate::walk::BodyOps::of_query(q).subqueries > 0;
        self.record(q.form, use_, has_subqueries);
    }

    /// Records one already-classified query (the single-pass pipeline path:
    /// the form, projection use and subquery flag all come from one
    /// [`QueryWalk`](crate::walk::QueryWalk)).
    pub fn record(&mut self, form: QueryForm, use_: ProjectionUse, has_subqueries: bool) {
        self.total += 1;
        if has_subqueries {
            self.with_subqueries += 1;
        }
        match (form, use_) {
            (QueryForm::Select, ProjectionUse::Yes) => self.select_yes += 1,
            (QueryForm::Ask, ProjectionUse::Yes) => self.ask_yes += 1,
            (_, ProjectionUse::No) => self.no += 1,
            (_, ProjectionUse::Unknown) => self.unknown += 1,
            (_, ProjectionUse::NotApplicable) => self.not_applicable += 1,
            // Yes for other forms cannot occur.
            (_, ProjectionUse::Yes) => {}
        }
    }

    /// Merges another tally.
    pub fn merge(&mut self, other: &ProjectionTally) {
        self.select_yes += other.select_yes;
        self.ask_yes += other.ask_yes;
        self.no += other.no;
        self.unknown += other.unknown;
        self.not_applicable += other.not_applicable;
        self.with_subqueries += other.with_subqueries;
        self.total += other.total;
    }

    /// Multiplies every counter by `times`: a tally built from one
    /// [`ProjectionTally::record`] and then scaled equals `times` repeated
    /// records of the same classification. Used by the fused engine's
    /// occurrence-weighted fold.
    pub fn scale(&mut self, times: u64) {
        self.select_yes *= times;
        self.ask_yes *= times;
        self.no *= times;
        self.unknown *= times;
        self.not_applicable *= times;
        self.with_subqueries *= times;
        self.total *= times;
    }

    /// Lower bound on the share of queries using projection.
    pub fn projection_share_lower(&self) -> f64 {
        (self.select_yes + self.ask_yes) as f64 / self.total.max(1) as f64
    }

    /// Upper bound on the share of queries using projection (counting the
    /// unknown bucket as projecting).
    pub fn projection_share_upper(&self) -> f64 {
        (self.select_yes + self.ask_yes + self.unknown) as f64 / self.total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn proj(q: &str) -> ProjectionUse {
        projection_use(&parse_query(q).unwrap())
    }

    #[test]
    fn select_star_has_no_projection() {
        assert_eq!(
            proj("SELECT * WHERE { ?x <http://p> ?y }"),
            ProjectionUse::No
        );
    }

    #[test]
    fn select_all_vars_has_no_projection() {
        assert_eq!(
            proj("SELECT ?x ?y WHERE { ?x <http://p> ?y }"),
            ProjectionUse::No
        );
    }

    #[test]
    fn select_subset_of_vars_uses_projection() {
        assert_eq!(
            proj("SELECT ?x WHERE { ?x <http://p> ?y }"),
            ProjectionUse::Yes
        );
    }

    #[test]
    fn ask_with_concrete_triple_does_not_project() {
        assert_eq!(
            proj("ASK { <http://s> <http://p> <http://o> }"),
            ProjectionUse::No
        );
    }

    #[test]
    fn ask_with_variables_projects() {
        assert_eq!(proj("ASK { ?x <http://p> ?y }"), ProjectionUse::Yes);
    }

    #[test]
    fn bind_makes_it_unknown() {
        assert_eq!(
            proj("SELECT ?x ?y WHERE { ?x <http://p> ?y BIND(?y + 1 AS ?z) }"),
            ProjectionUse::Unknown
        );
        assert_eq!(
            proj("SELECT (?x + 1 AS ?y) WHERE { ?x <http://p> ?v }"),
            ProjectionUse::Unknown
        );
    }

    #[test]
    fn describe_and_construct_not_applicable() {
        assert_eq!(proj("DESCRIBE <http://r>"), ProjectionUse::NotApplicable);
        assert_eq!(
            proj("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }"),
            ProjectionUse::NotApplicable
        );
    }

    #[test]
    fn subquery_hides_its_local_variables() {
        // ?y is only visible through the subquery projection, which selects it,
        // so the outer SELECT ?x ?y projects nothing away... but ?z stays local.
        assert_eq!(
            proj("SELECT ?x ?y WHERE { { SELECT ?x ?y WHERE { ?x <http://p> ?y . ?y <http://q> ?z } } }"),
            ProjectionUse::No
        );
        // The outer query projects away ?y which the subquery exposes.
        assert_eq!(
            proj("SELECT ?x WHERE { { SELECT ?x ?y WHERE { ?x <http://p> ?y . ?y <http://q> ?z } } }"),
            ProjectionUse::Yes
        );
    }

    #[test]
    fn filter_only_variables_do_not_count_as_visible() {
        // ?y occurs only in a filter; the in-scope variables are {?x}.
        assert_eq!(
            proj("SELECT ?x WHERE { ?x a <http://C> FILTER(?x != ?y) }"),
            ProjectionUse::No
        );
    }

    #[test]
    fn tally_bounds() {
        let mut t = ProjectionTally::new();
        for q in [
            "SELECT ?x WHERE { ?x <http://p> ?y }",
            "SELECT * WHERE { ?x <http://p> ?y }",
            "ASK { <http://s> <http://p> <http://o> }",
            "SELECT ?x WHERE { ?x <http://p> ?y BIND(1 AS ?z) }",
            "DESCRIBE <http://r>",
        ] {
            t.add(&parse_query(q).unwrap());
        }
        assert_eq!(t.total, 5);
        assert_eq!(t.select_yes, 1);
        assert_eq!(t.unknown, 1);
        assert_eq!(t.not_applicable, 1);
        assert!(t.projection_share_lower() <= t.projection_share_upper());
    }
}
