//! Well-designed pattern trees for And/Opt/Filter (AOF) patterns
//! (Section 5.2, Definitions 5.3–5.5 and Example 5.4 of the paper).
//!
//! An AOF pattern is turned into a *pattern tree* by the standard
//! Currying-based encoding: every node holds the conjunctive part (triples
//! and filters) of one Opt-nesting level, and each `OPTIONAL` block becomes a
//! child. The pattern tree is *well-designed* if, for every variable, the set
//! of nodes mentioning it forms a connected subtree (Barceló et al.), and its
//! *interface width* is the maximum number of variables shared between a node
//! and one of its children. `CQOF` is the class of AOF patterns with a
//! well-designed pattern tree of interface width at most one.

use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::*;
use std::collections::BTreeSet;

/// One node of a pattern tree: the CQ (triples + filters) of an Opt level.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PatternNode {
    /// The triple patterns of this node.
    pub triples: Vec<TriplePattern>,
    /// The filter constraints attached at this level.
    pub filters: Vec<Expression>,
    /// Children arising from `OPTIONAL` blocks.
    pub children: Vec<PatternNode>,
}

impl PatternNode {
    /// The set of variables mentioned in this node (triples and filters, not
    /// children).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.triples {
            for term in [&t.subject, &t.predicate, &t.object] {
                if let Term::Var(v) = term {
                    out.insert(v.clone());
                }
            }
        }
        for f in &self.filters {
            out.extend(f.variables());
        }
        out
    }

    /// The variables of this node as borrowed slices — the allocation-free
    /// counterpart of [`PatternNode::variables`], used by the single-pass
    /// well-designedness check.
    pub fn variable_refs(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for t in &self.triples {
            for term in [&t.subject, &t.predicate, &t.object] {
                if let Term::Var(v) = term {
                    out.insert(v.as_str());
                }
            }
        }
        for f in &self.filters {
            f.for_each_variable(&mut |v| {
                out.insert(v);
            });
        }
        out
    }

    /// Total number of nodes in the subtree rooted at this node.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PatternNode::node_count)
            .sum::<usize>()
    }

    /// Total number of triples in the subtree.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
            + self
                .children
                .iter()
                .map(PatternNode::triple_count)
                .sum::<usize>()
    }
}

/// A pattern tree for an AOF pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternTree {
    /// The root node.
    pub root: PatternNode,
}

impl PatternTree {
    /// Builds the pattern tree of a query body, provided the body is an AOF
    /// pattern (only triples, `And`, `Filter`, `Opt`, possibly nested
    /// groups). Returns `None` otherwise, or when the query has no body.
    ///
    /// Property-path patterns, UNION, GRAPH, MINUS, BIND, VALUES, SERVICE and
    /// subqueries all disqualify the pattern.
    pub fn build(q: &Query) -> Option<PatternTree> {
        let body = q.where_clause.as_ref()?;
        let mut root = PatternNode::default();
        if build_node(body, &mut root) {
            Some(PatternTree { root })
        } else {
            None
        }
    }

    /// Builds a pattern tree directly from a group graph pattern.
    pub fn build_from_group(g: &GroupGraphPattern) -> Option<PatternTree> {
        let mut root = PatternNode::default();
        if build_node(g, &mut root) {
            Some(PatternTree { root })
        } else {
            None
        }
    }

    /// Checks well-designedness: for every variable, the nodes mentioning it
    /// form a connected subtree.
    pub fn is_well_designed(&self) -> bool {
        // Collect nodes in preorder together with their parent indices.
        let mut nodes: Vec<(&PatternNode, Option<usize>)> = Vec::new();
        collect_nodes(&self.root, None, &mut nodes);
        // All variables.
        let mut all_vars: BTreeSet<String> = BTreeSet::new();
        for (n, _) in &nodes {
            all_vars.extend(n.variables());
        }
        for var in &all_vars {
            let in_set: Vec<bool> = nodes
                .iter()
                .map(|(n, _)| n.variables().contains(var))
                .collect();
            let mut roots_in_set = 0;
            for (i, (_, parent)) in nodes.iter().enumerate() {
                if !in_set[i] {
                    continue;
                }
                match parent {
                    Some(p) if in_set[*p] => {}
                    _ => roots_in_set += 1,
                }
            }
            if roots_in_set > 1 {
                return false;
            }
        }
        true
    }

    /// The interface width: the maximum number of variables shared between a
    /// node and one of its children (0 for single-node trees).
    pub fn interface_width(&self) -> usize {
        fn walk(node: &PatternNode) -> usize {
            let node_vars = node.variables();
            let mut best = 0;
            for child in &node.children {
                let shared = child.variables().intersection(&node_vars).count();
                best = best.max(shared).max(walk(child));
            }
            best
        }
        walk(&self.root)
    }

    /// True if this is a well-designed pattern tree with interface width at
    /// most one — i.e. the pattern is in `CQOF` (Definition 5.5).
    pub fn is_cqof(&self) -> bool {
        self.is_well_designed() && self.interface_width() <= 1
    }

    /// Computes well-designedness and interface width together in a single
    /// pass, materialising each node's variable set once (borrowed) instead
    /// of once per query variable as [`PatternTree::is_well_designed`] does.
    /// Equivalent to `(self.is_well_designed(), self.interface_width())`;
    /// this is the entry point the single-pass pipeline uses.
    pub fn well_designedness(&self) -> (bool, usize) {
        let mut nodes: Vec<(&PatternNode, Option<usize>)> = Vec::new();
        collect_nodes(&self.root, None, &mut nodes);
        let var_sets: Vec<BTreeSet<&str>> = nodes.iter().map(|(n, _)| n.variable_refs()).collect();

        // A variable's nodes form a connected subtree iff at most one of them
        // has a parent outside the set.
        let mut subtree_roots: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        let mut well_designed = true;
        let mut width = 0;
        for (i, (_, parent)) in nodes.iter().enumerate() {
            for &v in &var_sets[i] {
                let parent_has = parent.is_some_and(|p| var_sets[p].contains(v));
                if !parent_has {
                    let roots = subtree_roots.entry(v).or_insert(0);
                    *roots += 1;
                    if *roots > 1 {
                        well_designed = false;
                    }
                }
            }
            if let Some(p) = parent {
                width = width.max(var_sets[i].intersection(&var_sets[*p]).count());
            }
        }
        (well_designed, width)
    }

    /// Flattens every triple in the tree (preorder).
    pub fn all_triples(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a PatternNode, out: &mut Vec<&'a TriplePattern>) {
            out.extend(n.triples.iter());
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Flattens every filter in the tree (preorder).
    pub fn all_filters(&self) -> Vec<&Expression> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a PatternNode, out: &mut Vec<&'a Expression>) {
            out.extend(n.filters.iter());
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }
}

fn collect_nodes<'a>(
    node: &'a PatternNode,
    parent: Option<usize>,
    out: &mut Vec<(&'a PatternNode, Option<usize>)>,
) {
    let idx = out.len();
    out.push((node, parent));
    for c in &node.children {
        collect_nodes(c, Some(idx), out);
    }
}

/// Merges the content of `g` into `node`. Returns `false` if the group uses
/// anything outside the AOF fragment.
fn build_node(g: &GroupGraphPattern, node: &mut PatternNode) -> bool {
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => {
                for t in ts {
                    match t {
                        TripleOrPath::Triple(t) => node.triples.push(t.clone()),
                        TripleOrPath::Path(_) => return false,
                    }
                }
            }
            GroupElement::Filter(e) => {
                if e.contains_exists() {
                    return false;
                }
                node.filters.push(e.clone());
            }
            GroupElement::Optional(inner) => {
                let mut child = PatternNode::default();
                if !build_node(inner, &mut child) {
                    return false;
                }
                node.children.push(child);
            }
            // A nested plain group is an `And` of patterns: merge it into the
            // current node (Currying / Opt-normal-form flattening).
            GroupElement::Group(inner) => {
                if !build_node(inner, node) {
                    return false;
                }
            }
            GroupElement::Union(_)
            | GroupElement::Graph { .. }
            | GroupElement::Minus(_)
            | GroupElement::Bind { .. }
            | GroupElement::Values(_)
            | GroupElement::Service { .. }
            | GroupElement::SubSelect(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn tree(q: &str) -> Option<PatternTree> {
        PatternTree::build(&parse_query(q).unwrap())
    }

    /// The queries P1 and P2 from Example 5.4 of the paper.
    const P1: &str = "SELECT * WHERE { { ?A <name> ?N OPTIONAL { ?A <email> ?E } } OPTIONAL { ?A <webPage> ?W } }";
    const P2: &str =
        "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E OPTIONAL { ?A <webPage> ?W } } }";

    #[test]
    fn example_5_4_trees_have_expected_shape() {
        let t1 = tree(P1).unwrap();
        // Currying: root (name) with two children (email, webPage).
        assert_eq!(t1.root.triples.len(), 1);
        assert_eq!(t1.root.children.len(), 2);
        assert_eq!(t1.root.node_count(), 3);

        let t2 = tree(P2).unwrap();
        // Root (name) with one child (email) which has one child (webPage).
        assert_eq!(t2.root.children.len(), 1);
        assert_eq!(t2.root.children[0].children.len(), 1);
    }

    #[test]
    fn example_5_4_is_well_designed_with_interface_width_one() {
        for q in [P1, P2] {
            let t = tree(q).unwrap();
            assert!(t.is_well_designed(), "{q}");
            assert_eq!(t.interface_width(), 1, "{q}");
            assert!(t.is_cqof());
        }
    }

    #[test]
    fn missing_root_variable_breaks_well_designedness() {
        // The child mentions ?A and ?W, but ?W also occurs in a sibling that
        // does not share an ancestor mentioning it: variable ?W occurs in two
        // disconnected nodes.
        let q = "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?W } OPTIONAL { ?A <webPage> ?W } }";
        let t = tree(q).unwrap();
        assert!(!t.is_well_designed());
        assert!(!t.is_cqof());
    }

    #[test]
    fn interface_width_two_example() {
        // The child shares both ?A and ?N with the root.
        let q = "SELECT * WHERE { ?A <knows> ?N OPTIONAL { ?A <worksWith> ?N } }";
        let t = tree(q).unwrap();
        assert!(t.is_well_designed());
        assert_eq!(t.interface_width(), 2);
        assert!(!t.is_cqof());
    }

    #[test]
    fn cq_is_single_node_tree_and_cqof() {
        let t = tree("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }").unwrap();
        assert_eq!(t.root.node_count(), 1);
        assert_eq!(t.interface_width(), 0);
        assert!(t.is_cqof());
        assert_eq!(t.root.triple_count(), 2);
    }

    #[test]
    fn filters_contribute_variables() {
        // The filter in the child mentions ?N which connects it to the root.
        let q = "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E FILTER(?E != ?N) } }";
        let t = tree(q).unwrap();
        assert!(t.is_well_designed());
        assert_eq!(t.interface_width(), 2); // shares ?A and ?N
    }

    #[test]
    fn non_aof_patterns_are_rejected() {
        assert!(tree("SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }").is_none());
        assert!(tree("SELECT * WHERE { GRAPH ?g { ?x <p> ?y } }").is_none());
        assert!(tree("SELECT * WHERE { ?x <p>* ?y }").is_none());
        assert!(tree("SELECT * WHERE { ?x <p> ?y MINUS { ?x <q> ?y } }").is_none());
        assert!(tree("SELECT * WHERE { ?x <p> ?y FILTER EXISTS { ?x <q> ?z } }").is_none());
        assert!(tree("DESCRIBE <http://r>").is_none());
    }

    #[test]
    fn all_triples_and_filters_flatten() {
        let t = tree(P1).unwrap();
        assert_eq!(t.all_triples().len(), 3);
        assert_eq!(t.all_filters().len(), 0);
    }
}
