//! Operator-set classification of query bodies (Table 3 / Table 8).
//!
//! For each SELECT/ASK query the paper asks: which subset of the operators
//! O = {Filter, And, Opt, Graph, Union} does the body use — provided the body
//! uses *only* constructs built from these operators. Queries whose body uses
//! anything else (MINUS, BIND, subqueries, property paths, …) fall into the
//! `OtherFeatures` class; queries that use a combination of O-operators not
//! listed in the table fall into `OtherCombination` (the paper lists the
//! combinations explicitly; we keep all 32 subsets and let the report decide
//! what to print).

use crate::features::QueryFeatures;
use crate::walk::BodyOps;
use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::Query;
use std::collections::BTreeMap;

/// The five operators of Table 3, used as bit flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatorSet(u8);

impl OperatorSet {
    /// The empty operator set ("none" row of Table 3).
    pub const NONE: OperatorSet = OperatorSet(0);
    /// Filter (F).
    pub const FILTER: u8 = 1 << 0;
    /// And (A).
    pub const AND: u8 = 1 << 1;
    /// Opt (O).
    pub const OPT: u8 = 1 << 2;
    /// Graph (G).
    pub const GRAPH: u8 = 1 << 3;
    /// Union (U).
    pub const UNION: u8 = 1 << 4;

    /// Builds a set from individual flags.
    pub fn new(filter: bool, and: bool, opt: bool, graph: bool, union: bool) -> Self {
        let mut bits = 0;
        if filter {
            bits |= Self::FILTER;
        }
        if and {
            bits |= Self::AND;
        }
        if opt {
            bits |= Self::OPT;
        }
        if graph {
            bits |= Self::GRAPH;
        }
        if union {
            bits |= Self::UNION;
        }
        OperatorSet(bits)
    }

    /// Whether Filter is in the set.
    pub fn has_filter(&self) -> bool {
        self.0 & Self::FILTER != 0
    }
    /// Whether And is in the set.
    pub fn has_and(&self) -> bool {
        self.0 & Self::AND != 0
    }
    /// Whether Opt is in the set.
    pub fn has_opt(&self) -> bool {
        self.0 & Self::OPT != 0
    }
    /// Whether Graph is in the set.
    pub fn has_graph(&self) -> bool {
        self.0 & Self::GRAPH != 0
    }
    /// Whether Union is in the set.
    pub fn has_union(&self) -> bool {
        self.0 & Self::UNION != 0
    }

    /// True if the set is a subset of {And, Filter} — i.e. the query is a
    /// *conjunctive pattern with filters* (CPF, Definition 4.1).
    pub fn is_cpf(&self) -> bool {
        self.0 & !(Self::AND | Self::FILTER) == 0
    }

    /// The raw flag bits of the set — the stable wire representation used by
    /// snapshot codecs (e.g. `sparqlog-shard`). Always round-trips through
    /// [`OperatorSet::from_bits`].
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// Rebuilds a set from its raw flag bits, or `None` if `bits` carries
    /// flags outside the five operators of Table 3 (a decoder's
    /// invalid-value case).
    pub fn from_bits(bits: u8) -> Option<OperatorSet> {
        const ALL: u8 = OperatorSet::FILTER
            | OperatorSet::AND
            | OperatorSet::OPT
            | OperatorSet::GRAPH
            | OperatorSet::UNION;
        (bits & !ALL == 0).then_some(OperatorSet(bits))
    }

    /// The paper's label for this set, e.g. `"A, O, F"`, `"none"`.
    pub fn label(&self) -> String {
        if self.0 == 0 {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.has_and() {
            parts.push("A");
        }
        if self.has_opt() {
            parts.push("O");
        }
        if self.has_graph() {
            parts.push("G");
        }
        if self.has_union() {
            parts.push("U");
        }
        if self.has_filter() {
            parts.push("F");
        }
        parts.join(", ")
    }
}

/// The classification of one query for Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpSetClass {
    /// The body uses only O-operators; the payload is the exact set used.
    Pure(OperatorSet),
    /// The body uses features outside O (Bind, Minus, subqueries, property
    /// paths, VALUES, SERVICE, EXISTS …).
    OtherFeatures,
}

/// Classifies a query body for Table 3.
pub fn classify_opset(q: &Query) -> OpSetClass {
    let ops = BodyOps::of_query(q);
    classify_from_ops(&ops)
}

/// Classifies from precomputed [`BodyOps`] counters.
pub fn classify_from_ops(ops: &BodyOps) -> OpSetClass {
    if ops.uses_non_table3_features() {
        return OpSetClass::OtherFeatures;
    }
    OpSetClass::Pure(OperatorSet::new(
        ops.filters > 0,
        ops.uses_and(),
        ops.optionals > 0,
        ops.graphs > 0,
        ops.unions > 0,
    ))
}

/// Classifies from a [`QueryFeatures`] record (used by the corpus pipeline so
/// the AST does not need to be kept around).
pub fn classify_from_features(f: &QueryFeatures) -> OpSetClass {
    if f.uses_property_path
        || f.uses_minus
        || f.uses_bind
        || f.uses_service
        || f.uses_subquery
        || f.uses_not_exists
        || f.uses_exists
        || f.uses_values
    {
        return OpSetClass::OtherFeatures;
    }
    OpSetClass::Pure(OperatorSet::new(
        f.uses_filter,
        f.uses_and,
        f.uses_optional,
        f.uses_graph,
        f.uses_union,
    ))
}

/// Aggregated operator-set distribution over SELECT/ASK queries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSetTally {
    /// Count per exact operator set.
    pub pure: BTreeMap<OperatorSet, u64>,
    /// Queries using features outside O.
    pub other_features: u64,
    /// Total SELECT/ASK queries recorded.
    pub total: u64,
}

impl OpSetTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified query.
    pub fn add(&mut self, class: OpSetClass) {
        self.total += 1;
        match class {
            OpSetClass::Pure(set) => *self.pure.entry(set).or_insert(0) += 1,
            OpSetClass::OtherFeatures => self.other_features += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &OpSetTally) {
        for (set, n) in &other.pure {
            *self.pure.entry(*set).or_insert(0) += n;
        }
        self.other_features += other.other_features;
        self.total += other.total;
    }

    /// Multiplies every counter by `times`: a tally built from one
    /// [`OpSetTally::add`] and then scaled equals `times` repeated adds of
    /// the same class. Used by the fused engine's occurrence-weighted fold.
    pub fn scale(&mut self, times: u64) {
        for count in self.pure.values_mut() {
            *count *= times;
        }
        self.other_features *= times;
        self.total *= times;
    }

    /// The number of queries whose body is a conjunctive pattern with filters
    /// (the "CPF subtotal" row of Table 3).
    pub fn cpf_subtotal(&self) -> u64 {
        self.pure
            .iter()
            .filter(|(set, _)| set.is_cpf())
            .map(|(_, n)| *n)
            .sum()
    }

    /// The number of extra queries covered when Opt is added to the CPF
    /// fragment (the "CPF+O" row): sets that are subsets of {A, F, O} but use
    /// Opt.
    pub fn cpf_plus_opt_increment(&self) -> u64 {
        self.subset_increment(OperatorSet::AND | OperatorSet::FILTER | OperatorSet::OPT)
    }

    /// Extra queries covered when Graph is added to CPF ("CPF+G").
    pub fn cpf_plus_graph_increment(&self) -> u64 {
        self.subset_increment(OperatorSet::AND | OperatorSet::FILTER | OperatorSet::GRAPH)
    }

    /// Extra queries covered when Union is added to CPF ("CPF+U").
    pub fn cpf_plus_union_increment(&self) -> u64 {
        self.subset_increment(OperatorSet::AND | OperatorSet::FILTER | OperatorSet::UNION)
    }

    fn subset_increment(&self, allowed: u8) -> u64 {
        self.pure
            .iter()
            .filter(|(set, _)| set.0 & !allowed == 0 && !set.is_cpf())
            .map(|(_, n)| *n)
            .sum()
    }

    /// Count of the AOF patterns (subsets of {A, O, F}) — Section 5.
    pub fn aof_count(&self) -> u64 {
        self.pure
            .iter()
            .filter(|(set, _)| {
                set.0 & !(OperatorSet::AND | OperatorSet::FILTER | OperatorSet::OPT) == 0
            })
            .map(|(_, n)| *n)
            .sum()
    }

    /// Returns `(label, count, share)` rows ordered by descending count.
    pub fn rows(&self) -> Vec<(String, u64, f64)> {
        let total = self.total.max(1) as f64;
        let mut rows: Vec<(String, u64, f64)> = self
            .pure
            .iter()
            .map(|(set, n)| (set.label(), *n, *n as f64 / total))
            .collect();
        rows.push((
            "other features".to_string(),
            self.other_features,
            self.other_features as f64 / total,
        ));
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn classify(q: &str) -> OpSetClass {
        classify_opset(&parse_query(q).unwrap())
    }

    #[test]
    fn classifies_none_and_single_operators() {
        assert_eq!(
            classify("SELECT ?x WHERE { ?x a <http://C> }"),
            OpSetClass::Pure(OperatorSet::NONE)
        );
        assert_eq!(
            classify("SELECT ?x WHERE { ?x a <http://C> FILTER(?x != 1) }"),
            OpSetClass::Pure(OperatorSet::new(true, false, false, false, false))
        );
        assert_eq!(
            classify("SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y }"),
            OpSetClass::Pure(OperatorSet::new(false, true, false, false, false))
        );
    }

    #[test]
    fn classifies_combinations() {
        let c = classify(
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y OPTIONAL { ?y <http://q> ?z } FILTER(?z > 1) }",
        );
        let OpSetClass::Pure(set) = c else { panic!() };
        assert!(set.has_and() && set.has_opt() && set.has_filter());
        assert!(!set.has_union() && !set.has_graph());
        assert_eq!(set.label(), "A, O, F");
    }

    #[test]
    fn other_features_bucket() {
        assert_eq!(
            classify("SELECT ?x WHERE { ?x <http://a>/<http://b> ?y }"),
            OpSetClass::OtherFeatures
        );
        assert_eq!(
            classify("SELECT ?x WHERE { ?x a <http://C> MINUS { ?x a <http://D> } }"),
            OpSetClass::OtherFeatures
        );
        assert_eq!(
            classify("SELECT ?x WHERE { ?x a <http://C> BIND(1 AS ?y) }"),
            OpSetClass::OtherFeatures
        );
    }

    #[test]
    fn cpf_and_rollups() {
        let mut t = OpSetTally::new();
        for q in [
            "SELECT ?x WHERE { ?x a <http://C> }",                 // none
            "SELECT ?x WHERE { ?x a <http://C> FILTER(?x != 1) }", // F
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y }", // A
            "SELECT ?x WHERE { ?x a <http://C> OPTIONAL { ?x <http://p> ?y } }", // O
            "SELECT ?x WHERE { GRAPH ?g { ?x a <http://C> } }",    // G
            "SELECT ?x WHERE { { ?x a <http://C> } UNION { ?x a <http://D> } }", // U
            "SELECT ?x WHERE { ?x <http://a>* ?y }",               // other
        ] {
            t.add(classify(q));
        }
        assert_eq!(t.total, 7);
        assert_eq!(t.cpf_subtotal(), 3); // none, F, A
        assert_eq!(t.cpf_plus_opt_increment(), 1);
        assert_eq!(t.cpf_plus_graph_increment(), 1);
        assert_eq!(t.cpf_plus_union_increment(), 1);
        assert_eq!(t.other_features, 1);
        assert_eq!(t.aof_count(), 4);
    }

    #[test]
    fn bits_round_trip_every_subset() {
        for bits in 0u8..32 {
            let set = OperatorSet::from_bits(bits).expect("all 5-bit values are valid sets");
            assert_eq!(set.bits(), bits);
            assert_eq!(
                set,
                OperatorSet::new(
                    set.has_filter(),
                    set.has_and(),
                    set.has_opt(),
                    set.has_graph(),
                    set.has_union()
                )
            );
        }
        assert_eq!(OperatorSet::from_bits(0b10_0000), None);
        assert_eq!(OperatorSet::from_bits(0xFF), None);
    }

    #[test]
    fn labels_follow_paper_convention() {
        assert_eq!(OperatorSet::NONE.label(), "none");
        assert_eq!(
            OperatorSet::new(true, true, true, false, true).label(),
            "A, O, U, F"
        );
        assert_eq!(
            OperatorSet::new(false, false, false, true, false).label(),
            "G"
        );
    }

    #[test]
    fn rows_are_sorted_by_count() {
        let mut t = OpSetTally::new();
        for _ in 0..3 {
            t.add(classify("SELECT ?x WHERE { ?x a <http://C> }"));
        }
        t.add(classify(
            "SELECT ?x WHERE { ?x a <http://C> FILTER(?x != 1) }",
        ));
        let rows = t.rows();
        assert_eq!(rows[0].0, "none");
        assert_eq!(rows[0].1, 3);
    }
}
