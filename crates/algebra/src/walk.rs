//! A single-pass structural walk over a query body collecting the operator
//! and feature usage that all shallow analyses are built on.

use sparqlog_parser::ast::*;

/// Counters describing which syntactic constructs a query body uses and how
/// often. All downstream classifications (keyword census, operator sets,
/// fragments) are derived from these counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BodyOps {
    /// Number of plain triple patterns (including those inside OPTIONAL,
    /// UNION branches, GRAPH, MINUS and subqueries; excluding FILTER
    /// EXISTS patterns and CONSTRUCT templates).
    pub triples: u32,
    /// Number of non-trivial property-path patterns.
    pub paths: u32,
    /// Number of triple patterns whose predicate is a variable.
    pub var_predicates: u32,
    /// Number of conjunction (`And` / join) combinations: within every group,
    /// the number of joined pattern elements minus one (triples in a BGP each
    /// count as one element).
    pub joins: u32,
    /// Number of `FILTER` constraints.
    pub filters: u32,
    /// Number of `OPTIONAL` blocks.
    pub optionals: u32,
    /// Number of `UNION` operators (a chain of *k* branches counts *k − 1*).
    pub unions: u32,
    /// Number of `GRAPH` blocks.
    pub graphs: u32,
    /// Number of `MINUS` blocks.
    pub minuses: u32,
    /// Number of `BIND` assignments.
    pub binds: u32,
    /// Number of inline `VALUES` blocks inside the body.
    pub values_blocks: u32,
    /// Number of `SERVICE` blocks.
    pub services: u32,
    /// Number of subqueries (nested SELECTs).
    pub subqueries: u32,
    /// Number of `EXISTS` expressions inside filters.
    pub exists: u32,
    /// Number of `NOT EXISTS` expressions inside filters.
    pub not_exists: u32,
    /// Number of aggregate expressions used inside the body (subquery
    /// projections, having clauses of subqueries, …).
    pub aggregates_in_body: u32,
}

impl BodyOps {
    /// Computes the counters for a query body. Returns the default (all-zero)
    /// value for body-less queries.
    pub fn of_query(q: &Query) -> BodyOps {
        let mut ops = BodyOps::default();
        if let Some(body) = &q.where_clause {
            ops.walk_group(body);
        }
        ops
    }

    /// Computes the counters for a single group graph pattern.
    pub fn of_group(g: &GroupGraphPattern) -> BodyOps {
        let mut ops = BodyOps::default();
        ops.walk_group(g);
        ops
    }

    /// True if the body uses the `And` operator (at least one join).
    pub fn uses_and(&self) -> bool {
        self.joins > 0
    }

    /// Total number of triple-like patterns (plain triples plus paths).
    pub fn total_triples(&self) -> u32 {
        self.triples + self.paths
    }

    /// True if the body uses any construct outside the operator set
    /// {And, Filter, Opt, Graph, Union} studied in Table 3 of the paper
    /// (property paths, MINUS, BIND, VALUES, SERVICE, subqueries,
    /// (NOT) EXISTS).
    pub fn uses_non_table3_features(&self) -> bool {
        self.paths > 0
            || self.minuses > 0
            || self.binds > 0
            || self.values_blocks > 0
            || self.services > 0
            || self.subqueries > 0
            || self.exists > 0
            || self.not_exists > 0
            || self.aggregates_in_body > 0
    }

    /// True if the body uses only triple patterns combined with `And`,
    /// `Filter` and `Opt` — the *AOF patterns* of Section 5.
    pub fn is_aof(&self) -> bool {
        !self.uses_non_table3_features() && self.unions == 0 && self.graphs == 0
    }

    fn walk_group(&mut self, g: &GroupGraphPattern) {
        // Count the pattern elements that combine via Join within this group.
        let mut joined_elements: u32 = 0;
        for el in &g.elements {
            match el {
                GroupElement::Triples(ts) => {
                    for t in ts {
                        match t {
                            TripleOrPath::Triple(t) => {
                                self.triples += 1;
                                if t.predicate.is_var() {
                                    self.var_predicates += 1;
                                }
                            }
                            TripleOrPath::Path(_) => self.paths += 1,
                        }
                        joined_elements += 1;
                    }
                }
                GroupElement::Filter(e) => {
                    self.filters += 1;
                    self.walk_expression(e);
                }
                GroupElement::Bind { expr, .. } => {
                    self.binds += 1;
                    self.walk_expression(expr);
                }
                GroupElement::Optional(inner) => {
                    self.optionals += 1;
                    self.walk_group(inner);
                }
                GroupElement::Union(branches) => {
                    self.unions += (branches.len().saturating_sub(1)) as u32;
                    for b in branches {
                        self.walk_group(b);
                    }
                    joined_elements += 1;
                }
                GroupElement::Graph { pattern, .. } => {
                    self.graphs += 1;
                    self.walk_group(pattern);
                    joined_elements += 1;
                }
                GroupElement::Minus(inner) => {
                    self.minuses += 1;
                    self.walk_group(inner);
                }
                GroupElement::Service { pattern, .. } => {
                    self.services += 1;
                    self.walk_group(pattern);
                    joined_elements += 1;
                }
                GroupElement::Values(_) => {
                    self.values_blocks += 1;
                    joined_elements += 1;
                }
                GroupElement::SubSelect(q) => {
                    self.subqueries += 1;
                    if let Some(inner) = &q.where_clause {
                        self.walk_group(inner);
                    }
                    for item in projected_expressions(q) {
                        self.walk_expression(item);
                    }
                    joined_elements += 1;
                }
                GroupElement::Group(inner) => {
                    self.walk_group(inner);
                    joined_elements += 1;
                }
            }
        }
        self.joins += joined_elements.saturating_sub(1);
    }

    fn walk_expression(&mut self, e: &Expression) {
        match e {
            Expression::Exists(g) => {
                self.exists += 1;
                self.walk_group(g);
            }
            Expression::NotExists(g) => {
                self.not_exists += 1;
                self.walk_group(g);
            }
            Expression::Aggregate(agg) => {
                self.aggregates_in_body += 1;
                if let Some(inner) = &agg.expr {
                    self.walk_expression(inner);
                }
            }
            Expression::Var(_) | Expression::Term(_) => {}
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                self.walk_expression(a);
                self.walk_expression(b);
            }
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                self.walk_expression(a);
                for x in list {
                    self.walk_expression(x);
                }
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                self.walk_expression(a)
            }
            Expression::FunctionCall(_, args) => {
                for a in args {
                    self.walk_expression(a);
                }
            }
        }
    }
}

/// Returns the expressions projected by a query (the `expr` of each
/// `(expr AS ?v)` select item), used to find aggregates in subqueries.
fn projected_expressions(q: &Query) -> impl Iterator<Item = &Expression> {
    match &q.projection {
        Projection::Items(items) => items.iter().filter_map(|i| i.expr.as_ref()).collect::<Vec<_>>(),
        _ => Vec::new(),
    }
    .into_iter()
}

/// Collects every property path used anywhere in the query body (including
/// nested groups and subqueries), in source order.
pub fn collect_property_paths(q: &Query) -> Vec<&PropertyPath> {
    let mut out = Vec::new();
    if let Some(body) = &q.where_clause {
        collect_paths_group(body, &mut out);
    }
    out
}

fn collect_paths_group<'a>(g: &'a GroupGraphPattern, out: &mut Vec<&'a PropertyPath>) {
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => {
                for t in ts {
                    if let TripleOrPath::Path(p) = t {
                        out.push(&p.path);
                    }
                }
            }
            GroupElement::Optional(inner)
            | GroupElement::Minus(inner)
            | GroupElement::Group(inner)
            | GroupElement::Graph { pattern: inner, .. }
            | GroupElement::Service { pattern: inner, .. } => collect_paths_group(inner, out),
            GroupElement::Union(branches) => {
                for b in branches {
                    collect_paths_group(b, out);
                }
            }
            GroupElement::SubSelect(q) => {
                if let Some(inner) = &q.where_clause {
                    collect_paths_group(inner, out);
                }
            }
            GroupElement::Filter(e) => collect_paths_expr(e, out),
            GroupElement::Bind { expr, .. } => collect_paths_expr(expr, out),
            GroupElement::Values(_) => {}
        }
    }
}

fn collect_paths_expr<'a>(e: &'a Expression, out: &mut Vec<&'a PropertyPath>) {
    if let Expression::Exists(g) | Expression::NotExists(g) = e {
        collect_paths_group(g, out);
    }
}

/// Collects every triple-like pattern (triples and paths) in the body,
/// recursing into OPTIONAL / UNION / GRAPH / MINUS / groups / subqueries but
/// not into FILTER (NOT) EXISTS patterns.
pub fn collect_triple_patterns(q: &Query) -> Vec<&TripleOrPath> {
    let mut out = Vec::new();
    if let Some(body) = &q.where_clause {
        collect_triples_group(body, &mut out);
    }
    out
}

fn collect_triples_group<'a>(g: &'a GroupGraphPattern, out: &mut Vec<&'a TripleOrPath>) {
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => out.extend(ts.iter()),
            GroupElement::Optional(inner)
            | GroupElement::Minus(inner)
            | GroupElement::Group(inner)
            | GroupElement::Graph { pattern: inner, .. }
            | GroupElement::Service { pattern: inner, .. } => collect_triples_group(inner, out),
            GroupElement::Union(branches) => {
                for b in branches {
                    collect_triples_group(b, out);
                }
            }
            GroupElement::SubSelect(q) => {
                if let Some(inner) = &q.where_clause {
                    collect_triples_group(inner, out);
                }
            }
            GroupElement::Filter(_) | GroupElement::Bind { .. } | GroupElement::Values(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    #[test]
    fn counts_triples_and_joins() {
        let q = parse_query("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.triples, 2);
        assert_eq!(ops.joins, 1);
        assert!(ops.uses_and());
    }

    #[test]
    fn single_triple_has_no_join() {
        let q = parse_query("SELECT * WHERE { ?a <http://p> ?b }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.triples, 1);
        assert!(!ops.uses_and());
    }

    #[test]
    fn optional_does_not_count_as_join() {
        let q =
            parse_query("SELECT * WHERE { ?a <http://p> ?b OPTIONAL { ?b <http://q> ?c } }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.optionals, 1);
        assert_eq!(ops.joins, 0);
        assert!(ops.is_aof());
    }

    #[test]
    fn union_counts_branches_minus_one() {
        let q = parse_query(
            "SELECT * WHERE { { ?a <http://p> ?b } UNION { ?a <http://q> ?b } UNION { ?a <http://r> ?b } }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.unions, 2);
        assert!(!ops.is_aof());
    }

    #[test]
    fn var_predicates_are_counted() {
        let q = parse_query("ASK { ?x ?p ?y . ?y <http://q> ?z }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.var_predicates, 1);
    }

    #[test]
    fn exists_and_aggregates_are_found_in_expressions() {
        let q = parse_query(
            "SELECT * WHERE { ?x <http://p> ?y FILTER NOT EXISTS { ?x a <http://C> } FILTER EXISTS { ?y a <http://D> } }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.not_exists, 1);
        assert_eq!(ops.exists, 1);
        assert!(!ops.is_aof());
    }

    #[test]
    fn path_and_graph_detection() {
        let q = parse_query(
            "SELECT * WHERE { GRAPH ?g { ?x <http://a>/<http://b> ?y } }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.graphs, 1);
        assert_eq!(ops.paths, 1);
        assert_eq!(collect_property_paths(&q).len(), 1);
    }

    #[test]
    fn subquery_triples_are_included() {
        let q = parse_query(
            "SELECT ?x WHERE { { SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z } } ?x <http://r> ?w }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.subqueries, 1);
        assert_eq!(ops.triples, 3);
        assert_eq!(collect_triple_patterns(&q).len(), 3);
        // Subquery + triples block join at the outer level.
        assert!(ops.joins >= 1);
    }

    #[test]
    fn joined_graph_blocks_count_as_and() {
        let q = parse_query("SELECT * WHERE { ?a <http://p> ?b . GRAPH <http://g> { ?b <http://q> ?c } }")
            .unwrap();
        let ops = BodyOps::of_query(&q);
        assert!(ops.uses_and());
    }
}
