//! Structural walks over a query body.
//!
//! Two generations of walkers live here:
//!
//! * [`BodyOps`], [`collect_property_paths`] and [`collect_triple_patterns`]
//!   are the original *per-measure* walkers: each entry point traverses the
//!   AST on its own. They are kept verbatim as the reference ("multi-walk")
//!   path that the differential tests and the `single_pass` benchmark compare
//!   against.
//! * [`QueryWalk`] is the *single-pass* walker: one traversal of the body
//!   collecting everything the corpus pipeline needs — the [`BodyOps`]
//!   counters, aggregate usage, property paths, projection-visibility data
//!   and the AOF pattern tree. All `*_from_walk` entry points in this crate
//!   and in `sparqlog-graph` consume it instead of re-traversing the query.

use crate::features::AggregateUse;
use crate::pattern_tree::{PatternNode, PatternTree};
use sparqlog_parser::ast::*;
use sparqlog_parser::intern::{Interner, Symbol};
use std::collections::BTreeSet;

/// Counters describing which syntactic constructs a query body uses and how
/// often. All downstream classifications (keyword census, operator sets,
/// fragments) are derived from these counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BodyOps {
    /// Number of plain triple patterns (including those inside OPTIONAL,
    /// UNION branches, GRAPH, MINUS and subqueries; excluding FILTER
    /// EXISTS patterns and CONSTRUCT templates).
    pub triples: u32,
    /// Number of non-trivial property-path patterns.
    pub paths: u32,
    /// Number of triple patterns whose predicate is a variable.
    pub var_predicates: u32,
    /// Number of conjunction (`And` / join) combinations: within every group,
    /// the number of joined pattern elements minus one (triples in a BGP each
    /// count as one element).
    pub joins: u32,
    /// Number of `FILTER` constraints.
    pub filters: u32,
    /// Number of `OPTIONAL` blocks.
    pub optionals: u32,
    /// Number of `UNION` operators (a chain of *k* branches counts *k − 1*).
    pub unions: u32,
    /// Number of `GRAPH` blocks.
    pub graphs: u32,
    /// Number of `MINUS` blocks.
    pub minuses: u32,
    /// Number of `BIND` assignments.
    pub binds: u32,
    /// Number of inline `VALUES` blocks inside the body.
    pub values_blocks: u32,
    /// Number of `SERVICE` blocks.
    pub services: u32,
    /// Number of subqueries (nested SELECTs).
    pub subqueries: u32,
    /// Number of `EXISTS` expressions inside filters.
    pub exists: u32,
    /// Number of `NOT EXISTS` expressions inside filters.
    pub not_exists: u32,
    /// Number of aggregate expressions used inside the body (subquery
    /// projections, having clauses of subqueries, …).
    pub aggregates_in_body: u32,
}

impl BodyOps {
    /// Computes the counters for a query body. Returns the default (all-zero)
    /// value for body-less queries.
    pub fn of_query(q: &Query) -> BodyOps {
        let mut ops = BodyOps::default();
        if let Some(body) = &q.where_clause {
            ops.walk_group(body);
        }
        ops
    }

    /// Computes the counters for a single group graph pattern.
    pub fn of_group(g: &GroupGraphPattern) -> BodyOps {
        let mut ops = BodyOps::default();
        ops.walk_group(g);
        ops
    }

    /// True if the body uses the `And` operator (at least one join).
    pub fn uses_and(&self) -> bool {
        self.joins > 0
    }

    /// Total number of triple-like patterns (plain triples plus paths).
    pub fn total_triples(&self) -> u32 {
        self.triples + self.paths
    }

    /// True if the body uses any construct outside the operator set
    /// {And, Filter, Opt, Graph, Union} studied in Table 3 of the paper
    /// (property paths, MINUS, BIND, VALUES, SERVICE, subqueries,
    /// (NOT) EXISTS).
    pub fn uses_non_table3_features(&self) -> bool {
        self.paths > 0
            || self.minuses > 0
            || self.binds > 0
            || self.values_blocks > 0
            || self.services > 0
            || self.subqueries > 0
            || self.exists > 0
            || self.not_exists > 0
            || self.aggregates_in_body > 0
    }

    /// True if the body uses only triple patterns combined with `And`,
    /// `Filter` and `Opt` — the *AOF patterns* of Section 5.
    pub fn is_aof(&self) -> bool {
        !self.uses_non_table3_features() && self.unions == 0 && self.graphs == 0
    }

    fn walk_group(&mut self, g: &GroupGraphPattern) {
        // Count the pattern elements that combine via Join within this group.
        let mut joined_elements: u32 = 0;
        for el in &g.elements {
            match el {
                GroupElement::Triples(ts) => {
                    for t in ts {
                        match t {
                            TripleOrPath::Triple(t) => {
                                self.triples += 1;
                                if t.predicate.is_var() {
                                    self.var_predicates += 1;
                                }
                            }
                            TripleOrPath::Path(_) => self.paths += 1,
                        }
                        joined_elements += 1;
                    }
                }
                GroupElement::Filter(e) => {
                    self.filters += 1;
                    self.walk_expression(e);
                }
                GroupElement::Bind { expr, .. } => {
                    self.binds += 1;
                    self.walk_expression(expr);
                }
                GroupElement::Optional(inner) => {
                    self.optionals += 1;
                    self.walk_group(inner);
                }
                GroupElement::Union(branches) => {
                    self.unions += (branches.len().saturating_sub(1)) as u32;
                    for b in branches {
                        self.walk_group(b);
                    }
                    joined_elements += 1;
                }
                GroupElement::Graph { pattern, .. } => {
                    self.graphs += 1;
                    self.walk_group(pattern);
                    joined_elements += 1;
                }
                GroupElement::Minus(inner) => {
                    self.minuses += 1;
                    self.walk_group(inner);
                }
                GroupElement::Service { pattern, .. } => {
                    self.services += 1;
                    self.walk_group(pattern);
                    joined_elements += 1;
                }
                GroupElement::Values(_) => {
                    self.values_blocks += 1;
                    joined_elements += 1;
                }
                GroupElement::SubSelect(q) => {
                    self.subqueries += 1;
                    if let Some(inner) = &q.where_clause {
                        self.walk_group(inner);
                    }
                    for item in projected_expressions(q) {
                        self.walk_expression(item);
                    }
                    joined_elements += 1;
                }
                GroupElement::Group(inner) => {
                    self.walk_group(inner);
                    joined_elements += 1;
                }
            }
        }
        self.joins += joined_elements.saturating_sub(1);
    }

    fn walk_expression(&mut self, e: &Expression) {
        match e {
            Expression::Exists(g) => {
                self.exists += 1;
                self.walk_group(g);
            }
            Expression::NotExists(g) => {
                self.not_exists += 1;
                self.walk_group(g);
            }
            Expression::Aggregate(agg) => {
                self.aggregates_in_body += 1;
                if let Some(inner) = &agg.expr {
                    self.walk_expression(inner);
                }
            }
            Expression::Var(_) | Expression::Term(_) => {}
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                self.walk_expression(a);
                self.walk_expression(b);
            }
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                self.walk_expression(a);
                for x in list {
                    self.walk_expression(x);
                }
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                self.walk_expression(a)
            }
            Expression::FunctionCall(_, args) => {
                for a in args {
                    self.walk_expression(a);
                }
            }
        }
    }
}

/// Returns the expressions projected by a query (the `expr` of each
/// `(expr AS ?v)` select item), used to find aggregates in subqueries.
fn projected_expressions(q: &Query) -> impl Iterator<Item = &Expression> {
    match &q.projection {
        Projection::Items(items) => items
            .iter()
            .filter_map(|i| i.expr.as_ref())
            .collect::<Vec<_>>(),
        _ => Vec::new(),
    }
    .into_iter()
}

/// Collects every property path used anywhere in the query body (including
/// nested groups and subqueries), in source order.
pub fn collect_property_paths(q: &Query) -> Vec<&PropertyPath> {
    let mut out = Vec::new();
    if let Some(body) = &q.where_clause {
        collect_paths_group(body, &mut out);
    }
    out
}

fn collect_paths_group<'a>(g: &'a GroupGraphPattern, out: &mut Vec<&'a PropertyPath>) {
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => {
                for t in ts {
                    if let TripleOrPath::Path(p) = t {
                        out.push(&p.path);
                    }
                }
            }
            GroupElement::Optional(inner)
            | GroupElement::Minus(inner)
            | GroupElement::Group(inner)
            | GroupElement::Graph { pattern: inner, .. }
            | GroupElement::Service { pattern: inner, .. } => collect_paths_group(inner, out),
            GroupElement::Union(branches) => {
                for b in branches {
                    collect_paths_group(b, out);
                }
            }
            GroupElement::SubSelect(q) => {
                if let Some(inner) = &q.where_clause {
                    collect_paths_group(inner, out);
                }
            }
            GroupElement::Filter(e) => collect_paths_expr(e, out),
            GroupElement::Bind { expr, .. } => collect_paths_expr(expr, out),
            GroupElement::Values(_) => {}
        }
    }
}

fn collect_paths_expr<'a>(e: &'a Expression, out: &mut Vec<&'a PropertyPath>) {
    if let Expression::Exists(g) | Expression::NotExists(g) = e {
        collect_paths_group(g, out);
    }
}

/// Collects every triple-like pattern (triples and paths) in the body,
/// recursing into OPTIONAL / UNION / GRAPH / MINUS / groups / subqueries but
/// not into FILTER (NOT) EXISTS patterns.
pub fn collect_triple_patterns(q: &Query) -> Vec<&TripleOrPath> {
    let mut out = Vec::new();
    if let Some(body) = &q.where_clause {
        collect_triples_group(body, &mut out);
    }
    out
}

fn collect_triples_group<'a>(g: &'a GroupGraphPattern, out: &mut Vec<&'a TripleOrPath>) {
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => out.extend(ts.iter()),
            GroupElement::Optional(inner)
            | GroupElement::Minus(inner)
            | GroupElement::Group(inner)
            | GroupElement::Graph { pattern: inner, .. }
            | GroupElement::Service { pattern: inner, .. } => collect_triples_group(inner, out),
            GroupElement::Union(branches) => {
                for b in branches {
                    collect_triples_group(b, out);
                }
            }
            GroupElement::SubSelect(q) => {
                if let Some(inner) = &q.where_clause {
                    collect_triples_group(inner, out);
                }
            }
            GroupElement::Filter(_) | GroupElement::Bind { .. } | GroupElement::Values(_) => {}
        }
    }
}

/// Everything the corpus pipeline needs from one query body, collected in a
/// **single traversal** of the AST.
///
/// The collected channels replicate the older per-measure walkers exactly:
///
/// * `ops` — the [`BodyOps`] counters ([`BodyOps::of_query`]);
/// * `aggregates` — aggregate-function usage inside the body, with the same
///   coverage as the scan in [`crate::features::QueryFeatures::of`] (it does
///   not descend into `EXISTS` groups);
/// * `paths` — the property paths [`collect_property_paths`] returns, in the
///   same order;
/// * `visible_vars` / `body_has_var` / `has_bind` — the in-scope-variable and
///   BIND data [`crate::projection::projection_use`] needs;
/// * `tree` — the AOF pattern tree [`PatternTree::build`] would produce
///   (`None` when the body is not an AOF pattern or the query has no body).
///
/// The per-channel scoping rules differ subtly (e.g. visible variables stop
/// at filters, aggregate scanning stops at `EXISTS`, path collection only
/// enters an `EXISTS` group when it is the top-level filter expression), so
/// the walk threads a small set of channel flags through the recursion
/// instead of traversing once per channel.
///
/// Variable names are interned into the caller-supplied [`Interner`] as the
/// walk encounters them, so the visible-variable set holds `u32` [`Symbol`]s
/// (integer
/// ordering and comparison) instead of string slices, and repeated variable
/// names across the queries a worker analyses share one stored string.
#[derive(Debug, Default)]
pub struct QueryWalk<'q> {
    /// The structural counters.
    pub ops: BodyOps,
    /// Aggregate functions used inside the body.
    pub aggregates: AggregateUse,
    /// Every property path, in source order.
    pub paths: Vec<&'q PropertyPath>,
    /// The variables in scope at the top level of the body (SPARQL 1.1
    /// §18.2.1, as approximated by the projection analysis), as symbols of
    /// the interner the walk ran with.
    pub visible_vars: BTreeSet<Symbol>,
    /// Whether the body mentions any variable at all (the
    /// `Query::body_variables` emptiness test used for ASK projection).
    pub body_has_var: bool,
    /// Whether the body uses BIND outside `EXISTS` groups (the
    /// `projection::uses_bind` test).
    pub has_bind: bool,
    /// The AOF pattern tree, when the body is an AOF pattern.
    pub tree: Option<PatternTree>,
    /// Whether the tree under construction is still valid.
    tree_valid: bool,
}

/// Channel flags threaded through the group recursion.
#[derive(Debug, Clone, Copy)]
struct GroupCtx {
    /// Record aggregate kinds (off inside `EXISTS` subtrees).
    aggs: bool,
    /// Record visible variables (off inside filters, `EXISTS` subtrees and
    /// projected subqueries).
    visible: bool,
    /// Record "body mentions a variable" (off inside subquery projections).
    vars: bool,
    /// Detect BIND for the projection test (off inside `EXISTS` subtrees).
    bindscan: bool,
    /// Collect property paths (off inside non-top-level `EXISTS` groups and
    /// subquery projections).
    paths: bool,
}

/// Channel flags for the expression recursion.
#[derive(Debug, Clone, Copy)]
struct ExprCtx {
    /// Count into [`BodyOps`] and walk `EXISTS` groups (off in subquery
    /// HAVING clauses, which only the aggregate scan visits).
    ops: bool,
    /// Record aggregate kinds.
    aggs: bool,
    /// Record "body mentions a variable".
    vars: bool,
    /// Collect property paths from a top-level `EXISTS` group.
    paths: bool,
    /// Whether this node is the root of a filter/bind expression (path
    /// collection only enters `EXISTS` at the top level).
    top: bool,
}

impl<'q> QueryWalk<'q> {
    /// Walks the body of `q` once, collecting every channel. Variable names
    /// are interned into `interner` (typically the calling worker's
    /// long-lived table) so the visibility set works over symbols.
    pub fn of(q: &'q Query, interner: &mut Interner) -> QueryWalk<'q> {
        let mut walk = QueryWalk {
            tree_valid: true,
            ..QueryWalk::default()
        };
        let Some(body) = &q.where_clause else {
            walk.tree_valid = false;
            return walk;
        };
        let mut root = PatternNode::default();
        let ctx = GroupCtx {
            aggs: true,
            visible: true,
            vars: true,
            bindscan: true,
            paths: true,
        };
        walk.walk_group(body, ctx, Some(&mut root), interner);
        if walk.tree_valid {
            walk.tree = Some(PatternTree { root });
        }
        walk
    }

    fn walk_group(
        &mut self,
        g: &'q GroupGraphPattern,
        ctx: GroupCtx,
        mut node: Option<&mut PatternNode>,
        interner: &mut Interner,
    ) {
        let mut joined_elements: u32 = 0;
        for el in &g.elements {
            match el {
                GroupElement::Triples(ts) => {
                    for t in ts {
                        match t {
                            TripleOrPath::Triple(t) => {
                                self.ops.triples += 1;
                                if t.predicate.is_var() {
                                    self.ops.var_predicates += 1;
                                }
                                for term in [&t.subject, &t.predicate, &t.object] {
                                    self.record_term_var(term, ctx, interner);
                                }
                                if let Some(node) = node.as_deref_mut() {
                                    if self.tree_valid {
                                        node.triples.push(t.clone());
                                    }
                                }
                            }
                            TripleOrPath::Path(p) => {
                                self.ops.paths += 1;
                                self.tree_valid = false;
                                if ctx.paths {
                                    self.paths.push(&p.path);
                                }
                                for term in [&p.subject, &p.object] {
                                    self.record_term_var(term, ctx, interner);
                                }
                            }
                        }
                        joined_elements += 1;
                    }
                }
                GroupElement::Filter(e) => {
                    self.ops.filters += 1;
                    let saw_exists = self.walk_expr(
                        e,
                        ExprCtx {
                            ops: true,
                            aggs: ctx.aggs,
                            vars: ctx.vars,
                            paths: ctx.paths,
                            top: true,
                        },
                        interner,
                    );
                    if saw_exists {
                        self.tree_valid = false;
                    } else if let Some(node) = node.as_deref_mut() {
                        if self.tree_valid {
                            node.filters.push(e.clone());
                        }
                    }
                }
                GroupElement::Bind { var, expr } => {
                    self.ops.binds += 1;
                    self.tree_valid = false;
                    if ctx.bindscan {
                        self.has_bind = true;
                    }
                    if ctx.visible {
                        let symbol = interner.intern(var);
                        self.visible_vars.insert(symbol);
                    }
                    if ctx.vars {
                        self.body_has_var = true;
                    }
                    self.walk_expr(
                        expr,
                        ExprCtx {
                            ops: true,
                            aggs: ctx.aggs,
                            vars: ctx.vars,
                            paths: ctx.paths,
                            top: true,
                        },
                        interner,
                    );
                }
                GroupElement::Optional(inner) => {
                    self.ops.optionals += 1;
                    match node.as_deref_mut().filter(|_| self.tree_valid) {
                        Some(parent) => {
                            let mut child = PatternNode::default();
                            self.walk_group(inner, ctx, Some(&mut child), interner);
                            if self.tree_valid {
                                parent.children.push(child);
                            }
                        }
                        None => self.walk_group(inner, ctx, None, interner),
                    }
                }
                GroupElement::Union(branches) => {
                    self.ops.unions += (branches.len().saturating_sub(1)) as u32;
                    self.tree_valid = false;
                    for b in branches {
                        self.walk_group(b, ctx, None, interner);
                    }
                    joined_elements += 1;
                }
                GroupElement::Graph { name, pattern } => {
                    self.ops.graphs += 1;
                    self.tree_valid = false;
                    self.record_term_var(name, ctx, interner);
                    self.walk_group(pattern, ctx, None, interner);
                    joined_elements += 1;
                }
                GroupElement::Minus(inner) => {
                    self.ops.minuses += 1;
                    self.tree_valid = false;
                    self.walk_group(inner, ctx, None, interner);
                }
                GroupElement::Service { name, pattern, .. } => {
                    self.ops.services += 1;
                    self.tree_valid = false;
                    self.record_term_var(name, ctx, interner);
                    self.walk_group(pattern, ctx, None, interner);
                    joined_elements += 1;
                }
                GroupElement::Values(d) => {
                    self.ops.values_blocks += 1;
                    self.tree_valid = false;
                    if ctx.visible {
                        for v in &d.variables {
                            let symbol = interner.intern(v);
                            self.visible_vars.insert(symbol);
                        }
                    }
                    if ctx.vars && !d.variables.is_empty() {
                        self.body_has_var = true;
                    }
                    joined_elements += 1;
                }
                GroupElement::SubSelect(q) => {
                    self.ops.subqueries += 1;
                    self.tree_valid = false;
                    // Only the variables the subquery projects are visible.
                    let inner_visible = ctx.visible && matches!(q.projection, Projection::All);
                    if ctx.visible {
                        if let Projection::Items(items) = &q.projection {
                            for item in items {
                                let symbol = interner.intern(&item.var);
                                self.visible_vars.insert(symbol);
                            }
                        }
                    }
                    if let Some(inner) = &q.where_clause {
                        self.walk_group(
                            inner,
                            GroupCtx {
                                visible: inner_visible,
                                ..ctx
                            },
                            None,
                            interner,
                        );
                    }
                    // Projection expressions feed the ops counters and the
                    // aggregate scan; HAVING clauses only the aggregate scan.
                    if let Projection::Items(items) = &q.projection {
                        for item in items {
                            if let Some(e) = &item.expr {
                                self.walk_expr(
                                    e,
                                    ExprCtx {
                                        ops: true,
                                        aggs: ctx.aggs,
                                        vars: false,
                                        paths: false,
                                        top: false,
                                    },
                                    interner,
                                );
                            }
                        }
                    }
                    for h in &q.modifiers.having {
                        self.walk_expr(
                            h,
                            ExprCtx {
                                ops: false,
                                aggs: ctx.aggs,
                                vars: false,
                                paths: false,
                                top: false,
                            },
                            interner,
                        );
                    }
                    joined_elements += 1;
                }
                GroupElement::Group(inner) => {
                    match node.as_deref_mut().filter(|_| self.tree_valid) {
                        // A nested plain group merges into the current tree
                        // node (Currying / Opt-normal-form flattening).
                        Some(parent) => self.walk_group(inner, ctx, Some(parent), interner),
                        None => self.walk_group(inner, ctx, None, interner),
                    }
                    joined_elements += 1;
                }
            }
        }
        self.ops.joins += joined_elements.saturating_sub(1);
    }

    fn record_term_var(&mut self, term: &'q Term, ctx: GroupCtx, interner: &mut Interner) {
        if let Term::Var(v) = term {
            if ctx.visible {
                let symbol = interner.intern(v);
                self.visible_vars.insert(symbol);
            }
            if ctx.vars {
                self.body_has_var = true;
            }
        }
    }

    /// Walks one expression; returns whether the subtree contains
    /// `(NOT) EXISTS` (the `Expression::contains_exists` test, needed to
    /// decide whether a filter may enter the pattern tree).
    fn walk_expr(&mut self, e: &'q Expression, ctx: ExprCtx, interner: &mut Interner) -> bool {
        let inner = ExprCtx { top: false, ..ctx };
        match e {
            Expression::Var(_) => {
                if ctx.vars {
                    self.body_has_var = true;
                }
                false
            }
            Expression::Term(_) => false,
            Expression::Exists(g) | Expression::NotExists(g) => {
                // The aggregate scan and the BIND/visibility tests stop at
                // EXISTS; the ops counters and the variable census descend.
                if ctx.ops {
                    match e {
                        Expression::Exists(_) => self.ops.exists += 1,
                        _ => self.ops.not_exists += 1,
                    }
                    let group_ctx = GroupCtx {
                        aggs: false,
                        visible: false,
                        vars: ctx.vars,
                        bindscan: false,
                        paths: ctx.paths && ctx.top,
                    };
                    self.walk_group(g, group_ctx, None, interner);
                }
                true
            }
            Expression::Aggregate(agg) => {
                if ctx.ops {
                    self.ops.aggregates_in_body += 1;
                }
                if ctx.aggs {
                    self.aggregates.record(agg.kind);
                }
                match &agg.expr {
                    Some(inner_expr) => self.walk_expr(inner_expr, inner, interner),
                    None => false,
                }
            }
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                let sa = self.walk_expr(a, inner, interner);
                let sb = self.walk_expr(b, inner, interner);
                sa || sb
            }
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                let mut saw = self.walk_expr(a, inner, interner);
                for x in list {
                    saw |= self.walk_expr(x, inner, interner);
                }
                saw
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                self.walk_expr(a, inner, interner)
            }
            Expression::FunctionCall(_, args) => {
                let mut saw = false;
                for a in args {
                    saw |= self.walk_expr(a, inner, interner);
                }
                saw
            }
        }
    }
}

/// Borrowed-AST twin of [`QueryWalk`]: one traversal of an
/// [`ast_ref::Query`](sparqlog_parser::ast_ref::Query) collecting the same
/// channels with the same scoping rules.
///
/// Everything extracted is either `Copy` borrowed data (`paths`), interned
/// symbols (`visible_vars`) or owned (`tree` — the AOF pattern tree is built
/// from owned copies of the triples and filters as they are encountered, so
/// the result is safe to keep after the parse arena is reset). The walk only
/// runs on analysis-cache misses, so the owned tree copies are off the
/// per-entry hot path.
#[derive(Debug, Default)]
pub struct QueryWalkRef<'q> {
    /// The structural counters.
    pub ops: BodyOps,
    /// Aggregate functions used inside the body.
    pub aggregates: AggregateUse,
    /// Every property path, in source order (borrowed `Copy` nodes).
    pub paths: Vec<sparqlog_parser::ast_ref::PropertyPath<'q>>,
    /// The variables in scope at the top level of the body, as symbols.
    pub visible_vars: BTreeSet<Symbol>,
    /// Whether the body mentions any variable at all.
    pub body_has_var: bool,
    /// Whether the body uses BIND outside `EXISTS` groups.
    pub has_bind: bool,
    /// The AOF pattern tree (owned), when the body is an AOF pattern.
    pub tree: Option<PatternTree>,
    /// Whether the tree under construction is still valid.
    tree_valid: bool,
}

impl<'q> QueryWalkRef<'q> {
    /// Walks the body of a borrowed query once; see [`QueryWalk::of`]. The
    /// channels are identical to running [`QueryWalk::of`] on
    /// `q.to_owned()`.
    pub fn of(
        q: &sparqlog_parser::ast_ref::Query<'q>,
        interner: &mut Interner,
    ) -> QueryWalkRef<'q> {
        let mut walk = QueryWalkRef {
            tree_valid: true,
            ..QueryWalkRef::default()
        };
        let Some(body) = &q.where_clause else {
            walk.tree_valid = false;
            return walk;
        };
        let mut root = PatternNode::default();
        let ctx = GroupCtx {
            aggs: true,
            visible: true,
            vars: true,
            bindscan: true,
            paths: true,
        };
        walk.walk_group(body, ctx, Some(&mut root), interner);
        if walk.tree_valid {
            walk.tree = Some(PatternTree { root });
        }
        walk
    }

    fn walk_group(
        &mut self,
        g: &sparqlog_parser::ast_ref::GroupGraphPattern<'q>,
        ctx: GroupCtx,
        mut node: Option<&mut PatternNode>,
        interner: &mut Interner,
    ) {
        use sparqlog_parser::ast_ref as ar;
        let mut joined_elements: u32 = 0;
        for el in g.elements {
            match el {
                ar::GroupElement::Triples(ts) => {
                    for t in *ts {
                        match t {
                            ar::TripleOrPath::Triple(t) => {
                                self.ops.triples += 1;
                                if t.predicate.is_var() {
                                    self.ops.var_predicates += 1;
                                }
                                for term in [&t.subject, &t.predicate, &t.object] {
                                    self.record_term_var(term, ctx, interner);
                                }
                                if let Some(node) = node.as_deref_mut() {
                                    if self.tree_valid {
                                        node.triples.push(t.to_owned());
                                    }
                                }
                            }
                            ar::TripleOrPath::Path(p) => {
                                self.ops.paths += 1;
                                self.tree_valid = false;
                                if ctx.paths {
                                    self.paths.push(p.path);
                                }
                                for term in [&p.subject, &p.object] {
                                    self.record_term_var(term, ctx, interner);
                                }
                            }
                        }
                        joined_elements += 1;
                    }
                }
                ar::GroupElement::Filter(e) => {
                    self.ops.filters += 1;
                    let saw_exists = self.walk_expr(
                        e,
                        ExprCtx {
                            ops: true,
                            aggs: ctx.aggs,
                            vars: ctx.vars,
                            paths: ctx.paths,
                            top: true,
                        },
                        interner,
                    );
                    if saw_exists {
                        self.tree_valid = false;
                    } else if let Some(node) = node.as_deref_mut() {
                        if self.tree_valid {
                            node.filters.push(e.to_owned());
                        }
                    }
                }
                ar::GroupElement::Bind { var, expr } => {
                    self.ops.binds += 1;
                    self.tree_valid = false;
                    if ctx.bindscan {
                        self.has_bind = true;
                    }
                    if ctx.visible {
                        let symbol = interner.intern(var);
                        self.visible_vars.insert(symbol);
                    }
                    if ctx.vars {
                        self.body_has_var = true;
                    }
                    self.walk_expr(
                        expr,
                        ExprCtx {
                            ops: true,
                            aggs: ctx.aggs,
                            vars: ctx.vars,
                            paths: ctx.paths,
                            top: true,
                        },
                        interner,
                    );
                }
                ar::GroupElement::Optional(inner) => {
                    self.ops.optionals += 1;
                    match node.as_deref_mut().filter(|_| self.tree_valid) {
                        Some(parent) => {
                            let mut child = PatternNode::default();
                            self.walk_group(inner, ctx, Some(&mut child), interner);
                            if self.tree_valid {
                                parent.children.push(child);
                            }
                        }
                        None => self.walk_group(inner, ctx, None, interner),
                    }
                }
                ar::GroupElement::Union(branches) => {
                    self.ops.unions += (branches.len().saturating_sub(1)) as u32;
                    self.tree_valid = false;
                    for b in *branches {
                        self.walk_group(b, ctx, None, interner);
                    }
                    joined_elements += 1;
                }
                ar::GroupElement::Graph { name, pattern } => {
                    self.ops.graphs += 1;
                    self.tree_valid = false;
                    self.record_term_var(name, ctx, interner);
                    self.walk_group(pattern, ctx, None, interner);
                    joined_elements += 1;
                }
                ar::GroupElement::Minus(inner) => {
                    self.ops.minuses += 1;
                    self.tree_valid = false;
                    self.walk_group(inner, ctx, None, interner);
                }
                ar::GroupElement::Service { name, pattern, .. } => {
                    self.ops.services += 1;
                    self.tree_valid = false;
                    self.record_term_var(name, ctx, interner);
                    self.walk_group(pattern, ctx, None, interner);
                    joined_elements += 1;
                }
                ar::GroupElement::Values(d) => {
                    self.ops.values_blocks += 1;
                    self.tree_valid = false;
                    if ctx.visible {
                        for v in d.variables {
                            let symbol = interner.intern(v);
                            self.visible_vars.insert(symbol);
                        }
                    }
                    if ctx.vars && !d.variables.is_empty() {
                        self.body_has_var = true;
                    }
                    joined_elements += 1;
                }
                ar::GroupElement::SubSelect(q) => {
                    self.ops.subqueries += 1;
                    self.tree_valid = false;
                    // Only the variables the subquery projects are visible.
                    let inner_visible = ctx.visible && matches!(q.projection, ar::Projection::All);
                    if ctx.visible {
                        if let ar::Projection::Items(items) = &q.projection {
                            for item in *items {
                                let symbol = interner.intern(item.var);
                                self.visible_vars.insert(symbol);
                            }
                        }
                    }
                    if let Some(inner) = &q.where_clause {
                        self.walk_group(
                            inner,
                            GroupCtx {
                                visible: inner_visible,
                                ..ctx
                            },
                            None,
                            interner,
                        );
                    }
                    // Projection expressions feed the ops counters and the
                    // aggregate scan; HAVING clauses only the aggregate scan.
                    if let ar::Projection::Items(items) = &q.projection {
                        for item in *items {
                            if let Some(e) = &item.expr {
                                self.walk_expr(
                                    e,
                                    ExprCtx {
                                        ops: true,
                                        aggs: ctx.aggs,
                                        vars: false,
                                        paths: false,
                                        top: false,
                                    },
                                    interner,
                                );
                            }
                        }
                    }
                    for h in q.modifiers.having {
                        self.walk_expr(
                            h,
                            ExprCtx {
                                ops: false,
                                aggs: ctx.aggs,
                                vars: false,
                                paths: false,
                                top: false,
                            },
                            interner,
                        );
                    }
                    joined_elements += 1;
                }
                ar::GroupElement::Group(inner) => {
                    match node.as_deref_mut().filter(|_| self.tree_valid) {
                        Some(parent) => self.walk_group(inner, ctx, Some(parent), interner),
                        None => self.walk_group(inner, ctx, None, interner),
                    }
                    joined_elements += 1;
                }
            }
        }
        self.ops.joins += joined_elements.saturating_sub(1);
    }

    fn record_term_var(
        &mut self,
        term: &sparqlog_parser::ast_ref::Term<'q>,
        ctx: GroupCtx,
        interner: &mut Interner,
    ) {
        if let sparqlog_parser::ast_ref::Term::Var(v) = term {
            if ctx.visible {
                let symbol = interner.intern(v);
                self.visible_vars.insert(symbol);
            }
            if ctx.vars {
                self.body_has_var = true;
            }
        }
    }

    fn walk_expr(
        &mut self,
        e: &sparqlog_parser::ast_ref::Expression<'q>,
        ctx: ExprCtx,
        interner: &mut Interner,
    ) -> bool {
        use sparqlog_parser::ast_ref::Expression as E;
        let inner = ExprCtx { top: false, ..ctx };
        match e {
            E::Var(_) => {
                if ctx.vars {
                    self.body_has_var = true;
                }
                false
            }
            E::Term(_) => false,
            E::Exists(g) | E::NotExists(g) => {
                if ctx.ops {
                    match e {
                        E::Exists(_) => self.ops.exists += 1,
                        _ => self.ops.not_exists += 1,
                    }
                    let group_ctx = GroupCtx {
                        aggs: false,
                        visible: false,
                        vars: ctx.vars,
                        bindscan: false,
                        paths: ctx.paths && ctx.top,
                    };
                    self.walk_group(g, group_ctx, None, interner);
                }
                true
            }
            E::Aggregate(agg) => {
                if ctx.ops {
                    self.ops.aggregates_in_body += 1;
                }
                if ctx.aggs {
                    self.aggregates.record(agg.kind);
                }
                match agg.expr {
                    Some(inner_expr) => self.walk_expr(inner_expr, inner, interner),
                    None => false,
                }
            }
            E::Or(a, b)
            | E::And(a, b)
            | E::Equal(a, b)
            | E::NotEqual(a, b)
            | E::Less(a, b)
            | E::Greater(a, b)
            | E::LessEq(a, b)
            | E::GreaterEq(a, b)
            | E::Add(a, b)
            | E::Subtract(a, b)
            | E::Multiply(a, b)
            | E::Divide(a, b) => {
                let sa = self.walk_expr(a, inner, interner);
                let sb = self.walk_expr(b, inner, interner);
                sa || sb
            }
            E::In(a, list) | E::NotIn(a, list) => {
                let mut saw = self.walk_expr(a, inner, interner);
                for x in *list {
                    saw |= self.walk_expr(x, inner, interner);
                }
                saw
            }
            E::Not(a) | E::UnaryMinus(a) | E::UnaryPlus(a) => self.walk_expr(a, inner, interner),
            E::FunctionCall(_, args) => {
                let mut saw = false;
                for a in *args {
                    saw |= self.walk_expr(a, inner, interner);
                }
                saw
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    #[test]
    fn counts_triples_and_joins() {
        let q = parse_query("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.triples, 2);
        assert_eq!(ops.joins, 1);
        assert!(ops.uses_and());
    }

    #[test]
    fn single_triple_has_no_join() {
        let q = parse_query("SELECT * WHERE { ?a <http://p> ?b }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.triples, 1);
        assert!(!ops.uses_and());
    }

    #[test]
    fn optional_does_not_count_as_join() {
        let q = parse_query("SELECT * WHERE { ?a <http://p> ?b OPTIONAL { ?b <http://q> ?c } }")
            .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.optionals, 1);
        assert_eq!(ops.joins, 0);
        assert!(ops.is_aof());
    }

    #[test]
    fn union_counts_branches_minus_one() {
        let q = parse_query(
            "SELECT * WHERE { { ?a <http://p> ?b } UNION { ?a <http://q> ?b } UNION { ?a <http://r> ?b } }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.unions, 2);
        assert!(!ops.is_aof());
    }

    #[test]
    fn var_predicates_are_counted() {
        let q = parse_query("ASK { ?x ?p ?y . ?y <http://q> ?z }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.var_predicates, 1);
    }

    #[test]
    fn exists_and_aggregates_are_found_in_expressions() {
        let q = parse_query(
            "SELECT * WHERE { ?x <http://p> ?y FILTER NOT EXISTS { ?x a <http://C> } FILTER EXISTS { ?y a <http://D> } }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.not_exists, 1);
        assert_eq!(ops.exists, 1);
        assert!(!ops.is_aof());
    }

    #[test]
    fn path_and_graph_detection() {
        let q = parse_query("SELECT * WHERE { GRAPH ?g { ?x <http://a>/<http://b> ?y } }").unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.graphs, 1);
        assert_eq!(ops.paths, 1);
        assert_eq!(collect_property_paths(&q).len(), 1);
    }

    #[test]
    fn subquery_triples_are_included() {
        let q = parse_query(
            "SELECT ?x WHERE { { SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z } } ?x <http://r> ?w }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert_eq!(ops.subqueries, 1);
        assert_eq!(ops.triples, 3);
        assert_eq!(collect_triple_patterns(&q).len(), 3);
        // Subquery + triples block join at the outer level.
        assert!(ops.joins >= 1);
    }

    #[test]
    fn joined_graph_blocks_count_as_and() {
        let q = parse_query(
            "SELECT * WHERE { ?a <http://p> ?b . GRAPH <http://g> { ?b <http://q> ?c } }",
        )
        .unwrap();
        let ops = BodyOps::of_query(&q);
        assert!(ops.uses_and());
    }
}
