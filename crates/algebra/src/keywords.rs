//! Keyword census across a corpus (Table 2 / Table 7 of the paper).

use crate::features::QueryFeatures;
use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::QueryForm;

/// The keyword rows reported in Table 2 of the paper, in the paper's order.
pub const KEYWORD_ROWS: &[&str] = &[
    "Select",
    "Ask",
    "Describe",
    "Construct",
    "Distinct",
    "Limit",
    "Offset",
    "Order By",
    "Filter",
    "And",
    "Union",
    "Opt",
    "Graph",
    "Not Exists",
    "Minus",
    "Exists",
    "Count",
    "Max",
    "Min",
    "Avg",
    "Sum",
    "Group By",
    "Having",
];

/// Aggregated keyword usage counts over a set of queries.
///
/// Each counter holds the number of *queries* that use the keyword at least
/// once (not the number of keyword occurrences), matching the semantics of
/// Table 2 in the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordTally {
    /// Total number of queries aggregated.
    pub total_queries: u64,
    /// Query-form counts.
    pub select: u64,
    /// Number of ASK queries.
    pub ask: u64,
    /// Number of DESCRIBE queries.
    pub describe: u64,
    /// Number of CONSTRUCT queries.
    pub construct: u64,
    /// Solution-modifier counts.
    pub distinct: u64,
    /// Queries with LIMIT.
    pub limit: u64,
    /// Queries with OFFSET.
    pub offset: u64,
    /// Queries with ORDER BY.
    pub order_by: u64,
    /// Body-operator counts.
    pub filter: u64,
    /// Queries using conjunction.
    pub and: u64,
    /// Queries using UNION.
    pub union: u64,
    /// Queries using OPTIONAL.
    pub opt: u64,
    /// Queries using GRAPH.
    pub graph: u64,
    /// Queries using NOT EXISTS.
    pub not_exists: u64,
    /// Queries using MINUS.
    pub minus: u64,
    /// Queries using EXISTS.
    pub exists: u64,
    /// Aggregation-operator counts.
    pub count: u64,
    /// Queries using MAX.
    pub max: u64,
    /// Queries using MIN.
    pub min: u64,
    /// Queries using AVG.
    pub avg: u64,
    /// Queries using SUM.
    pub sum: u64,
    /// Queries using GROUP BY.
    pub group_by: u64,
    /// Queries using HAVING.
    pub having: u64,
    /// Additional (sub-1%) features tracked for completeness.
    pub service: u64,
    /// Queries using BIND.
    pub bind: u64,
    /// Queries using VALUES.
    pub values: u64,
    /// Queries using REDUCED.
    pub reduced: u64,
    /// Queries using subqueries.
    pub subquery: u64,
    /// Queries using property paths.
    pub property_path: u64,
}

impl KeywordTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's features.
    pub fn add(&mut self, f: &QueryFeatures) {
        self.total_queries += 1;
        match f.form {
            QueryForm::Select => self.select += 1,
            QueryForm::Ask => self.ask += 1,
            QueryForm::Describe => self.describe += 1,
            QueryForm::Construct => self.construct += 1,
        }
        let bump = |cond: bool, slot: &mut u64| {
            if cond {
                *slot += 1;
            }
        };
        bump(f.uses_distinct, &mut self.distinct);
        bump(f.uses_limit, &mut self.limit);
        bump(f.uses_offset, &mut self.offset);
        bump(f.uses_order_by, &mut self.order_by);
        bump(f.uses_filter, &mut self.filter);
        bump(f.uses_and, &mut self.and);
        bump(f.uses_union, &mut self.union);
        bump(f.uses_optional, &mut self.opt);
        bump(f.uses_graph, &mut self.graph);
        bump(f.uses_not_exists, &mut self.not_exists);
        bump(f.uses_minus, &mut self.minus);
        bump(f.uses_exists, &mut self.exists);
        bump(f.aggregates.count, &mut self.count);
        bump(f.aggregates.max, &mut self.max);
        bump(f.aggregates.min, &mut self.min);
        bump(f.aggregates.avg, &mut self.avg);
        bump(f.aggregates.sum, &mut self.sum);
        bump(f.uses_group_by, &mut self.group_by);
        bump(f.uses_having, &mut self.having);
        bump(f.uses_service, &mut self.service);
        bump(f.uses_bind, &mut self.bind);
        bump(f.uses_values, &mut self.values);
        bump(f.uses_reduced, &mut self.reduced);
        bump(f.uses_subquery, &mut self.subquery);
        bump(f.uses_property_path, &mut self.property_path);
    }

    /// Merges another tally into this one (used for parallel aggregation).
    pub fn merge(&mut self, other: &KeywordTally) {
        self.total_queries += other.total_queries;
        self.select += other.select;
        self.ask += other.ask;
        self.describe += other.describe;
        self.construct += other.construct;
        self.distinct += other.distinct;
        self.limit += other.limit;
        self.offset += other.offset;
        self.order_by += other.order_by;
        self.filter += other.filter;
        self.and += other.and;
        self.union += other.union;
        self.opt += other.opt;
        self.graph += other.graph;
        self.not_exists += other.not_exists;
        self.minus += other.minus;
        self.exists += other.exists;
        self.count += other.count;
        self.max += other.max;
        self.min += other.min;
        self.avg += other.avg;
        self.sum += other.sum;
        self.group_by += other.group_by;
        self.having += other.having;
        self.service += other.service;
        self.bind += other.bind;
        self.values += other.values;
        self.reduced += other.reduced;
        self.subquery += other.subquery;
        self.property_path += other.property_path;
    }

    /// Multiplies every counter by `times`, so that a tally built from one
    /// [`KeywordTally::add`] and then scaled equals `times` repeated adds of
    /// the same features. This is the occurrence-weighted fold used by the
    /// fused streaming engine, which records each distinct canonical form
    /// once together with its occurrence count.
    pub fn scale(&mut self, times: u64) {
        self.total_queries *= times;
        self.select *= times;
        self.ask *= times;
        self.describe *= times;
        self.construct *= times;
        self.distinct *= times;
        self.limit *= times;
        self.offset *= times;
        self.order_by *= times;
        self.filter *= times;
        self.and *= times;
        self.union *= times;
        self.opt *= times;
        self.graph *= times;
        self.not_exists *= times;
        self.minus *= times;
        self.exists *= times;
        self.count *= times;
        self.max *= times;
        self.min *= times;
        self.avg *= times;
        self.sum *= times;
        self.group_by *= times;
        self.having *= times;
        self.service *= times;
        self.bind *= times;
        self.values *= times;
        self.reduced *= times;
        self.subquery *= times;
        self.property_path *= times;
    }

    /// Returns the Table-2 rows as `(label, absolute count, relative share)`
    /// in the paper's order. The relative share is with respect to
    /// `total_queries` and expressed as a fraction in `[0, 1]`.
    pub fn rows(&self) -> Vec<(&'static str, u64, f64)> {
        let values = [
            ("Select", self.select),
            ("Ask", self.ask),
            ("Describe", self.describe),
            ("Construct", self.construct),
            ("Distinct", self.distinct),
            ("Limit", self.limit),
            ("Offset", self.offset),
            ("Order By", self.order_by),
            ("Filter", self.filter),
            ("And", self.and),
            ("Union", self.union),
            ("Opt", self.opt),
            ("Graph", self.graph),
            ("Not Exists", self.not_exists),
            ("Minus", self.minus),
            ("Exists", self.exists),
            ("Count", self.count),
            ("Max", self.max),
            ("Min", self.min),
            ("Avg", self.avg),
            ("Sum", self.sum),
            ("Group By", self.group_by),
            ("Having", self.having),
        ];
        let total = self.total_queries.max(1) as f64;
        values
            .into_iter()
            .map(|(name, v)| (name, v, v as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn tally(queries: &[&str]) -> KeywordTally {
        let mut t = KeywordTally::new();
        for q in queries {
            t.add(&QueryFeatures::of(&parse_query(q).unwrap()));
        }
        t
    }

    #[test]
    fn counts_query_forms() {
        let t = tally(&[
            "SELECT ?x WHERE { ?x a <http://C> }",
            "SELECT ?x WHERE { ?x a <http://C> }",
            "ASK { ?x a <http://C> }",
            "DESCRIBE <http://r>",
            "CONSTRUCT { ?x a <http://D> } WHERE { ?x a <http://C> }",
        ]);
        assert_eq!(t.total_queries, 5);
        assert_eq!(t.select, 2);
        assert_eq!(t.ask, 1);
        assert_eq!(t.describe, 1);
        assert_eq!(t.construct, 1);
    }

    #[test]
    fn counts_queries_not_occurrences() {
        // Two filters in one query count once.
        let t = tally(&["SELECT ?x WHERE { ?x a <http://C> FILTER(?x != 1) FILTER(?x != 2) }"]);
        assert_eq!(t.filter, 1);
    }

    #[test]
    fn rows_cover_all_table2_labels_in_order() {
        let t = tally(&["SELECT ?x WHERE { ?x a <http://C> }"]);
        let rows = t.rows();
        let labels: Vec<_> = rows.iter().map(|(l, _, _)| *l).collect();
        assert_eq!(labels, KEYWORD_ROWS);
        // Relative shares are fractions of the total.
        assert!((rows[0].2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters() {
        let a = tally(&["SELECT ?x WHERE { ?x a <http://C> } LIMIT 5"]);
        let b = tally(&["ASK { ?x a <http://C> . ?x <http://p> ?y }"]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.total_queries, 2);
        assert_eq!(m.limit, 1);
        assert_eq!(m.and, 1);
    }
}
