//! Triples-per-query histograms (Figure 1 / Figure 8 of the paper).

use crate::features::QueryFeatures;
use serde::{Deserialize, Serialize};

/// Number of explicit histogram buckets: 0, 1, …, 10 triples; larger counts
/// fall into the `eleven_plus` bucket, mirroring Figure 1's legend.
pub const EXPLICIT_BUCKETS: usize = 11;

/// A histogram of the number of triple patterns per query, restricted to
/// SELECT and ASK queries exactly as in Section 4.2 of the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleHistogram {
    /// Counts for exactly 0..=10 triples.
    pub buckets: [u64; EXPLICIT_BUCKETS],
    /// Count for 11 or more triples.
    pub eleven_plus: u64,
    /// Total number of SELECT/ASK queries observed.
    pub select_ask_queries: u64,
    /// Total number of queries observed (any form), used for the S/A share.
    pub all_queries: u64,
    /// Sum of triple counts over all SELECT/ASK queries (for the average).
    pub triple_sum: u64,
    /// The largest triple count observed.
    pub max_triples: u32,
}

impl TripleHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a query. Only SELECT and ASK queries contribute to the
    /// histogram buckets, but every query contributes to `all_queries`.
    pub fn add(&mut self, f: &QueryFeatures) {
        self.all_queries += 1;
        if !f.is_select_or_ask() {
            return;
        }
        self.select_ask_queries += 1;
        let n = f.total_triples();
        self.triple_sum += u64::from(n);
        self.max_triples = self.max_triples.max(n);
        if (n as usize) < EXPLICIT_BUCKETS {
            self.buckets[n as usize] += 1;
        } else {
            self.eleven_plus += 1;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &TripleHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.eleven_plus += other.eleven_plus;
        self.select_ask_queries += other.select_ask_queries;
        self.all_queries += other.all_queries;
        self.triple_sum += other.triple_sum;
        self.max_triples = self.max_triples.max(other.max_triples);
    }

    /// Multiplies every additive counter by `times` while leaving the
    /// `max_triples` extremum untouched: a histogram built from one
    /// [`TripleHistogram::add`] and then scaled equals `times` repeated adds
    /// of the same features (the maximum is idempotent under repetition).
    /// Used by the fused engine's occurrence-weighted fold.
    pub fn scale(&mut self, times: u64) {
        for bucket in &mut self.buckets {
            *bucket *= times;
        }
        self.eleven_plus *= times;
        self.select_ask_queries *= times;
        self.all_queries *= times;
        self.triple_sum *= times;
    }

    /// The share of SELECT/ASK queries among all queries (the "S/A" row at the
    /// bottom of Figure 1), as a fraction in `[0, 1]`.
    pub fn select_ask_share(&self) -> f64 {
        if self.all_queries == 0 {
            0.0
        } else {
            self.select_ask_queries as f64 / self.all_queries as f64
        }
    }

    /// The average number of triples per SELECT/ASK query (the "Avg#T" row).
    pub fn average_triples(&self) -> f64 {
        if self.select_ask_queries == 0 {
            0.0
        } else {
            self.triple_sum as f64 / self.select_ask_queries as f64
        }
    }

    /// The fraction of SELECT/ASK queries with at most `n` triples, used for
    /// the corpus-level statements in Section 4.2 (e.g. "56.45% use at most
    /// one triple").
    pub fn cumulative_share_at_most(&self, n: u32) -> f64 {
        if self.select_ask_queries == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            if i as u32 <= n {
                acc += c;
            }
        }
        if n as usize >= EXPLICIT_BUCKETS {
            acc += self.eleven_plus;
        }
        acc as f64 / self.select_ask_queries as f64
    }

    /// The per-bucket shares (0, 1, …, 10, 11+) as fractions of the
    /// SELECT/ASK queries — the stacked bars of Figure 1.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.select_ask_queries.max(1) as f64;
        let mut out: Vec<f64> = self.buckets.iter().map(|&c| c as f64 / total).collect();
        out.push(self.eleven_plus as f64 / total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::QueryFeatures;
    use sparqlog_parser::parse_query;

    fn add(h: &mut TripleHistogram, q: &str) {
        h.add(&QueryFeatures::of(&parse_query(q).unwrap()));
    }

    #[test]
    fn buckets_and_average() {
        let mut h = TripleHistogram::new();
        add(&mut h, "SELECT ?x WHERE { ?x a <http://C> }");
        add(
            &mut h,
            "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y }",
        );
        add(&mut h, "ASK { <http://s> <http://p> <http://o> }");
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert!((h.average_triples() - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(h.max_triples, 2);
    }

    #[test]
    fn describe_and_construct_do_not_enter_buckets() {
        let mut h = TripleHistogram::new();
        add(&mut h, "DESCRIBE <http://r>");
        add(
            &mut h,
            "CONSTRUCT { ?x a <http://D> } WHERE { ?x a <http://C> }",
        );
        add(&mut h, "SELECT ?x WHERE { ?x a <http://C> }");
        assert_eq!(h.all_queries, 3);
        assert_eq!(h.select_ask_queries, 1);
        assert!((h.select_ask_share() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn eleven_plus_bucket() {
        let mut h = TripleHistogram::new();
        let triples: Vec<String> = (0..15)
            .map(|i| format!("?x{} <http://p{}> ?x{}", i, i, i + 1))
            .collect();
        let q = format!("SELECT * WHERE {{ {} }}", triples.join(" . "));
        add(&mut h, &q);
        assert_eq!(h.eleven_plus, 1);
        assert_eq!(h.max_triples, 15);
        assert!((h.cumulative_share_at_most(20) - 1.0).abs() < 1e-9);
        assert_eq!(h.cumulative_share_at_most(10), 0.0);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut h = TripleHistogram::new();
        add(&mut h, "SELECT ?x WHERE { ?x a <http://C> }");
        add(
            &mut h,
            "ASK { ?x a <http://C> . ?x <http://p> ?y . ?y <http://q> ?z }",
        );
        let s: f64 = h.shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(h.shares().len(), EXPLICIT_BUCKETS + 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = TripleHistogram::new();
        add(&mut a, "SELECT ?x WHERE { ?x a <http://C> }");
        let mut b = TripleHistogram::new();
        add(&mut b, "ASK { ?x a <http://C> . ?x <http://p> ?y }");
        a.merge(&b);
        assert_eq!(a.select_ask_queries, 2);
        assert_eq!(a.buckets[1], 1);
        assert_eq!(a.buckets[2], 1);
    }
}
