//! # sparqlog-algebra
//!
//! Shallow syntactic analysis and query-fragment classification for SPARQL
//! query logs, implementing Sections 4 and 5 of *"An Analytical Study of
//! Large SPARQL Query Logs"* (Bonifati–Martens–Timm, VLDB 2017):
//!
//! * [`features`] — per-query feature extraction ([`QueryFeatures`]).
//! * [`keywords`] — keyword census (Table 2 / Table 7).
//! * [`triples`] — triples-per-query histograms (Figure 1 / Figure 8).
//! * [`opsets`] — operator-set classification and CPF roll-ups (Table 3 / 8).
//! * [`projection`] — projection usage per SPARQL 1.1 §18.2.1 (Section 4.4).
//! * [`fragments`] — CQ / CPF / CQF / AOF / well-designed / CQOF membership.
//! * [`pattern_tree`] — well-designed pattern trees and interface width.
//! * [`walk`] — the shared structural walker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod fragments;
pub mod keywords;
pub mod opsets;
pub mod pattern_tree;
pub mod projection;
pub mod triples;
pub mod walk;

pub use features::{AggregateUse, QueryFeatures};
pub use fragments::{
    classify_fragments, classify_fragments_from_walk, classify_fragments_from_walk_ref,
    CqLikeClass, FragmentReport, FragmentTally,
};
pub use keywords::KeywordTally;
pub use opsets::{classify_opset, OpSetClass, OpSetTally, OperatorSet};
pub use pattern_tree::{PatternNode, PatternTree};
pub use projection::{
    projection_use, projection_use_from_walk, projection_use_from_walk_ref, ProjectionTally,
    ProjectionUse,
};
pub use triples::TripleHistogram;
pub use walk::{collect_property_paths, collect_triple_patterns, BodyOps, QueryWalk, QueryWalkRef};
