//! The shard worker: runs the fused single-pass engine
//! ([`analyze_streams_with`]) over its assigned partition of logs and writes
//! a framed binary snapshot (see [`crate::codec`] / [`crate::snapshot`]) to
//! a byte sink — in production, its stdout, consumed by the
//! [coordinator](crate::coordinator).
//!
//! The worker is a *mode*, not a policy: it analyses exactly the
//! `(index, label, path)` triples it is told to, with the population and
//! thread count it is told to use, and reports one [`LogFrame`] per log plus
//! an [`EpilogueFrame`] of counters. All partitioning decisions live in the
//! coordinator.
//!
//! # Command line
//!
//! ```text
//! --shard <index>                      this worker's shard number (errors/logging)
//! --population <unique|valid>          which population to fold
//! --workers <n>                        fused-engine threads (0 = default)
//! --log <index> <label> <path>         one assigned log (repeated)
//! ```
//!
//! # Fault injection (tests only)
//!
//! When `SPARQLOG_SHARD_FAULT` is set (optionally scoped to one shard with
//! `SPARQLOG_SHARD_FAULT_SHARD=<index>`), the worker deliberately misbehaves
//! so coordinator fault paths can be exercised end-to-end over real process
//! boundaries: `die` (exit 3 before writing), `wrong-version` (bogus version
//! byte), `truncate` (frame cut mid-payload), `abort-mid-stream` (abort the
//! process after the first complete frame — a worker killed mid-write),
//! `stderr-flood` (several pipe buffers of stderr before any stdout — the
//! coordinator must drain it concurrently or deadlock; the run then
//! completes normally).

use crate::codec::write_stream_header;
use crate::snapshot::{EpilogueFrame, Frame, LogFrame};
use sparqlog_core::analysis::Population;
use sparqlog_core::corpus::{analyze_streams_with, FileLogReader, FusedOptions, LogReader};
use std::io::{self, Write};
use std::path::PathBuf;

/// One log assigned to this worker: its index in the coordinator's corpus
/// order, its dataset label, and the file to stream it from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignedLog {
    /// Index in the coordinator's input order (echoed back in the frame).
    pub index: u64,
    /// The dataset label.
    pub label: String,
    /// Path of the log file (one entry per line).
    pub path: PathBuf,
}

/// A parsed worker invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerConfig {
    /// This worker's shard number (used in error messages).
    pub shard: usize,
    /// The population to fold.
    pub population: Population,
    /// Fused-engine worker threads (0 = `default_workers()`).
    pub workers: usize,
    /// The assigned logs, in coordinator order.
    pub logs: Vec<AssignedLog>,
}

/// Parses the worker command line (everything after the program name).
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<WorkerConfig, String> {
    let mut args = args.into_iter();
    let mut config = WorkerConfig {
        shard: 0,
        population: Population::Unique,
        workers: 0,
        logs: Vec::new(),
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--shard" => {
                let value = args.next().ok_or("--shard needs a value")?;
                config.shard = value
                    .parse()
                    .map_err(|_| format!("invalid --shard value {value:?}"))?;
            }
            "--population" => {
                let value = args.next().ok_or("--population needs a value")?;
                config.population = match value.as_str() {
                    "unique" => Population::Unique,
                    "valid" => Population::Valid,
                    other => return Err(format!("unknown population {other:?}")),
                };
            }
            "--workers" => {
                let value = args.next().ok_or("--workers needs a value")?;
                config.workers = value
                    .parse()
                    .map_err(|_| format!("invalid --workers value {value:?}"))?;
            }
            "--log" => {
                let index = args.next().ok_or("--log needs <index> <label> <path>")?;
                let label = args.next().ok_or("--log needs <index> <label> <path>")?;
                let path = args.next().ok_or("--log needs <index> <label> <path>")?;
                config.logs.push(AssignedLog {
                    index: index
                        .parse()
                        .map_err(|_| format!("invalid --log index {index:?}"))?,
                    label,
                    path: PathBuf::from(path),
                });
            }
            other => return Err(format!("unknown worker flag {other:?}")),
        }
    }
    if config.logs.is_empty() {
        return Err("a worker needs at least one --log assignment".to_string());
    }
    Ok(config)
}

/// The injectable faults (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Die,
    WrongVersion,
    Truncate,
    AbortMidStream,
    StderrFlood,
}

/// The fault requested for this shard via the environment, if any.
fn injected_fault(shard: usize) -> Option<Fault> {
    let fault = std::env::var("SPARQLOG_SHARD_FAULT").ok()?;
    if let Ok(scoped) = std::env::var("SPARQLOG_SHARD_FAULT_SHARD") {
        if scoped.trim().parse::<usize>() != Ok(shard) {
            return None;
        }
    }
    match fault.trim() {
        "die" => Some(Fault::Die),
        "wrong-version" => Some(Fault::WrongVersion),
        "truncate" => Some(Fault::Truncate),
        "abort-mid-stream" => Some(Fault::AbortMidStream),
        "stderr-flood" => Some(Fault::StderrFlood),
        _ => None,
    }
}

/// Analyses the assigned logs and writes the framed snapshot to `out`.
///
/// The per-log [`DatasetAnalysis`](sparqlog_core::analysis::DatasetAnalysis)
/// records are exactly what the single-process fused engine would compute
/// for these logs — per-dataset folds never depend on which other logs share
/// the run — which is what makes the coordinator's merged report
/// byte-identical to the unsharded one.
pub fn run(config: &WorkerConfig, out: &mut impl Write) -> io::Result<()> {
    let fault = injected_fault(config.shard);
    if fault == Some(Fault::Die) {
        eprintln!("injected fault: die (shard {})", config.shard);
        std::process::exit(3);
    }
    if fault == Some(Fault::WrongVersion) {
        out.write_all(&crate::codec::MAGIC)?;
        out.write_all(&[crate::codec::VERSION.wrapping_add(1)])?;
        out.flush()?;
        return Ok(());
    }
    if fault == Some(Fault::Truncate) {
        write_stream_header(out)?;
        // Declare a 64-byte frame but deliver only 10 bytes of it.
        out.write_all(&[64])?;
        out.write_all(&[0u8; 10])?;
        out.flush()?;
        return Ok(());
    }
    if fault == Some(Fault::StderrFlood) {
        // Several pipe buffers of diagnostics *before* any stdout is
        // written: without a concurrent stderr drain, the coordinator
        // (blocked reading stdout) and this worker (blocked writing
        // stderr) would deadlock. The run then proceeds normally.
        let line = "injected fault: stderr-flood padding line\n".repeat(64);
        let stderr = io::stderr();
        let mut handle = stderr.lock();
        for _ in 0..128 {
            handle.write_all(line.as_bytes())?;
        }
        handle.flush()?;
    }

    let readers: Vec<Box<dyn LogReader>> = config
        .logs
        .iter()
        .map(|log| {
            FileLogReader::open(log.label.clone(), &log.path)
                .map(|reader| Box::new(reader) as Box<dyn LogReader>)
        })
        .collect::<io::Result<_>>()?;
    let fused = analyze_streams_with(
        readers,
        config.population,
        FusedOptions {
            workers: config.workers,
            batch: 0,
        },
    )?;

    write_stream_header(out)?;
    let frames = config
        .logs
        .iter()
        .zip(fused.summaries)
        .zip(fused.corpus.datasets);
    let mut written = 0u64;
    for ((assigned, summary), analysis) in frames {
        Frame::from(LogFrame {
            index: assigned.index,
            summary,
            analysis,
        })
        .write_to(out)?;
        written += 1;
        if fault == Some(Fault::AbortMidStream) {
            // Simulate a worker killed mid-stream: the first frame reaches
            // the pipe, then the process dies abruptly — no epilogue, no
            // clean exit status.
            out.flush()?;
            eprintln!("injected fault: abort-mid-stream (shard {})", config.shard);
            std::process::abort();
        }
    }
    Frame::Epilogue(EpilogueFrame {
        log_frames: written,
        cache: fused.stats.cache.unwrap_or_default(),
        fused: fused.fused,
    })
    .write_to(out)?;
    out.flush()
}

/// The worker binary's entry point: parses `args`, streams the snapshot to
/// stdout, and maps failures to exit codes (2 = bad usage, 1 = runtime
/// error). Usage and runtime errors go to stderr, where the coordinator
/// captures them for its structured shard errors.
pub fn run_cli(args: impl IntoIterator<Item = String>) -> i32 {
    let config = match parse_args(args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("sparqlog-shard-worker: {message}");
            return 2;
        }
    };
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    match run(&config, &mut out) {
        Ok(()) => 0,
        Err(error) => {
            eprintln!("sparqlog-shard-worker: shard {}: {error}", config.shard);
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::read_snapshot;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_reads_every_flag() {
        let config = parse_args(args(&[
            "--shard",
            "2",
            "--population",
            "valid",
            "--workers",
            "4",
            "--log",
            "0",
            "DBpedia15",
            "/tmp/a.log",
            "--log",
            "3",
            "label with spaces",
            "/tmp/b.log",
        ]))
        .unwrap();
        assert_eq!(config.shard, 2);
        assert_eq!(config.population, Population::Valid);
        assert_eq!(config.workers, 4);
        assert_eq!(config.logs.len(), 2);
        assert_eq!(config.logs[1].index, 3);
        assert_eq!(config.logs[1].label, "label with spaces");
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(args(&[])).is_err()); // no logs
        assert!(parse_args(args(&["--population", "everything"])).is_err());
        assert!(parse_args(args(&["--log", "0", "l"])).is_err()); // missing path
        assert!(parse_args(args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn worker_streams_a_decodable_snapshot() {
        let dir = std::env::temp_dir().join(format!("sparqlog-worker-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.txt");
        let mut file = std::fs::File::create(&path).unwrap();
        writeln!(file, "SELECT ?x WHERE {{ ?x a <http://C> }}").unwrap();
        writeln!(file, "SELECT  ?x WHERE {{ ?x a <http://C> }}").unwrap();
        writeln!(file, "ASK {{ ?a <http://p> ?b }}").unwrap();
        writeln!(file, "not sparql").unwrap();
        drop(file);

        let config = WorkerConfig {
            shard: 0,
            population: Population::Valid,
            workers: 1,
            logs: vec![AssignedLog {
                index: 7,
                label: "unit".to_string(),
                path: path.clone(),
            }],
        };
        let mut stream = Vec::new();
        run(&config, &mut stream).unwrap();
        let (snapshot, bytes) = read_snapshot(stream.as_slice()).unwrap();
        assert_eq!(bytes, stream.len() as u64);
        assert_eq!(snapshot.logs.len(), 1);
        let frame = &snapshot.logs[0];
        assert_eq!(frame.index, 7);
        assert_eq!(frame.summary.label, "unit");
        assert_eq!(frame.summary.counts.total, 4);
        assert_eq!(frame.summary.counts.valid, 3);
        assert_eq!(frame.summary.counts.unique, 2);
        assert_eq!(snapshot.epilogue.log_frames, 1);
        assert_eq!(snapshot.epilogue.cache.distinct, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
