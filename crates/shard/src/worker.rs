//! The shard worker: runs the fused single-pass engine
//! ([`analyze_streams_with`]) over its assigned partition of logs and writes
//! a framed binary snapshot (see [`crate::codec`] / [`crate::snapshot`]) to
//! a byte sink — in production, its stdout, consumed by the
//! [coordinator](crate::coordinator) or the `sparqlog-serve` supervisor.
//!
//! The worker is a *mode*, not a policy: it analyses exactly the
//! `(index, label, path)` triples it is told to, with the population and
//! thread count it is told to use, and reports one [`LogFrame`] per log plus
//! an [`EpilogueFrame`] of counters. All partitioning decisions live in the
//! coordinator.
//!
//! Log and epilogue frames go out **checksummed**
//! ([`Frame::write_checked_to`]): each is followed by a CRC32C frame over
//! its payload, so a consumer catches in-flight corruption at the exact
//! frame that broke instead of failing later inside an unrelated field
//! decode. Heartbeats are two-byte liveness ticks and stay unchecked.
//!
//! # Command line
//!
//! ```text
//! --shard <index>                      this worker's shard number (errors/logging)
//! --population <unique|valid>          which population to fold
//! --workers <n>                        fused-engine threads (0 = default)
//! --heartbeat-ms <n>                   liveness heartbeat period (0/absent = off)
//! --recovery <strict|lenient|budget:n> malformed-entry policy (default: env/strict)
//! --log <index> <label> <path>         one assigned log (repeated)
//! ```
//!
//! A budgeted policy streams *leniently* inside the worker: the budget is a
//! whole-run rate, so only the coordinator — which sees the merged tallies —
//! can meter it. The worker's job is to tally defects and keep going.
//!
//! # Liveness
//!
//! With `--heartbeat-ms` set, the stream header is written (and flushed)
//! *before* analysis starts, and a side thread interleaves
//! [`Frame::Heartbeat`] frames into the output while the analysis runs, so
//! a supervisor watching the pipe can distinguish a slow worker from a
//! wedged one. The heartbeat thread is stopped **while the writer lock is
//! still held** after the epilogue — a beat after the epilogue would be a
//! `TrailingFrame` to the decoder.
//!
//! # Fault injection (tests only)
//!
//! All fault-injection behaviour is defined by [`crate::faults`] — one
//! documented module for the env knobs (`SPARQLOG_SHARD_FAULT`, shard
//! scoping, once-only flag files, stall/delay durations) so the worker, the
//! coordinator tests and the CI fault matrix cannot drift apart.

use crate::codec::write_stream_header;
use crate::faults::{self, FaultMode};
use crate::snapshot::{EpilogueFrame, Frame, HeartbeatFrame, LogFrame};
use sparqlog_core::analysis::Population;
use sparqlog_core::corpus::{analyze_streams_with, FileLogReader, FusedOptions, LogReader};
use sparqlog_core::RecoveryPolicy;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One log assigned to this worker: its index in the coordinator's corpus
/// order, its dataset label, and the file to stream it from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignedLog {
    /// Index in the coordinator's input order (echoed back in the frame).
    pub index: u64,
    /// The dataset label.
    pub label: String,
    /// Path of the log file (one entry per line).
    pub path: PathBuf,
}

/// A parsed worker invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerConfig {
    /// This worker's shard number (used in error messages).
    pub shard: usize,
    /// The population to fold.
    pub population: Population,
    /// Fused-engine worker threads (0 = `default_workers()`).
    pub workers: usize,
    /// Liveness heartbeat period (`--heartbeat-ms`; `None` = no heartbeats).
    pub heartbeat: Option<Duration>,
    /// The malformed-entry recovery policy (`--recovery`); a budgeted
    /// policy runs leniently here and is metered by the coordinator.
    pub recovery: RecoveryPolicy,
    /// The assigned logs, in coordinator order.
    pub logs: Vec<AssignedLog>,
}

/// Parses the worker command line (everything after the program name).
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<WorkerConfig, String> {
    let mut args = args.into_iter();
    let mut config = WorkerConfig {
        shard: 0,
        population: Population::Unique,
        workers: 0,
        heartbeat: None,
        recovery: RecoveryPolicy::Auto,
        logs: Vec::new(),
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--shard" => {
                let value = args.next().ok_or("--shard needs a value")?;
                config.shard = value
                    .parse()
                    .map_err(|_| format!("invalid --shard value {value:?}"))?;
            }
            "--population" => {
                let value = args.next().ok_or("--population needs a value")?;
                config.population = match value.as_str() {
                    "unique" => Population::Unique,
                    "valid" => Population::Valid,
                    other => return Err(format!("unknown population {other:?}")),
                };
            }
            "--workers" => {
                let value = args.next().ok_or("--workers needs a value")?;
                config.workers = value
                    .parse()
                    .map_err(|_| format!("invalid --workers value {value:?}"))?;
            }
            "--heartbeat-ms" => {
                let value = args.next().ok_or("--heartbeat-ms needs a value")?;
                let millis: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --heartbeat-ms value {value:?}"))?;
                config.heartbeat = (millis > 0).then(|| Duration::from_millis(millis));
            }
            "--recovery" => {
                let value = args.next().ok_or("--recovery needs a value")?;
                config.recovery = RecoveryPolicy::parse(&value)
                    .ok_or_else(|| format!("invalid --recovery value {value:?}"))?;
            }
            "--log" => {
                let index = args.next().ok_or("--log needs <index> <label> <path>")?;
                let label = args.next().ok_or("--log needs <index> <label> <path>")?;
                let path = args.next().ok_or("--log needs <index> <label> <path>")?;
                config.logs.push(AssignedLog {
                    index: index
                        .parse()
                        .map_err(|_| format!("invalid --log index {index:?}"))?,
                    label,
                    path: PathBuf::from(path),
                });
            }
            other => return Err(format!("unknown worker flag {other:?}")),
        }
    }
    if config.logs.is_empty() {
        return Err("a worker needs at least one --log assignment".to_string());
    }
    Ok(config)
}

/// Analyses the assigned logs and writes the framed snapshot to `out`.
///
/// The per-log [`DatasetAnalysis`](sparqlog_core::analysis::DatasetAnalysis)
/// records are exactly what the single-process fused engine would compute
/// for these logs — per-dataset folds never depend on which other logs share
/// the run — which is what makes the coordinator's merged report
/// byte-identical to the unsharded one.
///
/// The writer must be `Send`: with a heartbeat period configured, a scoped
/// side thread shares it (behind a mutex) to interleave liveness frames.
pub fn run(config: &WorkerConfig, out: &mut (impl Write + Send)) -> io::Result<()> {
    let fault = faults::injected(config.shard);
    match fault {
        Some(FaultMode::Die) => {
            eprintln!("injected fault: die (shard {})", config.shard);
            std::process::exit(3);
        }
        Some(FaultMode::WrongVersion) => {
            out.write_all(&crate::codec::MAGIC)?;
            out.write_all(&[crate::codec::VERSION.wrapping_add(1)])?;
            return out.flush();
        }
        Some(FaultMode::Truncate) => {
            write_stream_header(out)?;
            // Declare a 64-byte frame but deliver only 10 bytes of it.
            out.write_all(&[64])?;
            out.write_all(&[0u8; 10])?;
            return out.flush();
        }
        Some(FaultMode::StderrFlood) => {
            // Several pipe buffers of diagnostics *before* any stdout is
            // written: without a concurrent stderr drain, the coordinator
            // (blocked reading stdout) and this worker (blocked writing
            // stderr) would deadlock. The run then proceeds normally.
            let line = "injected fault: stderr-flood padding line\n".repeat(64);
            let stderr = io::stderr();
            let mut handle = stderr.lock();
            for _ in 0..128 {
                handle.write_all(line.as_bytes())?;
            }
            handle.flush()?;
        }
        _ => {}
    }

    let readers: Vec<Box<dyn LogReader>> = config
        .logs
        .iter()
        .map(|log| {
            FileLogReader::open(log.label.clone(), &log.path)
                .map(|reader| Box::new(reader) as Box<dyn LogReader>)
        })
        .collect::<io::Result<_>>()?;

    // The header goes out (and is flushed) before the analysis starts:
    // liveness observation begins the moment the worker is healthy, not
    // after its possibly-long first fold.
    write_stream_header(out)?;
    out.flush()?;

    if fault == Some(FaultMode::Stall) {
        // A wedged worker: header written, then nothing — no frames and no
        // heartbeats (the beat thread is not running yet). Only a
        // heartbeat/stall timeout can tell this apart from a slow analysis.
        eprintln!("injected fault: stall (shard {})", config.shard);
        std::thread::sleep(faults::stall_duration());
    }

    let stop = AtomicBool::new(false);
    let shared = Mutex::new(out);
    std::thread::scope(|scope| {
        if let Some(period) = config.heartbeat {
            let (shared, stop) = (&shared, &stop);
            scope.spawn(move || heartbeat_loop(period, shared, stop));
        }
        let result = stream_frames(config, fault, readers, &shared, &stop);
        // Error paths must release the heartbeat thread too.
        stop.store(true, Ordering::Release);
        result
    })
}

/// Interleaves heartbeat frames into the shared writer every `period` until
/// `stop` is set. Sleeps in short steps so shutdown is prompt, and re-checks
/// `stop` *after* taking the writer lock — the analysis thread sets it while
/// holding the lock after the epilogue, so no beat can trail the epilogue.
fn heartbeat_loop<W: Write>(period: Duration, shared: &Mutex<&mut W>, stop: &AtomicBool) {
    let mut seq = 0u64;
    loop {
        let mut slept = Duration::ZERO;
        while slept < period {
            if stop.load(Ordering::Acquire) {
                return;
            }
            let step = (period - slept).min(Duration::from_millis(20));
            std::thread::sleep(step);
            slept += step;
        }
        let Ok(mut guard) = shared.lock() else {
            return;
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        seq += 1;
        let beat = Frame::Heartbeat(HeartbeatFrame { seq });
        if beat
            .write_to(&mut **guard)
            .and_then(|()| guard.flush())
            .is_err()
        {
            // Broken pipe: the consumer is gone. The analysis thread will
            // hit the same error on its next frame; just stop beating.
            return;
        }
    }
}

/// The analysis half of [`run`]: folds the readers and streams log frames +
/// the epilogue through the shared writer.
fn stream_frames<W: Write>(
    config: &WorkerConfig,
    fault: Option<FaultMode>,
    readers: Vec<Box<dyn LogReader>>,
    shared: &Mutex<&mut W>,
    stop: &AtomicBool,
) -> io::Result<()> {
    if fault == Some(FaultMode::Delay) {
        // A slow-but-healthy worker: heartbeats keep flowing while this
        // thread sleeps, so a supervisor must NOT kill it.
        eprintln!("injected fault: delay (shard {})", config.shard);
        std::thread::sleep(faults::delay_duration());
    }
    // A budgeted run streams leniently in the worker: the budget is a
    // whole-run rate, enforced once by the coordinator over merged tallies.
    let recovery = match config.recovery.resolve() {
        RecoveryPolicy::ErrorBudget { .. } => RecoveryPolicy::Lenient,
        policy => policy,
    };
    let fused = analyze_streams_with(
        readers,
        config.population,
        FusedOptions {
            workers: config.workers,
            batch: 0,
            recovery,
        },
    )?;

    let frames = config
        .logs
        .iter()
        .zip(fused.summaries)
        .zip(fused.corpus.datasets);
    let mut written = 0u64;
    for ((assigned, summary), analysis) in frames {
        let mut guard = shared.lock().expect("writer lock");
        Frame::from(LogFrame {
            index: assigned.index,
            summary,
            analysis,
        })
        .write_checked_to(&mut **guard)?;
        written += 1;
        if fault == Some(FaultMode::AbortMidStream) {
            // Simulate a worker killed mid-stream: the first frame reaches
            // the pipe, then the process dies abruptly — no epilogue, no
            // clean exit status.
            guard.flush()?;
            eprintln!("injected fault: abort-mid-stream (shard {})", config.shard);
            std::process::abort();
        }
    }
    let mut guard = shared.lock().expect("writer lock");
    // Counted before the snapshot below so the shard layer shows up in the
    // registry this worker ships home.
    sparqlog_obs::global()
        .counter("shard_log_frames_streamed_total")
        .add(written);
    Frame::Epilogue(EpilogueFrame {
        log_frames: written,
        cache: fused.stats.cache.unwrap_or_default(),
        fused: fused.fused,
        // The worker's whole registry rides home in the epilogue: the
        // coordinator absorbs it, so per-stage pipeline latencies measured
        // in this process surface in the coordinator's (and daemon's)
        // metrics. Empty when SPARQLOG_METRICS=0.
        metrics: sparqlog_obs::global().snapshot(),
    })
    .write_checked_to(&mut **guard)?;
    // Stop the heartbeat thread while the writer is still held: it re-checks
    // the flag under this same lock, so no beat can follow the epilogue.
    stop.store(true, Ordering::Release);
    guard.flush()
}

/// The worker binary's entry point: parses `args`, streams the snapshot to
/// stdout, and maps failures to exit codes (2 = bad usage, 1 = runtime
/// error). Usage and runtime errors go to stderr, where the coordinator
/// captures them for its structured shard errors.
pub fn run_cli(args: impl IntoIterator<Item = String>) -> i32 {
    let config = match parse_args(args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("sparqlog-shard-worker: {message}");
            return 2;
        }
    };
    // `Stdout` (not `StdoutLock`) so the writer is `Send` for the heartbeat
    // thread; the BufWriter keeps per-write locking off the hot path.
    let mut out = io::BufWriter::new(io::stdout());
    match run(&config, &mut out) {
        Ok(()) => 0,
        Err(error) => {
            eprintln!("sparqlog-shard-worker: shard {}: {error}", config.shard);
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::read_snapshot;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_args_reads_every_flag() {
        let config = parse_args(args(&[
            "--shard",
            "2",
            "--population",
            "valid",
            "--workers",
            "4",
            "--heartbeat-ms",
            "250",
            "--recovery",
            "budget:5",
            "--log",
            "0",
            "DBpedia15",
            "/tmp/a.log",
            "--log",
            "3",
            "label with spaces",
            "/tmp/b.log",
        ]))
        .unwrap();
        assert_eq!(config.shard, 2);
        assert_eq!(config.population, Population::Valid);
        assert_eq!(config.workers, 4);
        assert_eq!(config.heartbeat, Some(Duration::from_millis(250)));
        assert_eq!(
            config.recovery,
            RecoveryPolicy::ErrorBudget { max_per_10k: 5 }
        );
        assert_eq!(config.logs.len(), 2);
        assert_eq!(config.logs[1].index, 3);
        assert_eq!(config.logs[1].label, "label with spaces");
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(args(&[])).is_err()); // no logs
        assert!(parse_args(args(&["--population", "everything"])).is_err());
        assert!(parse_args(args(&["--log", "0", "l"])).is_err()); // missing path
        assert!(parse_args(args(&["--frobnicate"])).is_err());
        assert!(parse_args(args(&["--heartbeat-ms", "soon"])).is_err());
        assert!(parse_args(args(&["--recovery", "yolo"])).is_err());
        // Zero disables heartbeats rather than erroring.
        let config = parse_args(args(&["--heartbeat-ms", "0", "--log", "0", "l", "/tmp/x"]));
        assert_eq!(config.unwrap().heartbeat, None);
    }

    fn sample_log(dir: &std::path::Path) -> PathBuf {
        let path = dir.join("log.txt");
        let mut file = std::fs::File::create(&path).unwrap();
        writeln!(file, "SELECT ?x WHERE {{ ?x a <http://C> }}").unwrap();
        writeln!(file, "SELECT  ?x WHERE {{ ?x a <http://C> }}").unwrap();
        writeln!(file, "ASK {{ ?a <http://p> ?b }}").unwrap();
        writeln!(file, "not sparql").unwrap();
        path
    }

    #[test]
    fn worker_streams_a_decodable_snapshot() {
        let dir = std::env::temp_dir().join(format!("sparqlog-worker-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample_log(&dir);

        let config = WorkerConfig {
            shard: 0,
            population: Population::Valid,
            workers: 1,
            heartbeat: None,
            recovery: RecoveryPolicy::Strict,
            logs: vec![AssignedLog {
                index: 7,
                label: "unit".to_string(),
                path: path.clone(),
            }],
        };
        let mut stream = Vec::new();
        run(&config, &mut stream).unwrap();
        let (snapshot, bytes) = read_snapshot(stream.as_slice()).unwrap();
        assert_eq!(bytes, stream.len() as u64);
        assert_eq!(snapshot.logs.len(), 1);
        let frame = &snapshot.logs[0];
        assert_eq!(frame.index, 7);
        assert_eq!(frame.summary.label, "unit");
        assert_eq!(frame.summary.counts.total, 4);
        assert_eq!(frame.summary.counts.valid, 3);
        assert_eq!(frame.summary.counts.unique, 2);
        assert_eq!(snapshot.epilogue.log_frames, 1);
        assert_eq!(snapshot.epilogue.cache.distinct, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeating_worker_still_streams_a_valid_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "sparqlog-worker-heartbeat-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample_log(&dir);

        // An aggressive 1 ms period: even if beats race the (fast) analysis,
        // the stream must stay decodable — no beat may trail the epilogue.
        let config = WorkerConfig {
            shard: 0,
            population: Population::Unique,
            workers: 1,
            heartbeat: Some(Duration::from_millis(1)),
            recovery: RecoveryPolicy::Strict,
            logs: vec![AssignedLog {
                index: 0,
                label: "unit".to_string(),
                path,
            }],
        };
        let mut stream = Vec::new();
        run(&config, &mut stream).unwrap();
        let (snapshot, bytes) = read_snapshot(stream.as_slice()).unwrap();
        assert_eq!(bytes, stream.len() as u64);
        assert_eq!(snapshot.logs.len(), 1);
        assert_eq!(snapshot.epilogue.log_frames, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
