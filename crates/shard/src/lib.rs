//! # sparqlog-shard
//!
//! Multi-process sharded corpus analysis: a dependency-free binary
//! **snapshot codec**, a **worker mode** that runs the fused single-pass
//! engine over a partition of logs and streams framed snapshots to stdout,
//! and a **coordinator** that spawns N worker processes, decodes their
//! snapshots and merges them commutatively into a [`CorpusAnalysis`] whose
//! rendered report is **byte-identical** to the single-process fused
//! engine's — at any shard count and any per-worker thread count.
//!
//! The merge layer was shard-ready by design — [`LogSummary`] merges by
//! fingerprint summation,
//! [`DatasetAnalysis::merge`](sparqlog_core::analysis::DatasetAnalysis::merge)
//! and
//! [`AnalysisCache::merge`](sparqlog_core::cache::AnalysisCache::merge) are
//! commutative — and this crate freezes those types into a wire format and
//! exercises them across a real process boundary:
//!
//! * [`codec`] — varint/length-prefixed framing with an explicit version
//!   byte and structured [`DecodeError`]s carrying the fault's byte offset.
//! * [`snapshot`] — [`Snapshot`] encode/decode for
//!   [`LogSummary`], [`CorpusCounts`](sparqlog_core::corpus::CorpusCounts),
//!   every tally behind
//!   [`DatasetAnalysis`](sparqlog_core::analysis::DatasetAnalysis),
//!   [`CacheStats`](sparqlog_core::cache::CacheStats), and the framed
//!   worker stream.
//! * [`worker`] — the worker mode behind the `sparqlog-shard-worker`
//!   binary, including optional liveness heartbeats (`--heartbeat-ms`).
//! * [`coordinator`] — partitioning, process spawning (plain
//!   `std::process`, piped stdio), structured per-shard errors, and the
//!   commutative merge.
//! * [`supervise`] — the reusable spawn/decode/diagnose layer shared by the
//!   batch coordinator and the long-running `sparqlog-serve` daemon:
//!   [`WorkerLaunch`] → [`WorkerHandle`] with per-frame liveness tracking
//!   and stall detection.
//! * [`faults`] — the consolidated (test-only) fault-injection knobs.
//!
//! # Coordinator quickstart
//!
//! Analyse on-disk logs across 4 worker processes (the worker binary ships
//! with the umbrella crate — `cargo build -p sparqlog` — and is found next
//! to the current executable, or via `SPARQLOG_SHARD_WORKER`):
//!
//! ```no_run
//! use sparqlog_shard::{analyze_sharded, LogSpec, ShardOptions, WorkerCommand};
//! use sparqlog_core::{report, Population};
//!
//! let logs = vec![
//!     LogSpec::new("DBpedia15", "logs/dbpedia15.log"),
//!     LogSpec::new("WikiData17", "logs/wikidata17.log"),
//! ];
//! let mut options = ShardOptions::new(WorkerCommand::resolve_default()?);
//! options.shards = 4; // 0 = SPARQLOG_SHARDS env, else available parallelism
//! let sharded = analyze_sharded(&logs, Population::Unique, &options)?;
//! // Byte-identical to the single-process fused engine over the same files.
//! println!("{}", report::table1(&sharded.corpus));
//! println!(
//!     "{} shards, {} snapshot bytes",
//!     sharded.shards(),
//!     sharded.snapshot_bytes()
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The codec itself needs no processes:
//!
//! ```
//! use sparqlog_core::corpus::{CorpusCounts, LogSummary};
//! use sparqlog_shard::snapshot::Snapshot;
//!
//! let summary = LogSummary {
//!     label: "example".to_string(),
//!     counts: CorpusCounts { total: 4, valid: 3, unique: 2, bodyless: 0 },
//!     occurrences: vec![(0x17, 2), (0x99, 1)],
//!     errors: Default::default(),
//! };
//! let decoded = LogSummary::from_bytes(&summary.to_bytes()).unwrap();
//! assert_eq!(decoded, summary);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod coordinator;
pub mod faults;
pub mod snapshot;
pub mod supervise;
pub mod worker;

pub use codec::{DecodeError, DecodeErrorKind, StreamError};
pub use coordinator::{
    analyze_sharded, analyze_sharded_all, default_shards, partition, LogSpec, ShardError,
    ShardFailure, ShardOptions, ShardRunStats, ShardedAnalysis, WorkerCommand,
};
pub use faults::FaultMode;
pub use snapshot::{
    read_snapshot, read_snapshot_observed, EpilogueFrame, Frame, HeartbeatFrame, LogFrame,
    Snapshot, WorkerSnapshot,
};
pub use supervise::{ActivityClock, WorkerHandle, WorkerLaunch, WorkerOutput};
pub use worker::{AssignedLog, WorkerConfig};

// Re-exported so downstream code and docs can name the merged result types
// without an extra import of the core crate.
pub use sparqlog_core::analysis::CorpusAnalysis;
pub use sparqlog_core::corpus::LogSummary;
