//! The shard coordinator: partitions a corpus across N worker *processes*,
//! decodes their framed snapshots, merges them commutatively, and produces a
//! [`CorpusAnalysis`] proven byte-identical to the single-process fused
//! engine's.
//!
//! # Partitioning and byte-identity
//!
//! Logs are assigned to shards **round-robin at log granularity** (shard `i`
//! of `n` gets logs `i, i + n, i + 2n, …`). A log never splits across
//! shards, because the *Unique* population folds each distinct fingerprint
//! once **per log** — a fingerprint straddling two shards of one log would
//! double-fold. At log granularity every per-log [`DatasetAnalysis`] a
//! worker computes is exactly what the unsharded fused engine computes for
//! that log (per-dataset folds never read other logs), so reassembling the
//! datasets in input order and re-merging the "Total" row reproduces the
//! single-process report byte for byte, at any shard count and any
//! per-worker thread count. (Summaries of a log *split* across processes
//! can still be combined with [`LogSummary::merge`] — the wire format
//! supports it — but the report path deliberately never needs to.)
//!
//! # Fault model
//!
//! Every failure is a structured [`ShardError`] naming the shard: spawn
//! failures, workers that exit early or abnormally (non-zero status or
//! killed mid-stream — their captured stderr rides along), truncated
//! frames, codec version mismatches, and snapshots whose log set disagrees
//! with the assignment. The coordinator never hangs on a dead worker: a
//! dying process closes its stdout pipe, the decoder sees EOF, and the exit
//! status is read with `wait` (no busy polling, no timeouts needed).

use crate::codec::DecodeError;
use crate::snapshot::WorkerSnapshot;
use crate::supervise::WorkerLaunch;
use crate::worker::AssignedLog;
use sparqlog_core::analysis::{CorpusAnalysis, DatasetAnalysis, Population};
use sparqlog_core::cache::CacheStats;
use sparqlog_core::corpus::LogSummary;
use sparqlog_core::{BudgetExceeded, RecoveryPolicy};
use std::fmt;
use std::io;
use std::path::PathBuf;

/// One log of the corpus to analyse: a dataset label and the file holding
/// its entries (one per line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogSpec {
    /// The dataset label.
    pub label: String,
    /// Path of the log file.
    pub path: PathBuf,
}

impl LogSpec {
    /// Creates a log spec.
    pub fn new(label: impl Into<String>, path: impl Into<PathBuf>) -> LogSpec {
        LogSpec {
            label: label.into(),
            path: path.into(),
        }
    }
}

/// How to launch a worker process. The coordinator appends the per-shard
/// arguments (`--shard`, `--population`, `--workers`, `--log …`) after
/// `args`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCommand {
    /// The worker executable.
    pub program: PathBuf,
    /// Arguments placed before the coordinator's own.
    pub args: Vec<String>,
    /// Extra environment variables for the worker processes.
    pub envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A command for the given executable with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Adds an environment variable for the worker processes.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> WorkerCommand {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Resolves the worker binary the way the shipped tooling does: the
    /// `SPARQLOG_SHARD_WORKER` environment variable if set, otherwise the
    /// `sparqlog-shard-worker` binary next to the current executable (where
    /// Cargo puts workspace binaries built by the same profile).
    pub fn resolve_default() -> io::Result<WorkerCommand> {
        if let Ok(path) = std::env::var("SPARQLOG_SHARD_WORKER") {
            return Ok(WorkerCommand::new(path));
        }
        let exe = std::env::current_exe()?;
        let dir = exe.parent().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "current executable has no parent")
        })?;
        let name = format!("sparqlog-shard-worker{}", std::env::consts::EXE_SUFFIX);
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Ok(WorkerCommand::new(candidate));
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "worker binary {name} not found next to {} — build it with \
                 `cargo build -p sparqlog` or point SPARQLOG_SHARD_WORKER at it",
                exe.display()
            ),
        ))
    }
}

/// Tuning knobs of a sharded run. The report never depends on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOptions {
    /// Worker processes; `0` uses [`default_shards`] (which honours the
    /// `SPARQLOG_SHARDS` environment override).
    pub shards: usize,
    /// Fused-engine threads *per worker process* (passed as `--workers`).
    /// `0` divides the machine's parallelism across the spawned shards
    /// (N processes each defaulting to N threads would oversubscribe the
    /// host quadratically) — unless `SPARQLOG_WORKERS` is set, in which
    /// case the workers inherit it untouched.
    pub worker_threads: usize,
    /// How to launch workers.
    pub worker: WorkerCommand,
    /// The malformed-entry recovery policy, forwarded to every worker as
    /// `--recovery`. A budgeted policy runs the workers leniently; the
    /// budget itself is metered here, once, over the merged tallies.
    pub recovery: RecoveryPolicy,
}

impl ShardOptions {
    /// Options with the default shard count, worker threads and recovery.
    pub fn new(worker: WorkerCommand) -> ShardOptions {
        ShardOptions {
            shards: 0,
            worker_threads: 0,
            worker,
            recovery: RecoveryPolicy::Auto,
        }
    }
}

/// The shard count used when [`ShardOptions::shards`] is 0: the
/// `SPARQLOG_SHARDS` environment variable if set to a positive integer,
/// otherwise the available parallelism. The override exists so CI can pin
/// the process matrix (the same pattern as `SPARQLOG_WORKERS`).
pub fn default_shards() -> usize {
    if let Some(n) = std::env::var("SPARQLOG_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A failure of a sharded run. Every process-level variant names the shard.
#[derive(Debug)]
pub enum ShardError {
    /// The corpus was empty.
    NoLogs,
    /// Spawning a worker process failed.
    Spawn {
        /// The shard whose worker could not start.
        shard: usize,
        /// The spawn failure.
        error: io::Error,
    },
    /// Reading a worker's stdout failed at the transport level.
    Stream {
        /// The shard whose pipe failed.
        shard: usize,
        /// The I/O failure.
        error: io::Error,
    },
    /// A worker's snapshot did not decode: truncated frame, codec version
    /// mismatch, bad magic, invalid field, missing epilogue, …
    Decode {
        /// The shard whose snapshot was bad.
        shard: usize,
        /// The structured decode failure (with stream offset).
        error: DecodeError,
    },
    /// A worker exited with a non-zero status or was killed by a signal —
    /// including workers that died mid-stream.
    Worker {
        /// The shard whose worker failed.
        shard: usize,
        /// The exit code, if the process exited (None = killed by signal).
        code: Option<i32>,
        /// The worker's captured stderr (trimmed).
        stderr: String,
    },
    /// A worker kept its pipe open but produced no frame (log, epilogue or
    /// heartbeat) for longer than the supervisor's stall timeout, and was
    /// killed. Only raised when a stall timeout is configured
    /// ([`crate::supervise::WorkerHandle::join`]); the batch coordinator
    /// relies on pipe EOF alone.
    Stalled {
        /// The shard whose worker wedged.
        shard: usize,
        /// How long the pipe had been silent when the worker was killed.
        waited_ms: u64,
    },
    /// A worker reported a log index outside the corpus.
    UnknownLog {
        /// The reporting shard.
        shard: usize,
        /// The out-of-range index.
        index: u64,
    },
    /// Two frames claimed the same log.
    DuplicateLog {
        /// The shard whose frame collided.
        shard: usize,
        /// The index reported twice.
        index: u64,
    },
    /// No shard reported this log.
    MissingLog {
        /// The index never reported.
        index: usize,
        /// Its label.
        label: String,
    },
    /// The merged end-of-run defect rate exceeded the configured error
    /// budget ([`ShardOptions::recovery`]). Carries the structured failure
    /// with the merged tally preserved for postmortems.
    Budget {
        /// The budget failure.
        error: BudgetExceeded,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoLogs => write!(f, "no logs to analyse"),
            ShardError::Spawn { shard, error } => {
                write!(f, "shard {shard}: failed to spawn worker: {error}")
            }
            ShardError::Stream { shard, error } => {
                write!(f, "shard {shard}: failed to read worker snapshot: {error}")
            }
            ShardError::Decode { shard, error } => {
                write!(f, "shard {shard}: snapshot decode failed: {error}")
            }
            ShardError::Worker {
                shard,
                code,
                stderr,
            } => {
                match code {
                    Some(code) => write!(f, "shard {shard}: worker exited with status {code}")?,
                    None => write!(f, "shard {shard}: worker was killed before finishing")?,
                }
                if !stderr.is_empty() {
                    write!(f, "; stderr: {stderr}")?;
                }
                Ok(())
            }
            ShardError::Stalled { shard, waited_ms } => {
                write!(
                    f,
                    "shard {shard}: worker stalled ({waited_ms} ms without a frame) and was killed"
                )
            }
            ShardError::UnknownLog { shard, index } => {
                write!(
                    f,
                    "shard {shard}: snapshot reported unknown log index {index}"
                )
            }
            ShardError::DuplicateLog { shard, index } => {
                write!(
                    f,
                    "shard {shard}: snapshot reported log index {index} twice"
                )
            }
            ShardError::MissingLog { index, label } => {
                write!(f, "no shard reported log {index} ({label})")
            }
            ShardError::Budget { error } => write!(f, "{error}"),
        }
    }
}

impl ShardError {
    /// The shard this error names, if any (corpus-level failures like
    /// [`ShardError::NoLogs`] and [`ShardError::MissingLog`] name none).
    pub fn shard(&self) -> Option<usize> {
        match self {
            ShardError::NoLogs | ShardError::MissingLog { .. } | ShardError::Budget { .. } => None,
            ShardError::Spawn { shard, .. }
            | ShardError::Stream { shard, .. }
            | ShardError::Decode { shard, .. }
            | ShardError::Worker { shard, .. }
            | ShardError::Stalled { shard, .. }
            | ShardError::UnknownLog { shard, .. }
            | ShardError::DuplicateLog { shard, .. } => Some(*shard),
        }
    }
}

impl std::error::Error for ShardError {}

/// The collected failure of [`analyze_sharded_all`]: every shard error the
/// run produced, in shard order, instead of only the first. Always holds at
/// least one error.
#[derive(Debug)]
pub struct ShardFailure {
    /// The per-shard (and corpus-level) errors, in shard order.
    pub errors: Vec<ShardError>,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.errors.len() {
            0 => write!(f, "sharded run failed with no recorded error"),
            1 => write!(f, "{}", self.errors[0]),
            n => {
                write!(f, "{n} failures:")?;
                for error in &self.errors {
                    write!(f, "\n  - {error}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ShardFailure {}

impl From<ShardError> for ShardFailure {
    fn from(error: ShardError) -> ShardFailure {
        ShardFailure {
            errors: vec![error],
        }
    }
}

/// Per-shard observability of a sharded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunStats {
    /// The shard number.
    pub shard: usize,
    /// Logs this shard analysed.
    pub logs: usize,
    /// Size of the decoded snapshot in bytes (header + frames).
    pub snapshot_bytes: u64,
}

/// The result of a sharded run: per-log summaries and the corpus analysis
/// in the original input order (byte-identical to the single-process fused
/// engine's), plus merged cache counters and per-shard snapshot stats.
#[derive(Debug, Clone)]
pub struct ShardedAnalysis {
    /// Per-log summaries, in input order.
    pub summaries: Vec<LogSummary>,
    /// The corpus analysis (datasets in input order + the "Total" row).
    pub corpus: CorpusAnalysis,
    /// The workers' cache counters, summed. `distinct` is summed across
    /// per-process caches, so canonical forms shared between shards count
    /// once per shard — an upper bound on the corpus-wide distinct count.
    pub cache: CacheStats,
    /// Per-shard run stats, one entry per spawned worker.
    pub shard_stats: Vec<ShardRunStats>,
}

impl ShardedAnalysis {
    /// Worker processes that ran.
    pub fn shards(&self) -> usize {
        self.shard_stats.len()
    }

    /// Total snapshot bytes decoded across all shards.
    pub fn snapshot_bytes(&self) -> u64 {
        self.shard_stats.iter().map(|s| s.snapshot_bytes).sum()
    }
}

/// Round-robin assignment of `log_count` logs to at most `shards` shards:
/// shard `i` gets logs `i, i + n, i + 2n, …`. Returns only non-empty
/// assignments (at most `min(shards, log_count)` of them), each sorted
/// ascending.
pub fn partition(log_count: usize, shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.clamp(1, log_count.max(1));
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for index in 0..log_count {
        assignments[index % shards].push(index);
    }
    assignments.retain(|a| !a.is_empty());
    assignments
}

/// One worker's decoded output.
struct ShardOutput {
    snapshot: WorkerSnapshot,
    bytes: u64,
}

/// Spawns the worker for one shard via the shared supervision layer
/// ([`crate::supervise`]), streams its snapshot, and turns every failure
/// into a [`ShardError`] naming the shard. The batch path runs without
/// heartbeats or stall timeouts: a dead worker always closes its pipe, and
/// a batch run has no other clients to protect from a slow shard.
fn run_shard(
    shard: usize,
    spawned_shards: usize,
    assignment: &[usize],
    logs: &[LogSpec],
    population: Population,
    options: &ShardOptions,
) -> Result<ShardOutput, ShardError> {
    let launch = WorkerLaunch {
        command: options.worker.clone(),
        shard,
        population,
        worker_threads: worker_thread_budget(options.worker_threads, spawned_shards),
        heartbeat: None,
        recovery: options.recovery,
        logs: assignment
            .iter()
            .map(|&index| AssignedLog {
                index: index as u64,
                label: logs[index].label.clone(),
                path: logs[index].path.clone(),
            })
            .collect(),
    };
    let output = launch.spawn()?.join(None)?;
    Ok(ShardOutput {
        snapshot: output.snapshot,
        bytes: output.bytes,
    })
}

/// The `--workers` value to pass a worker process, if any: an explicit
/// `worker_threads` wins; otherwise, unless the user took control of the
/// worker pools via `SPARQLOG_WORKERS` (which the workers inherit), the
/// machine's parallelism is divided across the spawned shards — N worker
/// processes each defaulting to N threads would oversubscribe the host
/// quadratically.
fn worker_thread_budget(worker_threads: usize, spawned_shards: usize) -> Option<usize> {
    if worker_threads > 0 {
        return Some(worker_threads);
    }
    if std::env::var_os("SPARQLOG_WORKERS").is_some() {
        return None;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Some((cores / spawned_shards.max(1)).max(1))
}

/// Analyses a corpus of on-disk logs across worker processes and merges the
/// result (see the [module docs](self) for the partitioning argument).
///
/// The report rendered from the returned [`CorpusAnalysis`] is
/// byte-identical to running the fused single-process engine over the same
/// files — `tests/shard.rs` and the `ablation_shard` harness prove it
/// across shard counts and worker matrices.
pub fn analyze_sharded(
    logs: &[LogSpec],
    population: Population,
    options: &ShardOptions,
) -> Result<ShardedAnalysis, ShardError> {
    analyze_sharded_all(logs, population, options).map_err(|mut failure| {
        // The errors are in shard order, so "first" is deterministic.
        failure.errors.remove(0)
    })
}

/// [`analyze_sharded`], but a partial failure reports **every** failing
/// shard (in shard order) instead of only the first — the shape the
/// `sparqlog-shard` CLI renders as a per-shard error table and the CI fault
/// jobs assert on.
pub fn analyze_sharded_all(
    logs: &[LogSpec],
    population: Population,
    options: &ShardOptions,
) -> Result<ShardedAnalysis, ShardFailure> {
    if logs.is_empty() {
        return Err(ShardError::NoLogs.into());
    }
    let shards = if options.shards > 0 {
        options.shards
    } else {
        default_shards()
    };
    let assignments = partition(logs.len(), shards);
    let spawned_shards = assignments.len();

    // One decoding thread per worker process; results keep shard order so
    // the first failing shard is reported deterministically.
    let results: Vec<Result<ShardOutput, ShardError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .enumerate()
            .map(|(shard, assignment)| {
                scope.spawn(move || {
                    run_shard(shard, spawned_shards, assignment, logs, population, options)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard threads must not panic"))
            .collect()
    });

    let mut outputs = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for result in results {
        match result {
            Ok(output) => outputs.push(output),
            Err(error) => errors.push(error),
        }
    }
    if !errors.is_empty() {
        return Err(ShardFailure { errors });
    }

    // Reassemble the corpus in input order.
    let mut slots: Vec<Option<(LogSummary, DatasetAnalysis)>> =
        (0..logs.len()).map(|_| None).collect();
    let mut cache = CacheStats::default();
    let mut shard_stats = Vec::with_capacity(outputs.len());
    let registry = sparqlog_obs::global();
    for (shard, output) in outputs.into_iter().enumerate() {
        cache.hits += output.snapshot.epilogue.cache.hits;
        cache.misses += output.snapshot.epilogue.cache.misses;
        cache.distinct += output.snapshot.epilogue.cache.distinct;
        // Fold the worker process's metrics into this process's registry:
        // the per-stage pipeline latencies measured inside the worker
        // surface wherever the coordinator's snapshot is served from.
        registry.absorb(&output.snapshot.epilogue.metrics);
        if sparqlog_obs::enabled() {
            registry.counter("shard_workers_total").incr();
            registry
                .counter("shard_snapshot_bytes_total")
                .add(output.bytes);
            registry
                .counter("shard_log_frames_total")
                .add(output.snapshot.logs.len() as u64);
        }
        shard_stats.push(ShardRunStats {
            shard,
            logs: output.snapshot.logs.len(),
            snapshot_bytes: output.bytes,
        });
        for frame in output.snapshot.logs {
            let index = usize::try_from(frame.index)
                .ok()
                .filter(|&i| i < logs.len())
                .ok_or(ShardError::UnknownLog {
                    shard,
                    index: frame.index,
                })?;
            let slot = &mut slots[index];
            if slot.is_some() {
                return Err(ShardError::DuplicateLog {
                    shard,
                    index: frame.index,
                }
                .into());
            }
            *slot = Some((frame.summary, frame.analysis));
        }
    }

    let mut summaries = Vec::with_capacity(logs.len());
    let mut datasets = Vec::with_capacity(logs.len());
    for (index, slot) in slots.into_iter().enumerate() {
        let Some((summary, analysis)) = slot else {
            return Err(ShardError::MissingLog {
                index,
                label: logs[index].label.clone(),
            }
            .into());
        };
        summaries.push(summary);
        datasets.push(analysis);
    }

    // The deterministic tail of the single-process engine: merge the
    // per-dataset analyses (exact integer sums and maxima) into the "Total"
    // row, in input order.
    let mut combined = DatasetAnalysis {
        label: "Total".to_string(),
        ..DatasetAnalysis::default()
    };
    for dataset in &datasets {
        combined.merge(dataset);
    }
    let corpus = CorpusAnalysis { datasets, combined };
    // A budgeted policy is metered exactly once, here, over the merged
    // tallies — the workers streamed leniently, so every partition's
    // defects are present and the verdict matches the unsharded engines.
    if let Err(error) = corpus.enforce_budget(options.recovery) {
        let budget = error
            .get_ref()
            .and_then(|payload| payload.downcast_ref::<BudgetExceeded>())
            .cloned()
            .expect("enforce_budget fails only with a BudgetExceeded payload");
        return Err(ShardError::Budget { error: budget }.into());
    }
    Ok(ShardedAnalysis {
        summaries,
        corpus,
        cache,
        shard_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_round_robin_and_total() {
        assert_eq!(partition(5, 2), vec![vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(partition(3, 8), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(partition(4, 1), vec![vec![0, 1, 2, 3]]);
        assert_eq!(partition(0, 3), Vec::<Vec<usize>>::new());
        // Every log lands in exactly one shard.
        for (logs, shards) in [(13, 4), (7, 7), (20, 3)] {
            let assignments = partition(logs, shards);
            let mut seen: Vec<usize> = assignments.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..logs).collect::<Vec<_>>());
            assert!(assignments
                .iter()
                .all(|a| a.windows(2).all(|w| w[0] < w[1])));
        }
    }

    #[test]
    fn worker_thread_budget_divides_the_machine() {
        // Explicit thread counts always win.
        assert_eq!(worker_thread_budget(5, 4), Some(5));
        // With SPARQLOG_WORKERS unset (never set by the test harness), the
        // parallelism is divided across shards, never below one thread.
        if std::env::var_os("SPARQLOG_WORKERS").is_none() {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            assert_eq!(worker_thread_budget(0, 1), Some(cores));
            assert_eq!(worker_thread_budget(0, cores * 2), Some(1));
        }
    }

    #[test]
    fn empty_corpus_is_an_error() {
        let options = ShardOptions::new(WorkerCommand::new("/nonexistent"));
        let error = analyze_sharded(&[], Population::Unique, &options).unwrap_err();
        assert!(matches!(error, ShardError::NoLogs));
    }

    #[test]
    fn spawn_failure_names_the_shard() {
        let options = ShardOptions {
            shards: 1,
            worker_threads: 0,
            worker: WorkerCommand::new("/definitely/not/a/real/worker/binary"),
            recovery: RecoveryPolicy::Auto,
        };
        let logs = [LogSpec::new("x", "/tmp/does-not-matter.log")];
        let error = analyze_sharded(&logs, Population::Unique, &options).unwrap_err();
        let ShardError::Spawn { shard: 0, .. } = error else {
            panic!("expected a spawn error, got {error}");
        };
        assert!(format!("{error}").contains("shard 0"));
    }

    #[test]
    fn shard_error_messages_name_the_shard() {
        let samples: Vec<ShardError> = vec![
            ShardError::Decode {
                shard: 3,
                error: DecodeError {
                    kind: crate::codec::DecodeErrorKind::UnexpectedEof,
                    offset: 17,
                },
            },
            ShardError::Worker {
                shard: 5,
                code: None,
                stderr: "boom".to_string(),
            },
            ShardError::UnknownLog { shard: 2, index: 9 },
            ShardError::DuplicateLog { shard: 4, index: 1 },
        ];
        for (error, shard) in samples.iter().zip([3usize, 5, 2, 4]) {
            assert!(
                format!("{error}").contains(&format!("shard {shard}")),
                "{error}"
            );
        }
    }
}
