//! Test-only fault injection for worker processes, consolidated in one
//! documented module so the knobs cannot silently drift apart across the
//! worker, the coordinator tests and the CI fault matrix.
//!
//! A worker consults [`injected`] exactly once, at startup. Faults are
//! **opt-in via the environment** and cost nothing when unset — production
//! workers never read past the first missing variable.
//!
//! # Environment knobs
//!
//! | variable | meaning |
//! |---|---|
//! | [`FAULT_ENV`] (`SPARQLOG_SHARD_FAULT`) | the [`FaultMode`] to inject (see the table below); unknown values are ignored |
//! | [`FAULT_SHARD_ENV`] (`SPARQLOG_SHARD_FAULT_SHARD`) | scope the fault to one shard index; other shards run clean |
//! | [`FAULT_FLAG_ENV`] (`SPARQLOG_SHARD_FAULT_FLAG`) | path of a flag file; the fault fires **at most once** across all processes (first exclusive create wins), so a supervisor that restarts the worker sees it recover |
//! | [`FAULT_DELAY_MS_ENV`] (`SPARQLOG_SHARD_FAULT_DELAY_MS`) | duration of the `delay` fault in milliseconds (default 1000) |
//! | [`FAULT_STALL_MS_ENV`] (`SPARQLOG_SHARD_FAULT_STALL_MS`) | duration of the `stall` fault in milliseconds (default 600000) |
//!
//! # Fault modes
//!
//! | mode | behaviour |
//! |---|---|
//! | `die` | exit 3 before writing any output |
//! | `wrong-version` | write a bogus codec version byte and exit cleanly |
//! | `truncate` | declare a frame and deliver only part of its payload |
//! | `abort-mid-stream` | abort the process after the first complete frame — a worker killed mid-write |
//! | `stderr-flood` | write several pipe buffers of stderr before any stdout, then complete normally |
//! | `stall` | write the stream header, then produce nothing (no frames, no heartbeats) for [`stall_duration`] — a wedged worker, detectable only by a heartbeat timeout |
//! | `delay` | sleep [`delay_duration`] after the stream header (heartbeats keep flowing), then complete normally — a slow worker a supervisor must *not* kill |

use std::time::Duration;

/// `SPARQLOG_SHARD_FAULT` — the fault mode to inject.
pub const FAULT_ENV: &str = "SPARQLOG_SHARD_FAULT";

/// `SPARQLOG_SHARD_FAULT_SHARD` — restrict the fault to one shard index.
pub const FAULT_SHARD_ENV: &str = "SPARQLOG_SHARD_FAULT_SHARD";

/// `SPARQLOG_SHARD_FAULT_FLAG` — flag-file path making the fault fire at
/// most once across all worker processes (exclusive create claims it).
pub const FAULT_FLAG_ENV: &str = "SPARQLOG_SHARD_FAULT_FLAG";

/// `SPARQLOG_SHARD_FAULT_DELAY_MS` — duration of the `delay` fault.
pub const FAULT_DELAY_MS_ENV: &str = "SPARQLOG_SHARD_FAULT_DELAY_MS";

/// `SPARQLOG_SHARD_FAULT_STALL_MS` — duration of the `stall` fault.
pub const FAULT_STALL_MS_ENV: &str = "SPARQLOG_SHARD_FAULT_STALL_MS";

/// The injectable worker faults (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Exit 3 before writing any output.
    Die,
    /// Write a bogus codec version byte, then exit cleanly.
    WrongVersion,
    /// Declare a frame and deliver only part of its payload.
    Truncate,
    /// Abort after the first complete frame — killed mid-write.
    AbortMidStream,
    /// Flood stderr before any stdout, then complete normally.
    StderrFlood,
    /// Produce nothing after the header — a wedged worker.
    Stall,
    /// Sleep after the header (heartbeating), then complete normally.
    Delay,
}

impl FaultMode {
    /// Every mode, in wire-name order.
    pub const ALL: [FaultMode; 7] = [
        FaultMode::Die,
        FaultMode::WrongVersion,
        FaultMode::Truncate,
        FaultMode::AbortMidStream,
        FaultMode::StderrFlood,
        FaultMode::Stall,
        FaultMode::Delay,
    ];

    /// The mode's environment-variable spelling.
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::Die => "die",
            FaultMode::WrongVersion => "wrong-version",
            FaultMode::Truncate => "truncate",
            FaultMode::AbortMidStream => "abort-mid-stream",
            FaultMode::StderrFlood => "stderr-flood",
            FaultMode::Stall => "stall",
            FaultMode::Delay => "delay",
        }
    }

    /// Parses the environment spelling; unknown values are `None` (ignored,
    /// so a typo degrades to a clean run rather than a surprise fault).
    pub fn parse(value: &str) -> Option<FaultMode> {
        FaultMode::ALL
            .into_iter()
            .find(|mode| mode.name() == value.trim())
    }
}

/// The fault requested for this shard via the environment, if any. Applies
/// the shard scope ([`FAULT_SHARD_ENV`]) first and claims the once-flag
/// ([`FAULT_FLAG_ENV`]) last, so a scoped-away shard never consumes the
/// flag meant for another.
pub fn injected(shard: usize) -> Option<FaultMode> {
    let mode = FaultMode::parse(&std::env::var(FAULT_ENV).ok()?)?;
    if let Ok(scoped) = std::env::var(FAULT_SHARD_ENV) {
        if scoped.trim().parse::<usize>() != Ok(shard) {
            return None;
        }
    }
    if let Ok(flag) = std::env::var(FAULT_FLAG_ENV) {
        // First exclusive create wins; every later worker runs clean. A flag
        // path that cannot be created at all (missing directory) also
        // disables the fault — erring towards clean runs.
        if std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(flag.trim())
            .is_err()
        {
            return None;
        }
    }
    Some(mode)
}

fn env_millis(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(default_ms),
    )
}

/// How long the `delay` fault sleeps (default 1 s, [`FAULT_DELAY_MS_ENV`]).
pub fn delay_duration() -> Duration {
    env_millis(FAULT_DELAY_MS_ENV, 1_000)
}

/// How long the `stall` fault wedges (default 600 s, [`FAULT_STALL_MS_ENV`]).
pub fn stall_duration() -> Duration {
    env_millis(FAULT_STALL_MS_ENV, 600_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mode_round_trips_through_its_name() {
        for mode in FaultMode::ALL {
            assert_eq!(FaultMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(FaultMode::parse("frobnicate"), None);
        assert_eq!(FaultMode::parse(" die "), Some(FaultMode::Die));
    }

    #[test]
    fn flag_file_claims_are_exclusive() {
        let dir = std::env::temp_dir().join(format!("sparqlog-fault-flag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let flag = dir.join("claims.flag");
        // Simulate two workers racing for the flag: only the first create
        // succeeds (the same create_new call `injected` performs).
        let claim = |path: &std::path::Path| {
            std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
                .is_ok()
        };
        assert!(claim(&flag));
        assert!(!claim(&flag));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
