//! [`Snapshot`] encode/decode implementations for every record that crosses
//! the process boundary: [`LogSummary`], [`CorpusCounts`], every tally
//! behind [`DatasetAnalysis`], [`CacheStats`], and the framed worker stream
//! ([`LogFrame`] / [`EpilogueFrame`]) the coordinator consumes.
//!
//! Implementations destructure their type **exhaustively** (no `..`
//! patterns), so adding a field to any tally is a compile error here — the
//! codec can never silently drop a new counter. Decoding reads fields in
//! the exact order encoding wrote them; nothing about the wire layout
//! depends on Rust struct layout.
//!
//! ```
//! use sparqlog_core::corpus::{CorpusCounts, LogSummary};
//! use sparqlog_shard::snapshot::Snapshot;
//!
//! let summary = LogSummary {
//!     label: "DBpedia15".to_string(),
//!     counts: CorpusCounts { total: 5, valid: 4, unique: 3, bodyless: 1 },
//!     occurrences: vec![(17, 2), (99, 2)],
//!     errors: Default::default(),
//! };
//! let bytes = summary.to_bytes();
//! assert_eq!(LogSummary::from_bytes(&bytes).unwrap(), summary);
//! ```

use crate::codec::{write_frame, Decoder, Encoder};
use crate::codec::{DecodeError, DecodeErrorKind};
use sparqlog_algebra::opsets::OperatorSet;
use sparqlog_algebra::{FragmentTally, KeywordTally, OpSetTally, ProjectionTally, TripleHistogram};
use sparqlog_core::analysis::{DatasetAnalysis, FragmentSizeHistogram, HypertreeTally};
use sparqlog_core::cache::CacheStats;
use sparqlog_core::corpus::{CorpusCounts, FusedStats, LogSummary};
use sparqlog_core::recover::ErrorTally;
use sparqlog_graph::ShapeTally;
use sparqlog_obs::{HistogramSnapshot, MetricsSnapshot};
use sparqlog_paths::{PathExpressionType, PathTally, TypeEntry};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// A value with a binary snapshot representation in the shard wire format.
pub trait Snapshot: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Encoder);

    /// Decodes one value from the cursor.
    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut encoder = Encoder::new();
        self.encode(&mut encoder);
        encoder.into_bytes()
    }

    /// Decodes from a byte slice, requiring every byte to be consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut decoder = Decoder::new(bytes);
        let value = Self::decode(&mut decoder)?;
        decoder.finish()?;
        Ok(value)
    }
}

impl Snapshot for CorpusCounts {
    fn encode(&self, out: &mut Encoder) {
        let CorpusCounts {
            total,
            valid,
            unique,
            bodyless,
        } = *self;
        out.put_varint(total);
        out.put_varint(valid);
        out.put_varint(unique);
        out.put_varint(bodyless);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let total = input.take_varint()?;
        let valid = input.take_varint()?;
        let unique = input.take_varint()?;
        let bodyless = input.take_varint()?;
        Ok(CorpusCounts {
            total,
            valid,
            unique,
            bodyless,
        })
    }
}

impl Snapshot for ErrorTally {
    fn encode(&self, out: &mut Encoder) {
        let ErrorTally {
            lex,
            syntax,
            invalid_utf8,
            oversize_entry,
            depth_exceeded,
            worker_panic,
            exemplars,
        } = self;
        for value in [
            *lex,
            *syntax,
            *invalid_utf8,
            *oversize_entry,
            *depth_exceeded,
            *worker_panic,
        ] {
            out.put_varint(value);
        }
        out.put_usize(exemplars.len());
        for &(code, position) in exemplars {
            out.put_u8(code);
            out.put_varint(position);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let lex = input.take_varint()?;
        let syntax = input.take_varint()?;
        let invalid_utf8 = input.take_varint()?;
        let oversize_entry = input.take_varint()?;
        let depth_exceeded = input.take_varint()?;
        let worker_panic = input.take_varint()?;
        let length = input.take_usize()?;
        let mut exemplars = Vec::with_capacity(length.min(1 << 8));
        for _ in 0..length {
            // The wire code is stored raw: the taxonomy is append-only, so
            // a newer worker's code decodes (and re-encodes) losslessly.
            let code = input.take_u8()?;
            let position = input.take_varint()?;
            exemplars.push((code, position));
        }
        Ok(ErrorTally {
            lex,
            syntax,
            invalid_utf8,
            oversize_entry,
            depth_exceeded,
            worker_panic,
            exemplars,
        })
    }
}

impl Snapshot for LogSummary {
    fn encode(&self, out: &mut Encoder) {
        let LogSummary {
            label,
            counts,
            occurrences,
            errors,
        } = self;
        out.put_str(label);
        counts.encode(out);
        out.put_usize(occurrences.len());
        for &(fingerprint, count) in occurrences {
            out.put_u128(fingerprint);
            out.put_varint(count);
        }
        errors.encode(out);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let label = input.take_str()?;
        let counts = CorpusCounts::decode(input)?;
        let length = input.take_usize()?;
        let mut occurrences = Vec::with_capacity(length.min(1 << 16));
        for _ in 0..length {
            let fingerprint = input.take_u128()?;
            let count = input.take_varint()?;
            occurrences.push((fingerprint, count));
        }
        let errors = ErrorTally::decode(input)?;
        Ok(LogSummary {
            label,
            counts,
            occurrences,
            errors,
        })
    }
}

impl Snapshot for CacheStats {
    fn encode(&self, out: &mut Encoder) {
        let CacheStats {
            hits,
            misses,
            distinct,
        } = *self;
        out.put_varint(hits);
        out.put_varint(misses);
        out.put_varint(distinct);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let hits = input.take_varint()?;
        let misses = input.take_varint()?;
        let distinct = input.take_varint()?;
        Ok(CacheStats {
            hits,
            misses,
            distinct,
        })
    }
}

impl Snapshot for FusedStats {
    fn encode(&self, out: &mut Encoder) {
        let FusedStats {
            batches,
            peak_inflight_entries,
            distinct_forms,
        } = *self;
        out.put_varint(batches);
        out.put_usize(peak_inflight_entries);
        out.put_varint(distinct_forms);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let batches = input.take_varint()?;
        let peak_inflight_entries = input.take_usize()?;
        let distinct_forms = input.take_varint()?;
        Ok(FusedStats {
            batches,
            peak_inflight_entries,
            distinct_forms,
        })
    }
}

/// Gauges are signed; the codec's varints are not. ZigZag maps small
/// magnitudes of either sign to short varints.
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

fn unzigzag(raw: u64) -> i64 {
    ((raw >> 1) as i64) ^ -((raw & 1) as i64)
}

impl Snapshot for HistogramSnapshot {
    fn encode(&self, out: &mut Encoder) {
        let HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        } = self;
        out.put_varint(*count);
        out.put_varint(*sum);
        out.put_varint(*max);
        out.put_usize(buckets.len());
        for &(bound, bucket_count) in buckets {
            out.put_varint(bound);
            out.put_varint(bucket_count);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let count = input.take_varint()?;
        let sum = input.take_varint()?;
        let max = input.take_varint()?;
        let length = input.take_usize()?;
        let mut buckets = Vec::with_capacity(length.min(1 << 10));
        for _ in 0..length {
            let bound = input.take_varint()?;
            let bucket_count = input.take_varint()?;
            buckets.push((bound, bucket_count));
        }
        Ok(HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        })
    }
}

impl Snapshot for MetricsSnapshot {
    fn encode(&self, out: &mut Encoder) {
        let MetricsSnapshot {
            counters,
            gauges,
            histograms,
        } = self;
        out.put_usize(counters.len());
        for (name, value) in counters {
            out.put_str(name);
            out.put_varint(*value);
        }
        out.put_usize(gauges.len());
        for (name, value) in gauges {
            out.put_str(name);
            out.put_varint(zigzag(*value));
        }
        out.put_usize(histograms.len());
        for (name, histogram) in histograms {
            out.put_str(name);
            histogram.encode(out);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let length = input.take_usize()?;
        let mut counters = Vec::with_capacity(length.min(1 << 10));
        for _ in 0..length {
            let name = input.take_str()?;
            let value = input.take_varint()?;
            counters.push((name, value));
        }
        let length = input.take_usize()?;
        let mut gauges = Vec::with_capacity(length.min(1 << 10));
        for _ in 0..length {
            let name = input.take_str()?;
            let value = unzigzag(input.take_varint()?);
            gauges.push((name, value));
        }
        let length = input.take_usize()?;
        let mut histograms = Vec::with_capacity(length.min(1 << 10));
        for _ in 0..length {
            let name = input.take_str()?;
            let histogram = HistogramSnapshot::decode(input)?;
            histograms.push((name, histogram));
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

impl Snapshot for KeywordTally {
    fn encode(&self, out: &mut Encoder) {
        let KeywordTally {
            total_queries,
            select,
            ask,
            describe,
            construct,
            distinct,
            limit,
            offset,
            order_by,
            filter,
            and,
            union,
            opt,
            graph,
            not_exists,
            minus,
            exists,
            count,
            max,
            min,
            avg,
            sum,
            group_by,
            having,
            service,
            bind,
            values,
            reduced,
            subquery,
            property_path,
        } = *self;
        for value in [
            total_queries,
            select,
            ask,
            describe,
            construct,
            distinct,
            limit,
            offset,
            order_by,
            filter,
            and,
            union,
            opt,
            graph,
            not_exists,
            minus,
            exists,
            count,
            max,
            min,
            avg,
            sum,
            group_by,
            having,
            service,
            bind,
            values,
            reduced,
            subquery,
            property_path,
        ] {
            out.put_varint(value);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let total_queries = input.take_varint()?;
        let select = input.take_varint()?;
        let ask = input.take_varint()?;
        let describe = input.take_varint()?;
        let construct = input.take_varint()?;
        let distinct = input.take_varint()?;
        let limit = input.take_varint()?;
        let offset = input.take_varint()?;
        let order_by = input.take_varint()?;
        let filter = input.take_varint()?;
        let and = input.take_varint()?;
        let union = input.take_varint()?;
        let opt = input.take_varint()?;
        let graph = input.take_varint()?;
        let not_exists = input.take_varint()?;
        let minus = input.take_varint()?;
        let exists = input.take_varint()?;
        let count = input.take_varint()?;
        let max = input.take_varint()?;
        let min = input.take_varint()?;
        let avg = input.take_varint()?;
        let sum = input.take_varint()?;
        let group_by = input.take_varint()?;
        let having = input.take_varint()?;
        let service = input.take_varint()?;
        let bind = input.take_varint()?;
        let values = input.take_varint()?;
        let reduced = input.take_varint()?;
        let subquery = input.take_varint()?;
        let property_path = input.take_varint()?;
        Ok(KeywordTally {
            total_queries,
            select,
            ask,
            describe,
            construct,
            distinct,
            limit,
            offset,
            order_by,
            filter,
            and,
            union,
            opt,
            graph,
            not_exists,
            minus,
            exists,
            count,
            max,
            min,
            avg,
            sum,
            group_by,
            having,
            service,
            bind,
            values,
            reduced,
            subquery,
            property_path,
        })
    }
}

impl Snapshot for TripleHistogram {
    fn encode(&self, out: &mut Encoder) {
        let TripleHistogram {
            buckets,
            eleven_plus,
            select_ask_queries,
            all_queries,
            triple_sum,
            max_triples,
        } = *self;
        for bucket in buckets {
            out.put_varint(bucket);
        }
        out.put_varint(eleven_plus);
        out.put_varint(select_ask_queries);
        out.put_varint(all_queries);
        out.put_varint(triple_sum);
        out.put_u32(max_triples);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut buckets = [0u64; sparqlog_algebra::triples::EXPLICIT_BUCKETS];
        for bucket in &mut buckets {
            *bucket = input.take_varint()?;
        }
        let eleven_plus = input.take_varint()?;
        let select_ask_queries = input.take_varint()?;
        let all_queries = input.take_varint()?;
        let triple_sum = input.take_varint()?;
        let max_triples = input.take_u32()?;
        Ok(TripleHistogram {
            buckets,
            eleven_plus,
            select_ask_queries,
            all_queries,
            triple_sum,
            max_triples,
        })
    }
}

impl Snapshot for OpSetTally {
    fn encode(&self, out: &mut Encoder) {
        let OpSetTally {
            pure,
            other_features,
            total,
        } = self;
        out.put_usize(pure.len());
        for (set, count) in pure {
            out.put_u8(set.bits());
            out.put_varint(*count);
        }
        out.put_varint(*other_features);
        out.put_varint(*total);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let length = input.take_usize()?;
        let mut pure = BTreeMap::new();
        for _ in 0..length {
            let bits = input.take_u8()?;
            let Some(set) = OperatorSet::from_bits(bits) else {
                return Err(input.invalid("operator-set bits", u64::from(bits)));
            };
            let count = input.take_varint()?;
            if pure.insert(set, count).is_some() {
                return Err(input.invalid("duplicate operator-set key", u64::from(bits)));
            }
        }
        let other_features = input.take_varint()?;
        let total = input.take_varint()?;
        Ok(OpSetTally {
            pure,
            other_features,
            total,
        })
    }
}

impl Snapshot for ProjectionTally {
    fn encode(&self, out: &mut Encoder) {
        let ProjectionTally {
            select_yes,
            ask_yes,
            no,
            unknown,
            not_applicable,
            with_subqueries,
            total,
        } = *self;
        out.put_varint(select_yes);
        out.put_varint(ask_yes);
        out.put_varint(no);
        out.put_varint(unknown);
        out.put_varint(not_applicable);
        out.put_varint(with_subqueries);
        out.put_varint(total);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let select_yes = input.take_varint()?;
        let ask_yes = input.take_varint()?;
        let no = input.take_varint()?;
        let unknown = input.take_varint()?;
        let not_applicable = input.take_varint()?;
        let with_subqueries = input.take_varint()?;
        let total = input.take_varint()?;
        Ok(ProjectionTally {
            select_yes,
            ask_yes,
            no,
            unknown,
            not_applicable,
            with_subqueries,
            total,
        })
    }
}

impl Snapshot for FragmentTally {
    fn encode(&self, out: &mut Encoder) {
        let FragmentTally {
            select_ask,
            aof,
            cq,
            cqf,
            well_designed,
            cqof,
            aof_var_predicate,
            wide_interface,
        } = *self;
        out.put_varint(select_ask);
        out.put_varint(aof);
        out.put_varint(cq);
        out.put_varint(cqf);
        out.put_varint(well_designed);
        out.put_varint(cqof);
        out.put_varint(aof_var_predicate);
        out.put_varint(wide_interface);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let select_ask = input.take_varint()?;
        let aof = input.take_varint()?;
        let cq = input.take_varint()?;
        let cqf = input.take_varint()?;
        let well_designed = input.take_varint()?;
        let cqof = input.take_varint()?;
        let aof_var_predicate = input.take_varint()?;
        let wide_interface = input.take_varint()?;
        Ok(FragmentTally {
            select_ask,
            aof,
            cq,
            cqf,
            well_designed,
            cqof,
            aof_var_predicate,
            wide_interface,
        })
    }
}

impl Snapshot for ShapeTally {
    fn encode(&self, out: &mut Encoder) {
        let ShapeTally {
            single_edge,
            chain,
            chain_set,
            star,
            tree,
            forest,
            cycle,
            flower,
            flower_set,
            treewidth_le2,
            treewidth_3,
            treewidth_ge4,
            total,
        } = *self;
        for value in [
            single_edge,
            chain,
            chain_set,
            star,
            tree,
            forest,
            cycle,
            flower,
            flower_set,
            treewidth_le2,
            treewidth_3,
            treewidth_ge4,
            total,
        ] {
            out.put_varint(value);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let single_edge = input.take_varint()?;
        let chain = input.take_varint()?;
        let chain_set = input.take_varint()?;
        let star = input.take_varint()?;
        let tree = input.take_varint()?;
        let forest = input.take_varint()?;
        let cycle = input.take_varint()?;
        let flower = input.take_varint()?;
        let flower_set = input.take_varint()?;
        let treewidth_le2 = input.take_varint()?;
        let treewidth_3 = input.take_varint()?;
        let treewidth_ge4 = input.take_varint()?;
        let total = input.take_varint()?;
        Ok(ShapeTally {
            single_edge,
            chain,
            chain_set,
            star,
            tree,
            forest,
            cycle,
            flower,
            flower_set,
            treewidth_le2,
            treewidth_3,
            treewidth_ge4,
            total,
        })
    }
}

impl Snapshot for FragmentSizeHistogram {
    fn encode(&self, out: &mut Encoder) {
        let FragmentSizeHistogram {
            buckets,
            eleven_plus,
            one_triple,
            total,
            max_triples,
        } = *self;
        for bucket in buckets {
            out.put_varint(bucket);
        }
        out.put_varint(eleven_plus);
        out.put_varint(one_triple);
        out.put_varint(total);
        out.put_u32(max_triples);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut buckets = [0u64; 9];
        for bucket in &mut buckets {
            *bucket = input.take_varint()?;
        }
        let eleven_plus = input.take_varint()?;
        let one_triple = input.take_varint()?;
        let total = input.take_varint()?;
        let max_triples = input.take_u32()?;
        Ok(FragmentSizeHistogram {
            buckets,
            eleven_plus,
            one_triple,
            total,
            max_triples,
        })
    }
}

impl Snapshot for HypertreeTally {
    fn encode(&self, out: &mut Encoder) {
        let HypertreeTally {
            total,
            width1,
            width2,
            width3,
            wider_or_unknown,
            over_100_nodes,
            max_nodes,
        } = *self;
        out.put_varint(total);
        out.put_varint(width1);
        out.put_varint(width2);
        out.put_varint(width3);
        out.put_varint(wider_or_unknown);
        out.put_varint(over_100_nodes);
        out.put_varint(max_nodes);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let total = input.take_varint()?;
        let width1 = input.take_varint()?;
        let width2 = input.take_varint()?;
        let width3 = input.take_varint()?;
        let wider_or_unknown = input.take_varint()?;
        let over_100_nodes = input.take_varint()?;
        let max_nodes = input.take_varint()?;
        Ok(HypertreeTally {
            total,
            width1,
            width2,
            width3,
            wider_or_unknown,
            over_100_nodes,
            max_nodes,
        })
    }
}

impl Snapshot for TypeEntry {
    fn encode(&self, out: &mut Encoder) {
        let TypeEntry {
            count,
            min_k,
            max_k,
        } = *self;
        out.put_varint(count);
        out.put_opt_usize(min_k);
        out.put_opt_usize(max_k);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let count = input.take_varint()?;
        let min_k = input.take_opt_usize()?;
        let max_k = input.take_opt_usize()?;
        Ok(TypeEntry {
            count,
            min_k,
            max_k,
        })
    }
}

impl Snapshot for PathTally {
    fn encode(&self, out: &mut Encoder) {
        let PathTally {
            total,
            negated_literal,
            inverse_literal,
            by_type,
            with_inverse,
            potentially_hard,
        } = self;
        out.put_varint(*total);
        out.put_varint(*negated_literal);
        out.put_varint(*inverse_literal);
        out.put_usize(by_type.len());
        for (ty, entry) in by_type {
            out.put_u8(ty.code());
            entry.encode(out);
        }
        out.put_varint(*with_inverse);
        out.put_varint(*potentially_hard);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let total = input.take_varint()?;
        let negated_literal = input.take_varint()?;
        let inverse_literal = input.take_varint()?;
        let length = input.take_usize()?;
        let mut by_type = BTreeMap::new();
        for _ in 0..length {
            let code = input.take_u8()?;
            let Some(ty) = PathExpressionType::from_code(code) else {
                return Err(input.invalid("path-expression-type code", u64::from(code)));
            };
            let entry = TypeEntry::decode(input)?;
            if by_type.insert(ty, entry).is_some() {
                return Err(input.invalid("duplicate path-expression-type key", u64::from(code)));
            }
        }
        let with_inverse = input.take_varint()?;
        let potentially_hard = input.take_varint()?;
        Ok(PathTally {
            total,
            negated_literal,
            inverse_literal,
            by_type,
            with_inverse,
            potentially_hard,
        })
    }
}

impl Snapshot for DatasetAnalysis {
    fn encode(&self, out: &mut Encoder) {
        let DatasetAnalysis {
            label,
            counts,
            errors,
            keywords,
            triples,
            opsets,
            projection,
            fragments,
            shapes_cq,
            shapes_cqf,
            shapes_cqof,
            sizes_cq,
            sizes_cqf,
            sizes_cqof,
            cycle_lengths,
            hypertree,
            paths,
            single_edge_with_constants,
        } = self;
        out.put_str(label);
        counts.encode(out);
        errors.encode(out);
        keywords.encode(out);
        triples.encode(out);
        opsets.encode(out);
        projection.encode(out);
        fragments.encode(out);
        shapes_cq.encode(out);
        shapes_cqf.encode(out);
        shapes_cqof.encode(out);
        sizes_cq.encode(out);
        sizes_cqf.encode(out);
        sizes_cqof.encode(out);
        out.put_usize(cycle_lengths.len());
        for (&girth, &count) in cycle_lengths {
            out.put_usize(girth);
            out.put_varint(count);
        }
        hypertree.encode(out);
        paths.encode(out);
        out.put_varint(*single_edge_with_constants);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let label = input.take_str()?;
        let counts = CorpusCounts::decode(input)?;
        let errors = ErrorTally::decode(input)?;
        let keywords = KeywordTally::decode(input)?;
        let triples = TripleHistogram::decode(input)?;
        let opsets = OpSetTally::decode(input)?;
        let projection = ProjectionTally::decode(input)?;
        let fragments = FragmentTally::decode(input)?;
        let shapes_cq = ShapeTally::decode(input)?;
        let shapes_cqf = ShapeTally::decode(input)?;
        let shapes_cqof = ShapeTally::decode(input)?;
        let sizes_cq = FragmentSizeHistogram::decode(input)?;
        let sizes_cqf = FragmentSizeHistogram::decode(input)?;
        let sizes_cqof = FragmentSizeHistogram::decode(input)?;
        let length = input.take_usize()?;
        let mut cycle_lengths = BTreeMap::new();
        for _ in 0..length {
            let girth = input.take_usize()?;
            let count = input.take_varint()?;
            if cycle_lengths.insert(girth, count).is_some() {
                return Err(input.invalid("duplicate cycle-length key", girth as u64));
            }
        }
        let hypertree = HypertreeTally::decode(input)?;
        let paths = PathTally::decode(input)?;
        let single_edge_with_constants = input.take_varint()?;
        Ok(DatasetAnalysis {
            label,
            counts,
            errors,
            keywords,
            triples,
            opsets,
            projection,
            fragments,
            shapes_cq,
            shapes_cqf,
            shapes_cqof,
            sizes_cq,
            sizes_cqf,
            sizes_cqof,
            cycle_lengths,
            hypertree,
            paths,
            single_edge_with_constants,
        })
    }
}

// ---------------------------------------------------------------------------
// The framed worker stream.
// ---------------------------------------------------------------------------

/// Frame tag: one analysed log (index + summary + per-dataset analysis).
pub const FRAME_LOG: u8 = 1;

/// Frame tag: the worker epilogue (frame count + cache + residency stats).
pub const FRAME_EPILOGUE: u8 = 2;

/// Frame tag: a liveness heartbeat (sequence number only, no payload data).
pub const FRAME_HEARTBEAT: u8 = 3;

/// Frame tag: a CRC32C checksum covering the immediately preceding frame's
/// payload. An **append-only** addition to the tag space (the codec version
/// stays put): streams without checksum frames remain decodable, and a
/// decoder that sees one verifies the preceding frame on the spot — so
/// in-flight corruption surfaces as a structured
/// [`DecodeErrorKind::ChecksumMismatch`] *at the frame that broke*, not as a
/// confusing [`DecodeErrorKind::TrailingBytes`] deep inside a later field
/// decode.
pub const FRAME_CRC: u8 = 4;

/// One analysed log as the worker ships it: the log's index in the
/// *coordinator's* corpus order, its [`LogSummary`], and its full
/// [`DatasetAnalysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogFrame {
    /// Index of this log in the coordinator's input order.
    pub index: u64,
    /// The fused engine's per-log summary (Table-1 counts + fingerprint /
    /// occurrence pairs).
    pub summary: LogSummary,
    /// The full per-dataset analysis — every tally of the report.
    pub analysis: DatasetAnalysis,
}

/// The final frame of a worker snapshot: a self-check of the stream plus the
/// run's observability counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpilogueFrame {
    /// How many [`LogFrame`]s the worker streamed before this epilogue.
    pub log_frames: u64,
    /// The worker's analysis-cache counters.
    pub cache: CacheStats,
    /// The worker's fused-engine residency counters.
    pub fused: FusedStats,
    /// The worker process's full metric registry snapshot — per-stage
    /// latency histograms and layer counters — absorbed by the coordinator
    /// (or serve supervisor) into its own registry, so a daemon's
    /// `Metrics` answer covers work done in worker processes. Empty when
    /// the worker ran with metrics disabled.
    pub metrics: MetricsSnapshot,
}

/// A liveness heartbeat: a worker that has nothing to report yet but wants
/// its supervisor to know it is alive (long analyses can go seconds between
/// log frames). Carries a monotonically increasing sequence number so a
/// supervisor can distinguish fresh beats from a replayed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatFrame {
    /// Monotonically increasing beat number (first beat is 1).
    pub seq: u64,
}

/// A checksum over the immediately preceding frame's payload bytes, written
/// by [`Frame::write_checked_to`] and verified by [`read_snapshot`]. Carries
/// the covered payload length too, so a misaligned checksum (covering the
/// wrong frame) is caught as a structured error rather than a spurious
/// mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcFrame {
    /// CRC32C of the preceding frame's payload bytes.
    pub crc: u32,
    /// Byte length of the covered payload.
    pub covered: u64,
}

/// A decoded snapshot frame. The log variant is boxed: a [`LogFrame`]
/// carries a full [`DatasetAnalysis`] and would otherwise dominate the enum
/// size.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// One analysed log.
    Log(Box<LogFrame>),
    /// The stream epilogue.
    Epilogue(EpilogueFrame),
    /// A liveness heartbeat (carries no analysis data).
    Heartbeat(HeartbeatFrame),
    /// A checksum of the preceding frame.
    Crc(CrcFrame),
}

impl From<LogFrame> for Frame {
    fn from(frame: LogFrame) -> Frame {
        Frame::Log(Box::new(frame))
    }
}

impl Frame {
    /// Encodes the frame payload (tag byte + body).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut encoder = Encoder::new();
        match self {
            Frame::Log(frame) => {
                encoder.put_u8(FRAME_LOG);
                encoder.put_varint(frame.index);
                frame.summary.encode(&mut encoder);
                frame.analysis.encode(&mut encoder);
            }
            Frame::Epilogue(frame) => {
                encoder.put_u8(FRAME_EPILOGUE);
                encoder.put_varint(frame.log_frames);
                frame.cache.encode(&mut encoder);
                frame.fused.encode(&mut encoder);
                frame.metrics.encode(&mut encoder);
            }
            Frame::Heartbeat(frame) => {
                encoder.put_u8(FRAME_HEARTBEAT);
                encoder.put_varint(frame.seq);
            }
            Frame::Crc(frame) => {
                encoder.put_u8(FRAME_CRC);
                encoder.put_u32(frame.crc);
                encoder.put_varint(frame.covered);
            }
        }
        encoder.into_bytes()
    }

    /// Decodes a frame payload whose first stream byte sits at `base_offset`
    /// (for error reporting).
    pub fn from_payload(payload: &[u8], base_offset: u64) -> Result<Frame, DecodeError> {
        let mut decoder = Decoder::with_base_offset(payload, base_offset);
        let tag = decoder.take_u8()?;
        let frame = match tag {
            FRAME_LOG => {
                let index = decoder.take_varint()?;
                let summary = LogSummary::decode(&mut decoder)?;
                let analysis = DatasetAnalysis::decode(&mut decoder)?;
                Frame::Log(Box::new(LogFrame {
                    index,
                    summary,
                    analysis,
                }))
            }
            FRAME_EPILOGUE => {
                let log_frames = decoder.take_varint()?;
                let cache = CacheStats::decode(&mut decoder)?;
                let fused = FusedStats::decode(&mut decoder)?;
                let metrics = MetricsSnapshot::decode(&mut decoder)?;
                Frame::Epilogue(EpilogueFrame {
                    log_frames,
                    cache,
                    fused,
                    metrics,
                })
            }
            FRAME_HEARTBEAT => {
                let seq = decoder.take_varint()?;
                Frame::Heartbeat(HeartbeatFrame { seq })
            }
            FRAME_CRC => {
                let crc = decoder.take_u32()?;
                let covered = decoder.take_varint()?;
                Frame::Crc(CrcFrame { crc, covered })
            }
            tag => {
                return Err(DecodeError {
                    kind: DecodeErrorKind::BadFrameTag { tag },
                    offset: base_offset,
                })
            }
        };
        decoder.finish()?;
        Ok(frame)
    }

    /// Writes the frame (length prefix + payload) to a stream.
    pub fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        write_frame(out, &self.to_payload())
    }

    /// Writes the frame followed by a [`FRAME_CRC`] frame covering its
    /// payload — the checksummed form the worker streams its log and
    /// epilogue frames in. The two frames go out back-to-back (callers hold
    /// the writer lock across the pair), so a verifying reader always finds
    /// the checksum right behind the frame it covers.
    pub fn write_checked_to(&self, out: &mut impl Write) -> io::Result<()> {
        let payload = self.to_payload();
        write_frame(out, &payload)?;
        let check = Frame::Crc(CrcFrame {
            crc: crate::codec::crc32c(&payload),
            covered: payload.len() as u64,
        });
        write_frame(out, &check.to_payload())
    }
}

/// A worker's complete decoded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// The analysed logs, in the order the worker streamed them.
    pub logs: Vec<LogFrame>,
    /// The epilogue counters.
    pub epilogue: EpilogueFrame,
}

/// Reads one complete worker snapshot (header, log frames, epilogue, EOF)
/// from a byte stream. Returns the snapshot and its total size in bytes.
///
/// Structured failures: a stream ending mid-frame is
/// [`DecodeErrorKind::UnexpectedEof`]; one ending cleanly before the
/// epilogue is [`DecodeErrorKind::MissingEpilogue`]; frames after the
/// epilogue are [`DecodeErrorKind::TrailingFrame`]; an epilogue whose
/// declared count disagrees with the streamed frames is
/// [`DecodeErrorKind::FrameCountMismatch`].
pub fn read_snapshot(
    reader: impl std::io::Read,
) -> Result<(WorkerSnapshot, u64), crate::codec::StreamError> {
    read_snapshot_observed(reader, |_| {})
}

/// [`read_snapshot`] with a frame observer: `observe` is called on every
/// decoded frame (including [`Frame::Heartbeat`]s, which carry no analysis
/// data and are otherwise skipped) *as it arrives*. This is the supervision
/// hook — a liveness clock touched per frame distinguishes a slow worker
/// from a wedged one while the stream is still incomplete.
pub fn read_snapshot_observed(
    reader: impl std::io::Read,
    mut observe: impl FnMut(&Frame),
) -> Result<(WorkerSnapshot, u64), crate::codec::StreamError> {
    let mut frames = crate::codec::FrameReader::new(reader);
    frames.read_header()?;
    let mut logs = Vec::new();
    // Checksum of the last coverable (log / epilogue) frame's payload, used
    // to verify a FRAME_CRC that follows it. Streams without checksum
    // frames decode exactly as before — the tag is append-only.
    let mut covered: Option<(u32, u64)> = None;
    loop {
        let Some((payload, base)) = frames.next_frame()? else {
            return Err(crate::codec::StreamError::Decode(DecodeError {
                kind: DecodeErrorKind::MissingEpilogue,
                offset: frames.offset(),
            }));
        };
        let frame = Frame::from_payload(&payload, base)?;
        observe(&frame);
        match frame {
            Frame::Log(frame) => {
                covered = Some((crate::codec::crc32c(&payload), payload.len() as u64));
                logs.push(*frame);
            }
            Frame::Heartbeat(_) => {}
            Frame::Crc(check) => verify_crc_frame(covered.take(), check, base)?,
            Frame::Epilogue(epilogue) => {
                if epilogue.log_frames != logs.len() as u64 {
                    return Err(crate::codec::StreamError::Decode(DecodeError {
                        kind: DecodeErrorKind::FrameCountMismatch {
                            declared: epilogue.log_frames,
                            seen: logs.len() as u64,
                        },
                        offset: base,
                    }));
                }
                // At most one trailing frame is legal: the epilogue's own
                // checksum. Anything else after the epilogue is still a
                // structured TrailingFrame fault.
                let epilogue_crc = (crate::codec::crc32c(&payload), payload.len() as u64);
                if let Some((payload, base)) = frames.next_frame()? {
                    let frame = Frame::from_payload(&payload, base)?;
                    observe(&frame);
                    let Frame::Crc(check) = frame else {
                        return Err(crate::codec::StreamError::Decode(DecodeError {
                            kind: DecodeErrorKind::TrailingFrame,
                            offset: base,
                        }));
                    };
                    verify_crc_frame(Some(epilogue_crc), check, base)?;
                    if frames.next_frame()?.is_some() {
                        return Err(crate::codec::StreamError::Decode(DecodeError {
                            kind: DecodeErrorKind::TrailingFrame,
                            offset: frames.offset(),
                        }));
                    }
                }
                let bytes = frames.offset();
                return Ok((WorkerSnapshot { logs, epilogue }, bytes));
            }
        }
    }
}

/// Checks a [`CrcFrame`] against the preceding frame's payload checksum.
/// `covered` is `None` when there is no preceding coverable frame (an orphan
/// checksum — a framing bug, reported as an invalid value rather than a
/// mismatch).
fn verify_crc_frame(
    covered: Option<(u32, u64)>,
    check: CrcFrame,
    offset: u64,
) -> Result<(), crate::codec::StreamError> {
    let Some((crc, length)) = covered else {
        return Err(crate::codec::StreamError::Decode(DecodeError {
            kind: DecodeErrorKind::InvalidValue {
                what: "checksum frame with no frame to cover",
                value: u64::from(check.crc),
            },
            offset,
        }));
    };
    if check.covered != length {
        return Err(crate::codec::StreamError::Decode(DecodeError {
            kind: DecodeErrorKind::InvalidValue {
                what: "checksum coverage length",
                value: check.covered,
            },
            offset,
        }));
    }
    if check.crc != crc {
        return Err(crate::codec::StreamError::Decode(DecodeError {
            kind: DecodeErrorKind::ChecksumMismatch {
                expected: check.crc,
                found: crc,
            },
            offset,
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_core::analysis::{CorpusAnalysis, Population};
    use sparqlog_core::corpus::{ingest, RawLog};

    fn analysed_dataset() -> DatasetAnalysis {
        let log = ingest(&RawLog::new(
            "snapshot-test",
            vec![
                "SELECT ?x WHERE { ?x a <http://C> . ?x <http://p> ?y FILTER(?y > 3) } LIMIT 5"
                    .to_string(),
                "ASK { ?a <http://p> ?b . ?b <http://p> ?c . ?c <http://p> ?a }".to_string(),
                "SELECT ?x WHERE { ?x <http://a>/<http://b>* ?y }".to_string(),
                "SELECT ?x WHERE { ?x <http://p> <http://const> }".to_string(),
                "DESCRIBE <http://r>".to_string(),
                "garbage".to_string(),
            ],
        ));
        let corpus = CorpusAnalysis::analyze(&[log], Population::Unique);
        corpus.datasets.into_iter().next().unwrap()
    }

    #[test]
    fn an_analysed_dataset_round_trips() {
        let dataset = analysed_dataset();
        let decoded = DatasetAnalysis::from_bytes(&dataset.to_bytes()).unwrap();
        assert_eq!(dataset, decoded);
        assert!(!dataset.cycle_lengths.is_empty());
        assert!(!dataset.paths.by_type.is_empty());
        assert!(!dataset.opsets.pure.is_empty());
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut by_type = BTreeMap::new();
        for ty in PathExpressionType::ALL {
            by_type.insert(
                ty,
                TypeEntry {
                    count: u64::MAX,
                    min_k: Some(0),
                    max_k: Some(usize::MAX - 1),
                },
            );
        }
        let paths = PathTally {
            total: u64::MAX,
            negated_literal: 1,
            inverse_literal: 2,
            by_type,
            with_inverse: 3,
            potentially_hard: 4,
        };
        let decoded = PathTally::from_bytes(&paths.to_bytes()).unwrap();
        assert_eq!(decoded, paths);

        let summary = LogSummary {
            label: "ünïcode / label".to_string(),
            counts: CorpusCounts {
                total: u64::MAX,
                valid: u64::MAX - 1,
                unique: 7,
                bodyless: 0,
            },
            occurrences: vec![(0, 1), (u128::MAX, u64::MAX)],
            errors: ErrorTally {
                lex: u64::MAX,
                syntax: 1,
                invalid_utf8: 2,
                oversize_entry: 3,
                depth_exceeded: 4,
                worker_panic: 5,
                exemplars: vec![(0, 0), (5, u64::MAX)],
            },
        };
        assert_eq!(
            LogSummary::from_bytes(&summary.to_bytes()).unwrap(),
            summary
        );
    }

    #[test]
    fn frames_round_trip_and_reject_bad_tags() {
        let dataset = analysed_dataset();
        let frame = Frame::from(LogFrame {
            index: 3,
            summary: LogSummary {
                label: dataset.label.clone(),
                counts: dataset.counts,
                occurrences: vec![(42, 2)],
                errors: dataset.errors.clone(),
            },
            analysis: dataset,
        });
        let payload = frame.to_payload();
        let decoded = Frame::from_payload(&payload, 11).unwrap();
        assert_eq!(frame, decoded);

        let mut bad = payload.clone();
        bad[0] = 99;
        assert_eq!(
            Frame::from_payload(&bad, 0).unwrap_err().kind,
            DecodeErrorKind::BadFrameTag { tag: 99 }
        );
    }

    #[test]
    fn snapshot_stream_round_trips_and_validates_the_epilogue() {
        let dataset = analysed_dataset();
        let log = LogFrame {
            index: 0,
            summary: LogSummary {
                label: dataset.label.clone(),
                counts: dataset.counts,
                occurrences: vec![(5, 1), (9, 3)],
                errors: Default::default(),
            },
            analysis: dataset,
        };
        let epilogue = EpilogueFrame {
            log_frames: 1,
            cache: CacheStats {
                hits: 10,
                misses: 4,
                distinct: 4,
            },
            fused: FusedStats {
                batches: 2,
                peak_inflight_entries: 6,
                distinct_forms: 4,
            },
            metrics: MetricsSnapshot {
                counters: vec![
                    ("cache_hits_total".to_string(), 10),
                    ("pipeline_entries_total".to_string(), 14),
                ],
                gauges: vec![("cache_distinct_forms".to_string(), 4)],
                histograms: vec![(
                    "pipeline_read_us".to_string(),
                    HistogramSnapshot {
                        count: 2,
                        sum: 30,
                        max: 20,
                        buckets: vec![(10, 2)],
                    },
                )],
            },
        };
        let mut stream = Vec::new();
        crate::codec::write_stream_header(&mut stream).unwrap();
        Frame::from(log.clone()).write_to(&mut stream).unwrap();
        Frame::Epilogue(epilogue.clone())
            .write_to(&mut stream)
            .unwrap();

        let (snapshot, bytes) = read_snapshot(stream.as_slice()).unwrap();
        assert_eq!(bytes, stream.len() as u64);
        assert_eq!(snapshot.logs.len(), 1);
        assert_eq!(snapshot.logs[0].summary, log.summary);
        assert_eq!(snapshot.epilogue, epilogue);

        // Missing epilogue: stream ends cleanly after the log frame.
        let mut early = Vec::new();
        crate::codec::write_stream_header(&mut early).unwrap();
        Frame::from(log.clone()).write_to(&mut early).unwrap();
        let crate::codec::StreamError::Decode(error) = read_snapshot(early.as_slice()).unwrap_err()
        else {
            panic!("expected decode error");
        };
        assert_eq!(error.kind, DecodeErrorKind::MissingEpilogue);

        // Count mismatch.
        let mut mismatched = Vec::new();
        crate::codec::write_stream_header(&mut mismatched).unwrap();
        Frame::from(log.clone()).write_to(&mut mismatched).unwrap();
        Frame::Epilogue(EpilogueFrame {
            log_frames: 2,
            ..epilogue
        })
        .write_to(&mut mismatched)
        .unwrap();
        let crate::codec::StreamError::Decode(error) =
            read_snapshot(mismatched.as_slice()).unwrap_err()
        else {
            panic!("expected decode error");
        };
        assert_eq!(
            error.kind,
            DecodeErrorKind::FrameCountMismatch {
                declared: 2,
                seen: 1
            }
        );

        // Trailing frame after the epilogue.
        let mut trailing = stream.clone();
        Frame::from(log).write_to(&mut trailing).unwrap();
        let crate::codec::StreamError::Decode(error) =
            read_snapshot(trailing.as_slice()).unwrap_err()
        else {
            panic!("expected decode error");
        };
        assert_eq!(error.kind, DecodeErrorKind::TrailingFrame);
    }

    #[test]
    fn heartbeats_round_trip_are_observed_and_do_not_count_as_log_frames() {
        let beat = Frame::Heartbeat(HeartbeatFrame { seq: 42 });
        let decoded = Frame::from_payload(&beat.to_payload(), 5).unwrap();
        assert_eq!(beat, decoded);

        let dataset = analysed_dataset();
        let log = LogFrame {
            index: 0,
            summary: LogSummary {
                label: dataset.label.clone(),
                counts: dataset.counts,
                occurrences: vec![(5, 1)],
                errors: Default::default(),
            },
            analysis: dataset,
        };
        let epilogue = EpilogueFrame {
            log_frames: 1,
            ..EpilogueFrame::default()
        };
        // Heartbeats interleaved before, between and directly ahead of the
        // epilogue: the declared log-frame count (1) must still match.
        let mut stream = Vec::new();
        crate::codec::write_stream_header(&mut stream).unwrap();
        Frame::Heartbeat(HeartbeatFrame { seq: 1 })
            .write_to(&mut stream)
            .unwrap();
        Frame::from(log.clone()).write_to(&mut stream).unwrap();
        Frame::Heartbeat(HeartbeatFrame { seq: 2 })
            .write_to(&mut stream)
            .unwrap();
        Frame::Epilogue(epilogue.clone())
            .write_to(&mut stream)
            .unwrap();

        let mut observed = Vec::new();
        let (snapshot, bytes) = read_snapshot_observed(stream.as_slice(), |frame| {
            observed.push(match frame {
                Frame::Log(_) => "log",
                Frame::Epilogue(_) => "epilogue",
                Frame::Heartbeat(_) => "heartbeat",
                Frame::Crc(_) => "crc",
            });
        })
        .unwrap();
        assert_eq!(bytes, stream.len() as u64);
        assert_eq!(snapshot.logs.len(), 1);
        assert_eq!(snapshot.epilogue, epilogue);
        assert_eq!(observed, ["heartbeat", "log", "heartbeat", "epilogue"]);

        // The plain reader skips them identically.
        let (snapshot, _) = read_snapshot(stream.as_slice()).unwrap();
        assert_eq!(snapshot.logs.len(), 1);
    }
}
