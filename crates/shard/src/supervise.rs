//! Reusable worker-process supervision: spawn a `sparqlog-shard-worker`,
//! decode its snapshot on a background thread while draining stderr, track
//! per-frame liveness, and resolve the outcome with the same structured
//! error precedence the batch [coordinator](crate::coordinator) proved out.
//!
//! Extracted from the coordinator so the long-running `sparqlog-serve`
//! supervisor and the one-shot `analyze_sharded` path share one spawn /
//! decode / diagnose implementation instead of drifting copies.
//!
//! # Lifecycle
//!
//! ```text
//! WorkerLaunch::spawn ─┬─ stderr drain thread (read_to_string)
//!                      ├─ decode thread (read_snapshot_observed → channel,
//!                      │   touching the ActivityClock per frame)
//!                      └─ WorkerHandle ── join(stall_timeout)
//! ```
//!
//! [`WorkerHandle::join`] blocks until the snapshot decodes (or fails),
//! polling the [`ActivityClock`] if a stall timeout is given: a worker whose
//! pipe has produced *no frame* (log, epilogue or heartbeat) for longer than
//! the timeout is killed and reported as [`ShardError::Stalled`] — the only
//! failure shape EOF-based detection cannot see, since a wedged process
//! keeps its pipe open indefinitely.

use crate::codec::StreamError;
use crate::coordinator::{ShardError, WorkerCommand};
use crate::snapshot::{read_snapshot_observed, WorkerSnapshot};
use crate::worker::AssignedLog;
use sparqlog_core::analysis::Population;
use sparqlog_core::RecoveryPolicy;
use std::io::{BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A monotonic last-activity clock shared between a decode thread (which
/// touches it per decoded frame) and a supervisor (which reads the idle
/// time). Millisecond resolution is ample for stall detection.
#[derive(Debug)]
pub struct ActivityClock {
    start: Instant,
    last_ms: AtomicU64,
}

impl ActivityClock {
    /// A clock whose last activity is *now*.
    pub fn new() -> ActivityClock {
        ActivityClock {
            start: Instant::now(),
            last_ms: AtomicU64::new(0),
        }
    }

    /// Records activity at the current instant.
    pub fn touch(&self) {
        let elapsed = self.start.elapsed().as_millis() as u64;
        self.last_ms.fetch_max(elapsed, Ordering::Release);
    }

    /// Time since the last recorded activity.
    pub fn idle(&self) -> Duration {
        let elapsed = self.start.elapsed().as_millis() as u64;
        Duration::from_millis(elapsed.saturating_sub(self.last_ms.load(Ordering::Acquire)))
    }
}

impl Default for ActivityClock {
    fn default() -> ActivityClock {
        ActivityClock::new()
    }
}

/// Everything needed to launch one supervised worker process.
#[derive(Debug, Clone)]
pub struct WorkerLaunch {
    /// How to invoke the worker binary (program, leading args, env).
    pub command: WorkerCommand,
    /// The shard number the worker reports as (names it in errors).
    pub shard: usize,
    /// The population to fold.
    pub population: Population,
    /// `--workers` to pass, if any (None = let the worker default).
    pub worker_threads: Option<usize>,
    /// `--heartbeat-ms` to pass, if any (None = no liveness frames).
    pub heartbeat: Option<Duration>,
    /// The malformed-entry recovery policy to pass as `--recovery`.
    /// [`RecoveryPolicy::Auto`] omits the flag, leaving the worker to
    /// resolve its own `SPARQLOG_RECOVERY` environment.
    pub recovery: RecoveryPolicy,
    /// The logs to assign, in the consumer's index space.
    pub logs: Vec<AssignedLog>,
}

impl WorkerLaunch {
    /// Spawns the worker with piped stdio and starts the stderr-drain and
    /// snapshot-decode threads.
    pub fn spawn(&self) -> Result<WorkerHandle, ShardError> {
        let shard = self.shard;
        let mut command = Command::new(&self.command.program);
        command.args(&self.command.args);
        for (key, value) in &self.command.envs {
            command.env(key, value);
        }
        command.arg("--shard").arg(shard.to_string());
        command.arg("--population").arg(match self.population {
            Population::Unique => "unique",
            Population::Valid => "valid",
        });
        if let Some(threads) = self.worker_threads {
            command.arg("--workers").arg(threads.to_string());
        }
        if let Some(period) = self.heartbeat {
            command
                .arg("--heartbeat-ms")
                .arg(period.as_millis().max(1).to_string());
        }
        if self.recovery != RecoveryPolicy::Auto {
            command.arg("--recovery").arg(self.recovery.spelling());
        }
        for log in &self.logs {
            command
                .arg("--log")
                .arg(log.index.to_string())
                .arg(&log.label)
                .arg(&log.path);
        }
        command
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());

        let mut child = command
            .spawn()
            .map_err(|error| ShardError::Spawn { shard, error })?;
        let pid = child.id();
        let stdout = child.stdout.take().expect("stdout was piped");
        let stderr_pipe = child.stderr.take().expect("stderr was piped");

        // Drain stderr on its own thread while stdout decodes: a worker that
        // writes more than one pipe buffer of diagnostics must not be able
        // to wedge itself (blocked in a stderr write) and the supervisor
        // (blocked reading stdout) against each other.
        let stderr_thread = std::thread::spawn(move || {
            let mut stderr = String::new();
            let mut pipe = stderr_pipe;
            let _ = pipe.read_to_string(&mut stderr);
            stderr
        });

        let activity = Arc::new(ActivityClock::new());
        let clock = Arc::clone(&activity);
        let (sender, frames) = mpsc::channel();
        let decode_thread = std::thread::spawn(move || {
            let decoded = read_snapshot_observed(BufReader::new(stdout), |_frame| clock.touch());
            // The receiver may already have given up (stall kill); a closed
            // channel is fine.
            let _ = sender.send(decoded);
        });

        Ok(WorkerHandle {
            shard,
            pid,
            child,
            activity,
            frames,
            stderr_thread: Some(stderr_thread),
            decode_thread: Some(decode_thread),
        })
    }
}

/// A successfully supervised worker's output.
#[derive(Debug, Clone)]
pub struct WorkerOutput {
    /// The decoded snapshot.
    pub snapshot: WorkerSnapshot,
    /// Size of the decoded snapshot stream in bytes.
    pub bytes: u64,
    /// The worker's captured stderr (trimmed; usually empty on success).
    pub stderr: String,
}

/// A running supervised worker: the child process plus its drain/decode
/// threads and liveness clock.
#[derive(Debug)]
pub struct WorkerHandle {
    shard: usize,
    pid: u32,
    child: Child,
    activity: Arc<ActivityClock>,
    frames: mpsc::Receiver<Result<(WorkerSnapshot, u64), StreamError>>,
    stderr_thread: Option<JoinHandle<String>>,
    decode_thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The shard number this worker was launched as.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The worker's OS process id (for observability and kill tests).
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Time since the worker last produced a frame (or since spawn).
    pub fn idle(&self) -> Duration {
        self.activity.idle()
    }

    /// Waits for the worker to finish and resolves its outcome.
    ///
    /// With `stall_timeout` set, a worker that produces no frame for longer
    /// than the timeout is killed and reported as [`ShardError::Stalled`];
    /// heartbeat frames count as activity, so a slow-but-beating worker is
    /// never killed. Without it, this blocks until the pipe closes (the
    /// batch coordinator's behaviour — a dead worker always closes it).
    pub fn join(mut self, stall_timeout: Option<Duration>) -> Result<WorkerOutput, ShardError> {
        let shard = self.shard;
        let mut stalled_for: Option<Duration> = None;
        let decoded = loop {
            match self.frames.recv_timeout(Duration::from_millis(100)) {
                Ok(decoded) => break decoded,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The decode thread never sends only if it panicked.
                    return Err(ShardError::Stream {
                        shard,
                        error: std::io::Error::other("snapshot decode thread died"),
                    });
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(limit) = stall_timeout {
                        let idle = self.activity.idle();
                        if idle > limit {
                            // Kill closes the pipe; the decode thread sees
                            // EOF and sends promptly — drain it so the
                            // threads can be joined.
                            let _ = self.child.kill();
                            let _ = self.frames.recv();
                            stalled_for = Some(idle);
                            break Err(StreamError::Io(std::io::Error::other("worker stalled")));
                        }
                    }
                }
            }
        };

        // The stdout pipe is drained (or the worker killed): `wait` returns
        // as soon as the process exits.
        let status = self
            .child
            .wait()
            .map_err(|error| ShardError::Stream { shard, error })?;
        if let Some(thread) = self.decode_thread.take() {
            let _ = thread.join();
        }
        let stderr = self
            .stderr_thread
            .take()
            .and_then(|thread| thread.join().ok())
            .unwrap_or_default()
            .trim()
            .to_string();

        if let Some(waited) = stalled_for {
            return Err(ShardError::Stalled {
                shard,
                waited_ms: waited.as_millis() as u64,
            });
        }
        if !status.success() {
            // A structured decode diagnosis (bad magic, version skew,
            // invalid field) outranks the exit status: closing the pipe on
            // such an error kills a still-writing worker with EPIPE, and
            // reporting that secondary death would bury the root cause.
            // Plain truncation (EOF-shaped errors), by contrast, *is* the
            // symptom of the dead worker, so there the exit status and
            // stderr are the diagnosis.
            if let Err(StreamError::Decode(error)) = &decoded {
                if !matches!(
                    error.kind,
                    crate::codec::DecodeErrorKind::UnexpectedEof
                        | crate::codec::DecodeErrorKind::MissingEpilogue
                ) {
                    return Err(ShardError::Decode {
                        shard,
                        error: error.clone(),
                    });
                }
            }
            return Err(ShardError::Worker {
                shard,
                code: status.code(),
                stderr,
            });
        }
        match decoded {
            Ok((snapshot, bytes)) => Ok(WorkerOutput {
                snapshot,
                bytes,
                stderr,
            }),
            Err(StreamError::Decode(error)) => Err(ShardError::Decode { shard, error }),
            Err(StreamError::Io(error)) => Err(ShardError::Stream { shard, error }),
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // A handle dropped without join (supervisor shutting down) must not
        // leak the process or wedge its threads: kill, reap, detach.
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(thread) = self.decode_thread.take() {
            let _ = thread.join();
        }
        if let Some(thread) = self.stderr_thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_clock_reports_idle_time() {
        let clock = ActivityClock::new();
        clock.touch();
        assert!(clock.idle() < Duration::from_secs(5));
        std::thread::sleep(Duration::from_millis(30));
        assert!(clock.idle() >= Duration::from_millis(20));
        clock.touch();
        assert!(clock.idle() < Duration::from_millis(20));
    }

    #[test]
    fn spawn_failure_is_a_structured_shard_error() {
        let launch = WorkerLaunch {
            command: WorkerCommand::new("/definitely/not/a/real/worker/binary"),
            shard: 7,
            population: Population::Unique,
            worker_threads: None,
            heartbeat: None,
            recovery: RecoveryPolicy::Auto,
            logs: vec![AssignedLog {
                index: 0,
                label: "x".to_string(),
                path: "/tmp/none.log".into(),
            }],
        };
        let error = launch.spawn().unwrap_err();
        let ShardError::Spawn { shard: 7, .. } = error else {
            panic!("expected a spawn error, got {error}");
        };
    }
}
