//! The dependency-free binary snapshot codec: varint integers, raw
//! little-endian fingerprints, length-prefixed frames behind a magic /
//! version header, and structured decode errors that carry the byte offset
//! of the fault.
//!
//! The wire format is deliberately tiny and explicit — it is the contract
//! between coordinator and worker *processes*, so it must not depend on the
//! Rust type layout, the allocator or any serialization framework:
//!
//! * **varint** — unsigned LEB128, at most 10 bytes for a `u64`. All counts
//!   and lengths use it (corpus tallies are overwhelmingly small integers).
//! * **fingerprints** — raw 16-byte little-endian `u128`. Canonical
//!   fingerprints are uniform 128-bit FNV-1a outputs; varint coding would
//!   *expand* them.
//! * **strings** — varint byte length + UTF-8 bytes.
//! * **stream header** — the 4-byte magic [`MAGIC`] followed by the
//!   [`VERSION`] byte. A decoder refuses any other version up front, which
//!   is what lets the coordinator surface a version-skewed worker as a
//!   structured error instead of garbage tallies.
//! * **frames** — varint payload length + payload. The payload's first byte
//!   is a frame tag (see [`crate::snapshot`]).
//!
//! Every decode error is a [`DecodeError`]: a [`DecodeErrorKind`] plus the
//! stream offset where decoding stopped, so a coordinator can report *which
//! byte* of *which shard's* snapshot went wrong.

use std::fmt;
use std::io::{self, Read, Write};

/// The 4-byte magic prefix of a snapshot stream (`SQSN`: SparQlog SNapshot).
pub const MAGIC: [u8; 4] = *b"SQSN";

/// The codec version this build writes and accepts. Version 2 added the
/// per-log error tally to [`LogSummary`](sparqlog_core::fused::LogSummary)
/// and [`DatasetAnalysis`](sparqlog_core::analysis::DatasetAnalysis) frames.
pub const VERSION: u8 = 2;

/// Upper bound on a single frame's payload (256 MiB). A corrupt or
/// adversarial length prefix must not make the decoder allocate unbounded
/// memory before noticing the stream is short.
pub const MAX_FRAME_BYTES: u64 = 1 << 28;

/// What went wrong while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeErrorKind {
    /// The stream ended in the middle of a header, frame length or frame
    /// payload — a truncated snapshot (e.g. a worker that died mid-write).
    UnexpectedEof,
    /// The stream does not start with [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The stream's version byte is not [`VERSION`] — a worker built against
    /// a different codec revision.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// A varint ran past 10 bytes without terminating.
    VarintOverflow,
    /// A decoded length does not fit the platform's `usize` or the field's
    /// integer width.
    LengthOverflow {
        /// The offending value.
        value: u64,
    },
    /// A frame declared a payload larger than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The declared payload length.
        length: u64,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A field carried a value outside its domain (unknown enum code,
    /// invalid flag bits, non-boolean byte).
    InvalidValue {
        /// Which field kind was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// A frame payload began with an unknown frame tag.
    BadFrameTag {
        /// The tag byte found.
        tag: u8,
    },
    /// A frame payload had bytes left over after its last field.
    TrailingBytes {
        /// How many undecoded bytes remained.
        remaining: usize,
    },
    /// The stream ended cleanly (at a frame boundary) before the epilogue
    /// frame — a worker that exited early without finishing its snapshot.
    MissingEpilogue,
    /// A frame followed the epilogue frame.
    TrailingFrame,
    /// The epilogue's declared log-frame count disagrees with the frames
    /// actually streamed.
    FrameCountMismatch {
        /// The count the epilogue declared.
        declared: u64,
        /// The log frames seen before it.
        seen: u64,
    },
    /// A frame's CRC32C checksum did not match its payload — the bytes were
    /// corrupted in flight (or at rest), not merely truncated.
    ChecksumMismatch {
        /// The checksum the producer declared.
        expected: u32,
        /// The checksum computed over the received payload.
        found: u32,
    },
}

/// A structured decode failure: the fault and the stream offset (in bytes
/// from the start of the snapshot) where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub kind: DecodeErrorKind,
    /// Byte offset into the snapshot stream.
    pub offset: u64,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DecodeErrorKind::UnexpectedEof => write!(f, "truncated snapshot"),
            DecodeErrorKind::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            DecodeErrorKind::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported codec version {found} (this build speaks {VERSION})"
                )
            }
            DecodeErrorKind::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            DecodeErrorKind::LengthOverflow { value } => {
                write!(f, "length {value} overflows the target integer")
            }
            DecodeErrorKind::FrameTooLarge { length } => {
                write!(
                    f,
                    "frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            DecodeErrorKind::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeErrorKind::InvalidValue { what, value } => {
                write!(f, "invalid {what} value {value}")
            }
            DecodeErrorKind::BadFrameTag { tag } => write!(f, "unknown frame tag {tag}"),
            DecodeErrorKind::TrailingBytes { remaining } => {
                write!(f, "{remaining} undecoded bytes at the end of a frame")
            }
            DecodeErrorKind::MissingEpilogue => {
                write!(f, "stream ended before the epilogue frame")
            }
            DecodeErrorKind::TrailingFrame => write!(f, "frame after the epilogue"),
            DecodeErrorKind::FrameCountMismatch { declared, seen } => {
                write!(
                    f,
                    "epilogue declared {declared} log frames but {seen} were streamed"
                )
            }
            DecodeErrorKind::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch (declared {expected:#010x}, computed {found:#010x})"
                )
            }
        }?;
        write!(f, " at byte offset {}", self.offset)
    }
}

impl std::error::Error for DecodeError {}

/// A failure while reading a snapshot stream: either the transport failed
/// ([`StreamError::Io`]) or the bytes arrived but did not decode
/// ([`StreamError::Decode`]).
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The bytes did not decode.
    Decode(DecodeError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(error) => write!(f, "snapshot stream I/O error: {error}"),
            StreamError::Decode(error) => write!(f, "snapshot decode error: {error}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DecodeError> for StreamError {
    fn from(error: DecodeError) -> StreamError {
        StreamError::Decode(error)
    }
}

// ---------------------------------------------------------------------------
// CRC32C.
// ---------------------------------------------------------------------------

/// The reflected Castagnoli polynomial (CRC32C) — the checksum of iSCSI,
/// ext4 and btrfs, chosen over CRC32 (IEEE) for its better error-detection
/// properties on storage-sized payloads.
const CRC32C_POLY: u32 = 0x82F6_3B78;

/// The byte-at-a-time lookup table for [`crc32c`], built at compile time so
/// the hot loop is one table load and one xor per byte — fast enough for
/// snapshot-sized payloads without SIMD or a carryless-multiply intrinsic.
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32C_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
};

/// Computes the CRC32C (Castagnoli) checksum of `bytes`.
///
/// Dependency-free by design, like the rest of the codec: the workspace
/// builds offline, so the checksum is a compile-time table instead of a
/// crates.io import. The standard test vector pins the exact polynomial,
/// reflection and final inversion:
///
/// ```
/// assert_eq!(sparqlog_shard::codec::crc32c(b"123456789"), 0xE306_9283);
/// ```
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// An append-only byte buffer with the codec's primitive writers.
#[derive(Debug, Default)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, value: u8) {
        self.bytes.push(value);
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.bytes.push(u8::from(value));
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7F) as u8;
            value >>= 7;
            if value == 0 {
                self.bytes.push(byte);
                return;
            }
            self.bytes.push(byte | 0x80);
        }
    }

    /// Writes a `u32` as a varint.
    pub fn put_u32(&mut self, value: u32) {
        self.put_varint(u64::from(value));
    }

    /// Writes a `usize` as a varint.
    pub fn put_usize(&mut self, value: usize) {
        self.put_varint(value as u64);
    }

    /// Writes a canonical fingerprint as 16 raw little-endian bytes.
    pub fn put_u128(&mut self, value: u128) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a string as varint length + UTF-8 bytes.
    pub fn put_str(&mut self, value: &str) {
        self.put_usize(value.len());
        self.bytes.extend_from_slice(value.as_bytes());
    }

    /// Writes an `Option<usize>` as `0` (None) or `value + 1` (Some), in one
    /// varint.
    pub fn put_opt_usize(&mut self, value: Option<usize>) {
        match value {
            None => self.put_varint(0),
            Some(v) => self.put_varint(v as u64 + 1),
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// A cursor over a byte slice with the codec's primitive readers. Offsets in
/// errors are relative to the enclosing stream when constructed with
/// [`Decoder::with_base_offset`].
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    position: usize,
    base: u64,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `bytes` with error offsets counted from 0.
    pub fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder::with_base_offset(bytes, 0)
    }

    /// Creates a decoder whose error offsets are `base + position` — used
    /// when `bytes` is a frame payload at a known position in a stream.
    pub fn with_base_offset(bytes: &'a [u8], base: u64) -> Decoder<'a> {
        Decoder {
            bytes,
            position: 0,
            base,
        }
    }

    fn fail(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError {
            kind,
            offset: self.base + self.position as u64,
        }
    }

    /// Undecoded bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.position
    }

    /// Builds a structured invalid-value error pointing at the byte just
    /// consumed — for domain validation a higher-level decoder performs
    /// *after* reading a raw value (unknown enum code, invalid flag bits).
    pub fn invalid(&self, what: &'static str, value: u64) -> DecodeError {
        DecodeError {
            kind: DecodeErrorKind::InvalidValue { what, value },
            offset: (self.base + self.position as u64).saturating_sub(1),
        }
    }

    /// Fails with [`DecodeErrorKind::TrailingBytes`] unless every byte was
    /// consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(self.fail(DecodeErrorKind::TrailingBytes { remaining })),
        }
    }

    /// Reads one raw byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        let Some(&byte) = self.bytes.get(self.position) else {
            return Err(self.fail(DecodeErrorKind::UnexpectedEof));
        };
        self.position += 1;
        Ok(byte)
    }

    /// Reads a boolean byte, rejecting anything but 0 or 1.
    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(self.fail(DecodeErrorKind::InvalidValue {
                what: "boolean",
                value: u64::from(value),
            })),
        }
    }

    /// Reads an unsigned LEB128 varint.
    pub fn take_varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.take_u8()?;
            let bits = u64::from(byte & 0x7F);
            if shift == 63 && bits > 1 {
                return Err(self.fail(DecodeErrorKind::VarintOverflow));
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(self.fail(DecodeErrorKind::VarintOverflow))
    }

    /// Reads a varint that must fit a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let value = self.take_varint()?;
        u32::try_from(value).map_err(|_| self.fail(DecodeErrorKind::LengthOverflow { value }))
    }

    /// Reads a varint that must fit a `usize`.
    pub fn take_usize(&mut self) -> Result<usize, DecodeError> {
        let value = self.take_varint()?;
        usize::try_from(value).map_err(|_| self.fail(DecodeErrorKind::LengthOverflow { value }))
    }

    /// Reads a 16-byte little-endian fingerprint.
    pub fn take_u128(&mut self) -> Result<u128, DecodeError> {
        let end = self.position + 16;
        let Some(slice) = self.bytes.get(self.position..end) else {
            return Err(self.fail(DecodeErrorKind::UnexpectedEof));
        };
        let array: [u8; 16] = slice.try_into().expect("slice is exactly 16 bytes");
        self.position = end;
        Ok(u128::from_le_bytes(array))
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, DecodeError> {
        let length = self.take_usize()?;
        let end = match self.position.checked_add(length) {
            Some(end) if end <= self.bytes.len() => end,
            _ => return Err(self.fail(DecodeErrorKind::UnexpectedEof)),
        };
        let slice = &self.bytes[self.position..end];
        let text = std::str::from_utf8(slice)
            .map_err(|_| self.fail(DecodeErrorKind::InvalidUtf8))?
            .to_string();
        self.position = end;
        Ok(text)
    }

    /// Reads an `Option<usize>` written by [`Encoder::put_opt_usize`].
    pub fn take_opt_usize(&mut self) -> Result<Option<usize>, DecodeError> {
        let value = self.take_varint()?;
        match value {
            0 => Ok(None),
            v => usize::try_from(v - 1)
                .map(Some)
                .map_err(|_| self.fail(DecodeErrorKind::LengthOverflow { value })),
        }
    }
}

// ---------------------------------------------------------------------------
// Stream framing.
// ---------------------------------------------------------------------------

/// Writes the stream header: [`MAGIC`] + [`VERSION`].
pub fn write_stream_header(out: &mut impl Write) -> io::Result<()> {
    out.write_all(&MAGIC)?;
    out.write_all(&[VERSION])
}

/// Writes one frame: varint payload length + payload bytes.
pub fn write_frame(out: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut length = Encoder::new();
    length.put_usize(payload.len());
    out.write_all(&length.into_bytes())?;
    out.write_all(payload)
}

/// An incremental reader of a snapshot stream: header first, then frames
/// until a clean end-of-stream. Tracks the byte offset so every error names
/// the position it happened at, and so callers can report snapshot sizes.
#[derive(Debug)]
pub struct FrameReader<R> {
    reader: R,
    offset: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(reader: R) -> FrameReader<R> {
        FrameReader { reader, offset: 0 }
    }

    /// Bytes consumed so far — after the stream drains, the snapshot size.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn fail(&self, kind: DecodeErrorKind) -> StreamError {
        StreamError::Decode(DecodeError {
            kind,
            offset: self.offset,
        })
    }

    /// Reads one byte; `Ok(None)` on end of stream.
    fn next_byte(&mut self) -> Result<Option<u8>, StreamError> {
        let mut byte = [0u8; 1];
        loop {
            match self.reader.read(&mut byte) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.offset += 1;
                    return Ok(Some(byte[0]));
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(error) => return Err(StreamError::Io(error)),
            }
        }
    }

    fn read_exact(&mut self, buffer: &mut [u8]) -> Result<(), StreamError> {
        let mut filled = 0;
        while filled < buffer.len() {
            match self.reader.read(&mut buffer[filled..]) {
                Ok(0) => return Err(self.fail(DecodeErrorKind::UnexpectedEof)),
                Ok(n) => {
                    filled += n;
                    self.offset += n as u64;
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(error) => return Err(StreamError::Io(error)),
            }
        }
        Ok(())
    }

    /// Reads and validates the stream header. Call once, before the first
    /// [`FrameReader::next_frame`].
    pub fn read_header(&mut self) -> Result<(), StreamError> {
        let mut magic = [0u8; 4];
        self.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(StreamError::Decode(DecodeError {
                kind: DecodeErrorKind::BadMagic { found: magic },
                offset: 0,
            }));
        }
        let Some(version) = self.next_byte()? else {
            return Err(self.fail(DecodeErrorKind::UnexpectedEof));
        };
        if version != VERSION {
            return Err(StreamError::Decode(DecodeError {
                kind: DecodeErrorKind::UnsupportedVersion { found: version },
                offset: 4,
            }));
        }
        Ok(())
    }

    /// Reads the next frame's payload, or `Ok(None)` on a clean end of
    /// stream (EOF exactly at a frame boundary). A stream that ends inside a
    /// length prefix or payload fails with [`DecodeErrorKind::UnexpectedEof`].
    /// Returns the payload and its base offset in the stream (for error
    /// reporting inside the payload).
    pub fn next_frame(&mut self) -> Result<Option<(Vec<u8>, u64)>, StreamError> {
        // Varint length, read byte-by-byte so a clean EOF is only accepted
        // before the first byte.
        let Some(first) = self.next_byte()? else {
            return Ok(None);
        };
        let mut length = u64::from(first & 0x7F);
        let mut byte = first;
        let mut shift = 7u32;
        while byte & 0x80 != 0 {
            if shift >= 64 {
                return Err(self.fail(DecodeErrorKind::VarintOverflow));
            }
            let Some(next) = self.next_byte()? else {
                return Err(self.fail(DecodeErrorKind::UnexpectedEof));
            };
            byte = next;
            let bits = u64::from(byte & 0x7F);
            if shift == 63 && bits > 1 {
                return Err(self.fail(DecodeErrorKind::VarintOverflow));
            }
            length |= bits << shift;
            shift += 7;
        }
        if length > MAX_FRAME_BYTES {
            return Err(self.fail(DecodeErrorKind::FrameTooLarge { length }));
        }
        let base = self.offset;
        let mut payload = vec![0u8; length as usize];
        self.read_exact(&mut payload)?;
        Ok(Some((payload, base)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_the_published_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // One flipped bit anywhere changes the checksum.
        let bytes = b"the quick brown fox".to_vec();
        let reference = crc32c(&bytes);
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&flipped), reference, "bit {bit}");
        }
    }

    #[test]
    fn varints_round_trip_across_the_width_boundaries() {
        for value in [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut encoder = Encoder::new();
            encoder.put_varint(value);
            let bytes = encoder.into_bytes();
            let mut decoder = Decoder::new(&bytes);
            assert_eq!(decoder.take_varint().unwrap(), value);
            decoder.finish().unwrap();
        }
    }

    #[test]
    fn varint_overflow_is_detected() {
        // Eleven continuation bytes can never be a valid u64.
        let bytes = [0xFFu8; 11];
        let mut decoder = Decoder::new(&bytes);
        assert_eq!(
            decoder.take_varint().unwrap_err().kind,
            DecodeErrorKind::VarintOverflow
        );
        // Ten bytes whose top bits exceed 64 bits of payload.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        let mut decoder = Decoder::new(&bytes);
        assert_eq!(
            decoder.take_varint().unwrap_err().kind,
            DecodeErrorKind::VarintOverflow
        );
    }

    #[test]
    fn primitives_round_trip() {
        let mut encoder = Encoder::new();
        encoder.put_u8(7);
        encoder.put_bool(true);
        encoder.put_bool(false);
        encoder.put_u32(u32::MAX);
        encoder.put_u128(u128::MAX - 5);
        encoder.put_str("héllo");
        encoder.put_str("");
        encoder.put_opt_usize(None);
        encoder.put_opt_usize(Some(0));
        encoder.put_opt_usize(Some(41));
        let bytes = encoder.into_bytes();
        let mut decoder = Decoder::new(&bytes);
        assert_eq!(decoder.take_u8().unwrap(), 7);
        assert!(decoder.take_bool().unwrap());
        assert!(!decoder.take_bool().unwrap());
        assert_eq!(decoder.take_u32().unwrap(), u32::MAX);
        assert_eq!(decoder.take_u128().unwrap(), u128::MAX - 5);
        assert_eq!(decoder.take_str().unwrap(), "héllo");
        assert_eq!(decoder.take_str().unwrap(), "");
        assert_eq!(decoder.take_opt_usize().unwrap(), None);
        assert_eq!(decoder.take_opt_usize().unwrap(), Some(0));
        assert_eq!(decoder.take_opt_usize().unwrap(), Some(41));
        decoder.finish().unwrap();
    }

    #[test]
    fn invalid_primitive_values_are_structured_errors() {
        let mut decoder = Decoder::new(&[2]);
        assert!(matches!(
            decoder.take_bool().unwrap_err().kind,
            DecodeErrorKind::InvalidValue {
                what: "boolean",
                value: 2
            }
        ));
        let mut encoder = Encoder::new();
        encoder.put_varint(u64::from(u32::MAX) + 1);
        let bytes = encoder.into_bytes();
        let mut decoder = Decoder::new(&bytes);
        assert!(matches!(
            decoder.take_u32().unwrap_err().kind,
            DecodeErrorKind::LengthOverflow { .. }
        ));
        let mut encoder = Encoder::new();
        encoder.put_usize(5);
        encoder.put_u8(0xFF); // not UTF-8 at this length
        let mut bytes = encoder.into_bytes();
        bytes.extend_from_slice(&[0xFE, 0xFD, 0xFC, 0xFB]);
        let mut decoder = Decoder::new(&bytes);
        assert_eq!(
            decoder.take_str().unwrap_err().kind,
            DecodeErrorKind::InvalidUtf8
        );
    }

    #[test]
    fn trailing_bytes_fail_finish_with_the_count() {
        let mut encoder = Encoder::new();
        encoder.put_varint(1);
        encoder.put_varint(2);
        let bytes = encoder.into_bytes();
        let mut decoder = Decoder::new(&bytes);
        decoder.take_varint().unwrap();
        assert_eq!(
            decoder.finish().unwrap_err().kind,
            DecodeErrorKind::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let mut stream = Vec::new();
        write_stream_header(&mut stream).unwrap();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[0x80; 300]).unwrap();
        let mut reader = FrameReader::new(stream.as_slice());
        reader.read_header().unwrap();
        let (payload, base) = reader.next_frame().unwrap().unwrap();
        assert_eq!(payload, b"alpha");
        assert_eq!(base, 6); // magic(4) + version(1) + length(1)
        assert_eq!(reader.next_frame().unwrap().unwrap().0, b"");
        assert_eq!(reader.next_frame().unwrap().unwrap().0.len(), 300);
        assert!(reader.next_frame().unwrap().is_none());
        assert_eq!(reader.offset(), stream.len() as u64);
    }

    #[test]
    fn header_faults_are_structured() {
        let mut reader = FrameReader::new(&b"NOPE\x01"[..]);
        let StreamError::Decode(error) = reader.read_header().unwrap_err() else {
            panic!("expected a decode error");
        };
        assert_eq!(error.kind, DecodeErrorKind::BadMagic { found: *b"NOPE" });

        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        stream.push(VERSION + 1);
        let mut reader = FrameReader::new(stream.as_slice());
        let StreamError::Decode(error) = reader.read_header().unwrap_err() else {
            panic!("expected a decode error");
        };
        assert_eq!(
            error.kind,
            DecodeErrorKind::UnsupportedVersion { found: VERSION + 1 }
        );

        let mut reader = FrameReader::new(&MAGIC[..3]);
        let StreamError::Decode(error) = reader.read_header().unwrap_err() else {
            panic!("expected a decode error");
        };
        assert_eq!(error.kind, DecodeErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_frames_fail_with_eof_and_offset() {
        let mut stream = Vec::new();
        write_stream_header(&mut stream).unwrap();
        write_frame(&mut stream, b"0123456789").unwrap();
        // Cut the stream inside the payload.
        stream.truncate(stream.len() - 4);
        let mut reader = FrameReader::new(stream.as_slice());
        reader.read_header().unwrap();
        let StreamError::Decode(error) = reader.next_frame().unwrap_err() else {
            panic!("expected a decode error");
        };
        assert_eq!(error.kind, DecodeErrorKind::UnexpectedEof);
        assert_eq!(error.offset, stream.len() as u64);
    }

    #[test]
    fn oversized_frame_lengths_are_rejected_before_allocation() {
        let mut stream = Vec::new();
        write_stream_header(&mut stream).unwrap();
        let mut length = Encoder::new();
        length.put_varint(MAX_FRAME_BYTES + 1);
        stream.extend_from_slice(&length.into_bytes());
        let mut reader = FrameReader::new(stream.as_slice());
        reader.read_header().unwrap();
        let StreamError::Decode(error) = reader.next_frame().unwrap_err() else {
            panic!("expected a decode error");
        };
        assert!(matches!(error.kind, DecodeErrorKind::FrameTooLarge { .. }));
    }
}
