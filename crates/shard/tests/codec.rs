//! Property tests of the snapshot codec: round-trips over arbitrary
//! [`LogSummary`] / tally values and over analyses of synthesized corpora,
//! plus the structured decode errors — truncated input at *every* strict
//! prefix length, wrong version bytes, bad magic, bad tags, trailing bytes.

use proptest::prelude::*;
use sparqlog_core::analysis::{CorpusAnalysis, DatasetAnalysis, Population};
use sparqlog_core::cache::CacheStats;
use sparqlog_core::corpus::{ingest, CorpusCounts, FusedStats, LogSummary, RawLog};
use sparqlog_core::{ErrorKind, ErrorTally};
use sparqlog_obs::{HistogramSnapshot, MetricsSnapshot};
use sparqlog_paths::{PathExpressionType, PathTally, TypeEntry};
use sparqlog_shard::codec::{
    write_stream_header, DecodeErrorKind, Decoder, Encoder, StreamError, MAGIC, VERSION,
};
use sparqlog_shard::snapshot::{read_snapshot, EpilogueFrame, Frame, LogFrame, Snapshot};
use sparqlog_synth::{generate_single_day_log, Dataset};
use std::collections::BTreeMap;

/// Builds a `u128` fingerprint from two generated halves.
fn fingerprint(hi: u64, lo: u64) -> u128 {
    (u128::from(hi) << 64) | u128::from(lo)
}

/// An analysed dataset with non-trivial values in every tally family.
fn analysed_dataset(entries: &[String], label: &str) -> DatasetAnalysis {
    let log = ingest(&RawLog::new(label, entries.to_vec()));
    let corpus = CorpusAnalysis::analyze(&[log], Population::Unique);
    corpus.datasets.into_iter().next().unwrap()
}

/// Entries of a synthesized day log (varied, real-shaped queries).
fn synthesized_entries(dataset: Dataset, count: usize, seed: u64) -> Vec<String> {
    generate_single_day_log(dataset, count as u64, seed).entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn corpus_counts_round_trip(
        total in 0u64..=u64::MAX,
        valid in 0u64..=u64::MAX,
        unique in 0u64..=u64::MAX,
        bodyless in 0u64..=u64::MAX,
    ) {
        let counts = CorpusCounts { total, valid, unique, bodyless };
        prop_assert_eq!(CorpusCounts::from_bytes(&counts.to_bytes()).unwrap(), counts);
    }

    #[test]
    fn cache_and_fused_stats_round_trip(
        hits in 0u64..=u64::MAX,
        misses in 0u64..=u64::MAX,
        distinct in 0u64..1_000_000,
    ) {
        let cache = CacheStats { hits, misses, distinct };
        prop_assert_eq!(CacheStats::from_bytes(&cache.to_bytes()).unwrap(), cache);
        let fused = FusedStats {
            batches: hits,
            peak_inflight_entries: distinct as usize,
            distinct_forms: misses,
        };
        prop_assert_eq!(FusedStats::from_bytes(&fused.to_bytes()).unwrap(), fused);
    }

    #[test]
    fn arbitrary_log_summaries_round_trip(
        label in "[ -~]{0,40}",
        pairs in prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX), 0..32),
        total in 0u64..=u64::MAX,
    ) {
        // Occurrence lists are sorted by fingerprint in real summaries, but
        // the codec must round-trip any list faithfully.
        let occurrences: Vec<(u128, u64)> = pairs
            .iter()
            .map(|&(hi, lo, count)| (fingerprint(hi, lo), count))
            .collect();
        // An arbitrary (but derived, hence reproducible) error tally: the
        // codec must carry any kind/position mix faithfully.
        let mut errors = ErrorTally::default();
        for &(hi, lo, _) in &pairs {
            errors.record(ErrorKind::ALL[(hi % 6) as usize], lo);
        }
        let summary = LogSummary {
            label,
            counts: CorpusCounts {
                total,
                // Wrapping: the codec must carry any u64, overflow-free sums
                // are the engine's concern, not the wire format's.
                valid: occurrences
                    .iter()
                    .fold(1u64, |sum, &(_, count)| sum.wrapping_add(count)),
                unique: occurrences.len() as u64,
                bodyless: total / 2,
            },
            occurrences,
            errors,
        };
        prop_assert_eq!(LogSummary::from_bytes(&summary.to_bytes()).unwrap(), summary);
    }

    #[test]
    fn arbitrary_path_tallies_round_trip(
        entries in prop::collection::vec(
            (0u8..25, 0u64..=u64::MAX, 0usize..1000, 0usize..1000),
            0..25,
        ),
        total in 0u64..=u64::MAX,
    ) {
        let mut by_type = BTreeMap::new();
        for &(code, count, min_k, max_k) in &entries {
            let ty = PathExpressionType::from_code(code).unwrap();
            by_type.insert(ty, TypeEntry {
                count,
                min_k: (min_k % 3 != 0).then_some(min_k),
                max_k: (max_k % 4 != 0).then_some(max_k),
            });
        }
        let tally = PathTally {
            total,
            negated_literal: total / 3,
            inverse_literal: total / 5,
            by_type,
            with_inverse: total / 7,
            potentially_hard: total / 11,
        };
        prop_assert_eq!(PathTally::from_bytes(&tally.to_bytes()).unwrap(), tally);
    }

    #[test]
    fn synthesized_dataset_analyses_round_trip(
        count in 20usize..60,
        seed in 0u64..5000,
        dataset_pick in 0usize..3,
    ) {
        let dataset = [Dataset::DBpedia15, Dataset::WikiData17, Dataset::BioP13][dataset_pick];
        let analysis = analysed_dataset(
            &synthesized_entries(dataset, count, seed),
            dataset.label(),
        );
        let bytes = analysis.to_bytes();
        prop_assert_eq!(DatasetAnalysis::from_bytes(&bytes).unwrap(), analysis);
    }

    #[test]
    fn every_strict_prefix_of_an_encoding_fails_to_decode(
        count in 10usize..30,
        seed in 0u64..1000,
    ) {
        // Truncation anywhere must yield an error — never a silently wrong
        // value. (UnexpectedEof for a short field; TrailingBytes can never
        // occur on a prefix, but a prefix may end exactly between fields,
        // where `finish()` catches the missing tail as UnexpectedEof on the
        // next read.)
        let analysis = analysed_dataset(
            &synthesized_entries(Dataset::DBpedia15, count, seed),
            "prefix-test",
        );
        let bytes = analysis.to_bytes();
        // Cover all short prefixes and a sample of longer ones (the full
        // quadratic sweep would be slow at 24 cases).
        let step = (bytes.len() / 64).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            prop_assert!(
                DatasetAnalysis::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                bytes.len()
            );
        }
    }

    #[test]
    fn log_frames_round_trip_through_the_stream(
        count in 10usize..40,
        seed in 0u64..1000,
        index in 0u64..64,
    ) {
        let entries = synthesized_entries(Dataset::WikiData17, count, seed);
        let analysis = analysed_dataset(&entries, "stream-test");
        let frame = LogFrame {
            index,
            summary: LogSummary {
                label: analysis.label.clone(),
                counts: analysis.counts,
                occurrences: vec![(fingerprint(seed, count as u64), 2)],
                errors: analysis.errors.clone(),
            },
            analysis,
        };
        let epilogue = EpilogueFrame {
            log_frames: 1,
            cache: CacheStats { hits: seed, misses: count as u64, distinct: 3 },
            fused: FusedStats {
                batches: 1,
                peak_inflight_entries: count,
                distinct_forms: 3,
            },
            metrics: MetricsSnapshot {
                counters: vec![("pipeline_entries_total".to_string(), count as u64)],
                gauges: vec![("cache_distinct_forms".to_string(), -(seed as i64))],
                histograms: vec![(
                    "pipeline_parse_us".to_string(),
                    HistogramSnapshot {
                        count: 2,
                        sum: seed + 10,
                        max: seed + 9,
                        buckets: vec![(1, 1), (seed.max(2), 1)],
                    },
                )],
            },
        };
        let mut stream = Vec::new();
        write_stream_header(&mut stream).unwrap();
        Frame::from(frame.clone()).write_to(&mut stream).unwrap();
        Frame::Epilogue(epilogue.clone()).write_to(&mut stream).unwrap();
        let (snapshot, bytes) = read_snapshot(stream.as_slice()).unwrap();
        prop_assert_eq!(bytes, stream.len() as u64);
        prop_assert_eq!(&snapshot.logs[..], std::slice::from_ref(&frame));
        prop_assert_eq!(snapshot.epilogue, epilogue);

        // Every strict prefix of the framed stream is a structured error.
        let step = (stream.len() / 48).max(1);
        for cut in (0..stream.len()).step_by(step) {
            prop_assert!(
                read_snapshot(&stream[..cut]).is_err(),
                "stream prefix of {cut}/{} bytes decoded successfully",
                stream.len()
            );
        }
    }
}

#[test]
fn wrong_version_and_bad_magic_are_rejected_up_front() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&MAGIC);
    stream.push(VERSION + 1);
    let StreamError::Decode(error) = read_snapshot(stream.as_slice()).unwrap_err() else {
        panic!("expected a decode error");
    };
    assert_eq!(
        error.kind,
        DecodeErrorKind::UnsupportedVersion { found: VERSION + 1 }
    );

    let StreamError::Decode(error) = read_snapshot(&b"XXXX\x01"[..]).unwrap_err() else {
        panic!("expected a decode error");
    };
    assert_eq!(error.kind, DecodeErrorKind::BadMagic { found: *b"XXXX" });
}

#[test]
fn unknown_wire_codes_are_invalid_value_errors() {
    // A PathTally whose map declares one entry with an unknown type code.
    let mut encoder = Encoder::new();
    encoder.put_varint(1); // total
    encoder.put_varint(0); // negated_literal
    encoder.put_varint(0); // inverse_literal
    encoder.put_usize(1); // map length
    encoder.put_u8(200); // bogus type code
    let bytes = encoder.into_bytes();
    let mut decoder = Decoder::new(&bytes);
    let error = PathTally::decode(&mut decoder).unwrap_err();
    assert!(
        matches!(
            error.kind,
            DecodeErrorKind::InvalidValue {
                what: "path-expression-type code",
                value: 200
            }
        ),
        "{error:?}"
    );
}

#[test]
fn duplicate_map_keys_are_rejected() {
    use sparqlog_algebra::{OpSetTally, OperatorSet};
    // An OpSetTally whose map declares the same operator set twice: the
    // second entry must fail the decode, not silently overwrite the first
    // (which would leave entries that no longer sum to the encoded total).
    let mut encoder = Encoder::new();
    encoder.put_usize(2); // map length
    encoder.put_u8(OperatorSet::FILTER);
    encoder.put_varint(3);
    encoder.put_u8(OperatorSet::FILTER); // duplicate key
    encoder.put_varint(4);
    encoder.put_varint(0); // other_features
    encoder.put_varint(7); // total
    let bytes = encoder.into_bytes();
    let error = OpSetTally::from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(
            error.kind,
            DecodeErrorKind::InvalidValue {
                what: "duplicate operator-set key",
                ..
            }
        ),
        "{error:?}"
    );
}

#[test]
fn trailing_bytes_after_a_value_are_rejected() {
    let counts = CorpusCounts {
        total: 9,
        valid: 8,
        unique: 7,
        bodyless: 1,
    };
    let mut bytes = counts.to_bytes();
    bytes.push(0);
    let error = CorpusCounts::from_bytes(&bytes).unwrap_err();
    assert_eq!(error.kind, DecodeErrorKind::TrailingBytes { remaining: 1 });
}

/// A minimal log frame (default tallies) for the framing-level tests.
fn tiny_log_frame() -> Frame {
    Frame::from(LogFrame {
        index: 0,
        summary: LogSummary {
            label: "crc-test".to_string(),
            counts: CorpusCounts::default(),
            occurrences: Vec::new(),
            errors: ErrorTally::default(),
        },
        analysis: DatasetAnalysis {
            label: "crc-test".to_string(),
            ..DatasetAnalysis::default()
        },
    })
}

fn tiny_epilogue() -> Frame {
    Frame::Epilogue(EpilogueFrame {
        log_frames: 1,
        ..EpilogueFrame::default()
    })
}

#[test]
fn checksummed_streams_round_trip_and_catch_silent_corruption() {
    let frame = tiny_log_frame();
    let mut stream = Vec::new();
    write_stream_header(&mut stream).unwrap();
    let header_len = stream.len();
    let payload = frame.to_payload();
    frame.write_checked_to(&mut stream).unwrap();
    tiny_epilogue().write_checked_to(&mut stream).unwrap();

    // The checked stream decodes, and the checksum frames are invisible to
    // the snapshot (no extra logs, same epilogue).
    let (snapshot, bytes) = read_snapshot(stream.as_slice()).unwrap();
    assert_eq!(bytes, stream.len() as u64);
    assert_eq!(snapshot.logs.len(), 1);

    // Flip the low bit of the log payload's last byte: the frame still
    // *decodes* (a terminal varint changes value, nothing else moves), so
    // without the checksum this corruption would be silent — the CRC frame
    // right behind it must catch it.
    let mut length_prefix = Encoder::new();
    length_prefix.put_usize(payload.len());
    let corrupt_at = header_len + length_prefix.into_bytes().len() + payload.len() - 1;
    let mut corrupted = stream.clone();
    corrupted[corrupt_at] ^= 1;
    let StreamError::Decode(error) = read_snapshot(corrupted.as_slice()).unwrap_err() else {
        panic!("expected a decode error");
    };
    assert!(
        matches!(error.kind, DecodeErrorKind::ChecksumMismatch { .. }),
        "{error:?}"
    );
}

#[test]
fn orphan_and_misaligned_checksum_frames_are_structured_errors() {
    use sparqlog_shard::codec::crc32c;
    use sparqlog_shard::snapshot::CrcFrame;

    // A checksum frame with nothing before it to cover.
    let mut stream = Vec::new();
    write_stream_header(&mut stream).unwrap();
    Frame::Crc(CrcFrame { crc: 7, covered: 9 })
        .write_to(&mut stream)
        .unwrap();
    let StreamError::Decode(error) = read_snapshot(stream.as_slice()).unwrap_err() else {
        panic!("expected a decode error");
    };
    assert!(
        matches!(
            error.kind,
            DecodeErrorKind::InvalidValue {
                what: "checksum frame with no frame to cover",
                ..
            }
        ),
        "{error:?}"
    );

    // A checksum frame declaring the wrong coverage length (misaligned —
    // it would otherwise be verified against the wrong frame).
    let frame = tiny_log_frame();
    let payload = frame.to_payload();
    let mut stream = Vec::new();
    write_stream_header(&mut stream).unwrap();
    frame.write_to(&mut stream).unwrap();
    Frame::Crc(CrcFrame {
        crc: crc32c(&payload),
        covered: payload.len() as u64 + 1,
    })
    .write_to(&mut stream)
    .unwrap();
    let StreamError::Decode(error) = read_snapshot(stream.as_slice()).unwrap_err() else {
        panic!("expected a decode error");
    };
    assert!(
        matches!(
            error.kind,
            DecodeErrorKind::InvalidValue {
                what: "checksum coverage length",
                ..
            }
        ),
        "{error:?}"
    );
}

#[test]
fn summaries_split_across_processes_merge_to_the_whole() {
    // The wire format's cross-process merge hook: summaries of two halves of
    // one log, round-tripped through the codec, merge back to the whole-log
    // summary.
    let entries = synthesized_entries(Dataset::BioP13, 40, 77);
    let (first_half, second_half) = entries.split_at(entries.len() / 2);
    let whole = summary_of(&entries);
    let first = LogSummary::from_bytes(&summary_of(first_half).to_bytes()).unwrap();
    let second = LogSummary::from_bytes(&summary_of(second_half).to_bytes()).unwrap();
    let mut merged = first;
    merged.merge(&second);
    assert_eq!(merged, whole);
}

fn summary_of(entries: &[String]) -> LogSummary {
    use sparqlog_core::corpus::{analyze_streams, LogReader, MemoryLogReader};
    let readers: Vec<Box<dyn LogReader>> = vec![Box::new(MemoryLogReader::new(
        "merge-test",
        entries.to_vec(),
    ))];
    analyze_streams(readers, Population::Valid)
        .expect("in-memory streams")
        .summaries
        .remove(0)
}
