//! Integration tests for the SPARQL parser on realistic queries, including
//! the example queries that appear in the paper.

use sparqlog_parser::ast::*;
use sparqlog_parser::{parse_query, to_canonical_string};

fn count_triples(g: &GroupGraphPattern) -> usize {
    let mut n = 0;
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => n += ts.len(),
            GroupElement::Optional(g)
            | GroupElement::Minus(g)
            | GroupElement::Group(g)
            | GroupElement::Graph { pattern: g, .. }
            | GroupElement::Service { pattern: g, .. } => n += count_triples(g),
            GroupElement::Union(bs) => n += bs.iter().map(count_triples).sum::<usize>(),
            GroupElement::SubSelect(q) => {
                if let Some(w) = &q.where_clause {
                    n += count_triples(w);
                }
            }
            _ => {}
        }
    }
    n
}

#[test]
fn parses_wikidata_archaeological_sites_example() {
    // The "Locations of archaeological sites" query quoted in Section 3.
    let q = parse_query(
        r#"
        PREFIX wdt: <http://www.wikidata.org/prop/direct/>
        PREFIX wd: <http://www.wikidata.org/entity/>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        SELECT ?label ?coord ?subj
        WHERE
        { ?subj wdt:P31/wdt:P279* wd:Q839954 .
          ?subj wdt:P625 ?coord .
          ?subj rdfs:label ?label filter(lang(?label)="en")
        }"#,
    )
    .unwrap();
    assert_eq!(q.form, QueryForm::Select);
    let body = q.where_clause.as_ref().unwrap();
    // One property-path pattern + two triple patterns.
    let GroupElement::Triples(ts) = &body.elements[0] else {
        panic!("expected triples")
    };
    assert_eq!(ts.len(), 3);
    assert!(matches!(ts[0], TripleOrPath::Path(_)));
    assert!(matches!(ts[1], TripleOrPath::Triple(_)));
    // The filter is attached after the triples block.
    assert!(body
        .elements
        .iter()
        .any(|e| matches!(e, GroupElement::Filter(_))));
}

#[test]
fn parses_example_5_1_chain_and_variable_predicate_queries() {
    let chain = parse_query("ASK WHERE {?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4}").unwrap();
    assert_eq!(chain.form, QueryForm::Ask);
    assert_eq!(count_triples(chain.where_clause.as_ref().unwrap()), 3);

    let varpred = parse_query("ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}").unwrap();
    let body = varpred.where_clause.unwrap();
    let GroupElement::Triples(ts) = &body.elements[0] else {
        panic!()
    };
    let TripleOrPath::Triple(t0) = &ts[0] else {
        panic!()
    };
    assert!(t0.predicate.is_var());
}

#[test]
fn parses_example_5_4_nested_optionals() {
    let p1 = parse_query(
        "SELECT * WHERE { { ?A <name> ?N OPTIONAL { ?A <email> ?E } } OPTIONAL { ?A <webPage> ?W } }",
    )
    .unwrap();
    let p2 = parse_query(
        "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E OPTIONAL { ?A <webPage> ?W } } }",
    )
    .unwrap();
    assert_eq!(count_triples(p1.where_clause.as_ref().unwrap()), 3);
    assert_eq!(count_triples(p2.where_clause.as_ref().unwrap()), 3);
}

#[test]
fn parses_predicate_object_lists_and_object_lists() {
    let q = parse_query(
        "SELECT ?p WHERE { ?p a <http://ex.org/Person> ; <http://ex.org/name> ?n , ?m ; <http://ex.org/age> 42 . }",
    )
    .unwrap();
    assert_eq!(count_triples(q.where_clause.as_ref().unwrap()), 4);
}

#[test]
fn parses_blank_node_property_lists() {
    let q = parse_query(
        "SELECT ?n WHERE { ?x <http://ex.org/knows> [ <http://ex.org/name> ?n ; a <http://ex.org/Person> ] }",
    )
    .unwrap();
    // [ name ?n ; a Person ] expands to 2 triples + the outer knows triple.
    assert_eq!(count_triples(q.where_clause.as_ref().unwrap()), 3);
}

#[test]
fn parses_rdf_collections() {
    let q = parse_query("SELECT ?x WHERE { ?x <http://ex.org/list> (1 2 3) }").unwrap();
    // 3 first/rest pairs + 1 outer triple.
    assert_eq!(count_triples(q.where_clause.as_ref().unwrap()), 7);
}

#[test]
fn parses_union_chains() {
    let q = parse_query(
        "SELECT ?x WHERE { { ?x a <http://A> } UNION { ?x a <http://B> } UNION { ?x a <http://C> } }",
    )
    .unwrap();
    let body = q.where_clause.unwrap();
    let GroupElement::Union(branches) = &body.elements[0] else {
        panic!("expected union")
    };
    assert_eq!(branches.len(), 3);
}

#[test]
fn parses_graph_and_service_blocks() {
    let q = parse_query(
        "SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } SERVICE SILENT <http://endpoint> { ?s a ?c } }",
    )
    .unwrap();
    let body = q.where_clause.unwrap();
    assert!(matches!(body.elements[0], GroupElement::Graph { .. }));
    assert!(matches!(
        body.elements[1],
        GroupElement::Service { silent: true, .. }
    ));
}

#[test]
fn parses_minus_bind_values() {
    let q = parse_query(
        r#"SELECT ?x WHERE {
             ?x a <http://A> .
             MINUS { ?x a <http://B> }
             BIND(<http://f>(?x) AS ?y)
             VALUES ?z { <http://v1> <http://v2> UNDEF }
           }"#,
    )
    .unwrap();
    let body = q.where_clause.unwrap();
    assert!(body
        .elements
        .iter()
        .any(|e| matches!(e, GroupElement::Minus(_))));
    assert!(body
        .elements
        .iter()
        .any(|e| matches!(e, GroupElement::Bind { .. })));
    let values = body
        .elements
        .iter()
        .find_map(|e| match e {
            GroupElement::Values(d) => Some(d),
            _ => None,
        })
        .unwrap();
    assert_eq!(values.variables, vec!["z"]);
    assert_eq!(values.rows.len(), 3);
    assert_eq!(values.rows[2], vec![None]);
}

#[test]
fn parses_subqueries() {
    let q = parse_query(
        "SELECT ?x WHERE { ?x a <http://A> . { SELECT ?x (COUNT(?y) AS ?c) WHERE { ?x <http://p> ?y } GROUP BY ?x } }",
    )
    .unwrap();
    let body = q.where_clause.unwrap();
    let sub = body
        .elements
        .iter()
        .find_map(|e| match e {
            GroupElement::SubSelect(q) => Some(q),
            _ => None,
        })
        .expect("subquery");
    assert_eq!(sub.form, QueryForm::Select);
    assert_eq!(sub.modifiers.group_by.len(), 1);
}

#[test]
fn parses_aggregates_and_having() {
    let q = parse_query(
        "SELECT ?g (SUM(?v) AS ?total) (AVG(?v) AS ?mean) WHERE { ?x <http://in> ?g ; <http://val> ?v } GROUP BY ?g HAVING (SUM(?v) > 10) ORDER BY DESC(?total) LIMIT 5 OFFSET 2",
    )
    .unwrap();
    assert_eq!(q.modifiers.group_by.len(), 1);
    assert_eq!(q.modifiers.having.len(), 1);
    assert_eq!(q.modifiers.order_by.len(), 1);
    assert_eq!(q.modifiers.limit, Some(5));
    assert_eq!(q.modifiers.offset, Some(2));
    let Projection::Items(items) = &q.projection else {
        panic!()
    };
    assert_eq!(items.len(), 3);
    assert!(items[1]
        .expr
        .as_ref()
        .unwrap()
        .variables()
        .contains(&"v".to_string()));
}

#[test]
fn parses_filter_builtins_exists_regex_in() {
    let q = parse_query(
        r#"SELECT ?x WHERE {
             ?x <http://p> ?v .
             FILTER(REGEX(STR(?v), "^foo", "i") && ?v != "bar"@en)
             FILTER NOT EXISTS { ?x a <http://Hidden> }
             FILTER(?x IN (<http://a>, <http://b>))
           }"#,
    )
    .unwrap();
    let body = q.where_clause.unwrap();
    let filters: Vec<_> = body
        .elements
        .iter()
        .filter_map(|e| match e {
            GroupElement::Filter(f) => Some(f),
            _ => None,
        })
        .collect();
    assert_eq!(filters.len(), 3);
    assert!(filters[1].contains_exists());
    assert!(matches!(filters[2], Expression::In(_, list) if list.len() == 2));
}

#[test]
fn parses_property_path_forms() {
    for (path, expect_trivial) in [
        ("<http://a>", true),
        ("^<http://a>", false),
        ("!<http://a>", false),
        ("!(<http://a>|^<http://b>)", false),
        ("<http://a>/<http://b>/<http://c>", false),
        ("<http://a>|<http://b>", false),
        ("<http://a>*", false),
        ("<http://a>+", false),
        ("<http://a>?", false),
        ("(<http://a>/<http://b>)*", false),
        ("<http://a>*/<http://b>", false),
    ] {
        let q = parse_query(&format!("ASK {{ ?s {path} ?o }}")).unwrap();
        let body = q.where_clause.unwrap();
        let GroupElement::Triples(ts) = &body.elements[0] else {
            panic!()
        };
        match &ts[0] {
            TripleOrPath::Triple(_) => assert!(expect_trivial, "{path} should not be trivial"),
            TripleOrPath::Path(_) => assert!(!expect_trivial, "{path} should be trivial"),
        }
    }
}

#[test]
fn parses_describe_variants() {
    let q = parse_query("DESCRIBE <http://example.org/thing>").unwrap();
    assert_eq!(q.form, QueryForm::Describe);
    assert!(!q.has_body());

    let q = parse_query("DESCRIBE ?x WHERE { ?x a <http://C> } LIMIT 1").unwrap();
    assert!(q.has_body());
    assert_eq!(q.modifiers.limit, Some(1));
}

#[test]
fn parses_construct_variants() {
    let q = parse_query(
        "CONSTRUCT { ?s <http://p2> ?o } FROM <http://graph> WHERE { ?s <http://p> ?o }",
    )
    .unwrap();
    assert_eq!(q.form, QueryForm::Construct);
    assert_eq!(q.construct_template.as_ref().unwrap().len(), 1);
    assert_eq!(q.dataset.len(), 1);
}

#[test]
fn parses_ask_without_variables() {
    // Most ASK queries in the logs ask for a concrete triple (Section 4.4).
    let q = parse_query("ASK { <http://s> <http://p> <http://o> }").unwrap();
    assert!(q.body_variables().is_empty());
}

#[test]
fn parses_from_named_and_prefixes_with_base() {
    let q = parse_query(
        "BASE <http://base.org/> PREFIX : <http://ex.org/> SELECT * FROM <http://g1> FROM NAMED <http://g2> WHERE { ?s :p ?o }",
    )
    .unwrap();
    assert_eq!(q.dataset.len(), 2);
    assert!(q.dataset[1].named);
    assert_eq!(q.prologue.prefixes.len(), 1);
    // The empty-prefix name expands against the declared prefix.
    let body = q.where_clause.unwrap();
    let GroupElement::Triples(ts) = &body.elements[0] else {
        panic!()
    };
    let TripleOrPath::Triple(t) = &ts[0] else {
        panic!()
    };
    assert_eq!(t.predicate, Term::Iri("http://ex.org/p".into()));
}

#[test]
fn parses_language_and_datatype_literals() {
    let q = parse_query(
        r#"SELECT ?x WHERE { ?x <http://p> "label"@en-GB ; <http://q> "3.14"^^<http://www.w3.org/2001/XMLSchema#double> }"#,
    )
    .unwrap();
    assert_eq!(count_triples(q.where_clause.as_ref().unwrap()), 2);
}

#[test]
fn parses_case_insensitive_keywords() {
    let q = parse_query("select ?x where { ?x a <http://C> } limit 3").unwrap();
    assert_eq!(q.form, QueryForm::Select);
    assert_eq!(q.modifiers.limit, Some(3));
}

#[test]
fn rejects_garbage_and_updates() {
    for bad in [
        "",
        "this is not sparql",
        "GET /sparql?query=SELECT HTTP/1.1",
        "INSERT DATA { <http://s> <http://p> <http://o> }",
        "SELECT ?x WHERE { ?x a <http://C>", // missing closing brace
        "SELECT WHERE { ?x ?y ?z }",         // missing projection
        "ASK { ?x <http://p> }",             // missing object
    ] {
        assert!(parse_query(bad).is_err(), "should reject: {bad:?}");
    }
}

#[test]
fn rejects_malformed_wikidata_public_art_style_query() {
    // Mirrors the one unparseable WikiData query mentioned in Section 2
    // (missing closing braces and a bad aggregate).
    let bad = r#"SELECT (COUNT(?item) AS ) ?place WHERE {
        ?item <http://www.wikidata.org/prop/direct/P31> ?type .
        ?item <http://www.wikidata.org/prop/direct/P131> ?place
    "#;
    assert!(parse_query(bad).is_err());
}

#[test]
fn canonical_roundtrip_on_complex_query() {
    let q = parse_query(
        r#"PREFIX dbo: <http://dbpedia.org/ontology/>
           SELECT DISTINCT ?film ?director WHERE {
             ?film a dbo:Film ;
                   dbo:director ?director .
             OPTIONAL { ?director dbo:birthPlace ?place }
             FILTER(?director != dbo:UnknownDirector)
             { ?film dbo:releaseDate ?d } UNION { ?film dbo:premiereDate ?d }
           } ORDER BY ?film LIMIT 100"#,
    )
    .unwrap();
    let canon = to_canonical_string(&q);
    let q2 = parse_query(&canon).unwrap();
    assert_eq!(canon, to_canonical_string(&q2));
    assert_eq!(count_triples(q.where_clause.as_ref().unwrap()), 5);
}

#[test]
fn trailing_semicolons_and_dots_are_tolerated() {
    assert!(parse_query("SELECT ?x WHERE { ?x a <http://C> ; }").is_ok());
    assert!(parse_query("SELECT ?x WHERE { ?x a <http://C> . } .").is_ok());
}
