//! Differential tests of the zero-copy SWAR lexer against the original
//! allocating lexer, embedded below as the reference implementation.
//!
//! The reference (`mod reference`) is the pre-arena lexer verbatim — per-token
//! `String` payloads, byte-at-a-time `bump()` scanning, and the
//! uppercase-allocating keyword lookup — with only its error type simplified.
//! Every test lexes the same input through both paths and asserts they agree
//! on ok-ness and, when both accept, on the full spanned token stream
//! (modulo borrowed-vs-owned payloads): same variants, same payload text,
//! same byte offsets, same line/column positions.
//!
//! Inputs cover a fixed edge-case corpus (escapes, CRLF, comments, UTF-8
//! multi-byte names and strings, numeric and trailing-dot ambiguities), a
//! property-based generator composing SPARQL-shaped fragments, and a raw
//! printable-ASCII fuzzer for the error paths.

use proptest::prelude::*;
use sparqlog_parser::arena::Arena;
use sparqlog_parser::lexer::tokenize_in;
use sparqlog_parser::token::{Spanned, Token};

/// The original allocating lexer, kept verbatim as the differential
/// reference: owned `Token` payloads, per-identifier `to_ascii_uppercase`
/// keyword lookup, no arena. Do not "improve" this module — its value is
/// being the old behaviour.
mod reference {
    use sparqlog_parser::token::Keyword;

    type Result<T> = std::result::Result<T, String>;

    /// The pre-zero-copy token type: identical variants, `String` payloads.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Token {
        Keyword(Keyword),
        Ident(String),
        A,
        IriRef(String),
        PrefixedName(String, String),
        Var(String),
        BlankNodeLabel(String),
        String(String),
        Integer(String),
        Decimal(String),
        Double(String),
        Boolean(bool),
        LangTag(String),
        DoubleCaret,
        LParen,
        RParen,
        LBrace,
        RBrace,
        LBracket,
        RBracket,
        Nil,
        Anon,
        Dot,
        Comma,
        Semicolon,
        Pipe,
        Slash,
        Caret,
        Star,
        Plus,
        Minus,
        Question,
        Bang,
        Equal,
        NotEqual,
        Less,
        Greater,
        LessEq,
        GreaterEq,
        AndAnd,
        OrOr,
    }

    #[derive(Debug, Clone, PartialEq)]
    pub struct Spanned {
        pub token: Token,
        pub offset: usize,
        pub line: u32,
        pub column: u32,
    }

    /// The old allocating keyword lookup (one uppercased `String` per word).
    fn keyword_from_str_ci(s: &str) -> Option<Keyword> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "BASE" => Keyword::Base,
            "PREFIX" => Keyword::Prefix,
            "SELECT" => Keyword::Select,
            "ASK" => Keyword::Ask,
            "CONSTRUCT" => Keyword::Construct,
            "DESCRIBE" => Keyword::Describe,
            "WHERE" => Keyword::Where,
            "FROM" => Keyword::From,
            "NAMED" => Keyword::Named,
            "DISTINCT" => Keyword::Distinct,
            "REDUCED" => Keyword::Reduced,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "OFFSET" => Keyword::Offset,
            "GROUP" => Keyword::Group,
            "HAVING" => Keyword::Having,
            "OPTIONAL" => Keyword::Optional,
            "UNION" => Keyword::Union,
            "FILTER" => Keyword::Filter,
            "GRAPH" => Keyword::Graph,
            "MINUS" => Keyword::Minus,
            "BIND" => Keyword::Bind,
            "AS" => Keyword::As,
            "VALUES" => Keyword::Values,
            "SERVICE" => Keyword::Service,
            "SILENT" => Keyword::Silent,
            "UNDEF" => Keyword::Undef,
            "EXISTS" => Keyword::Exists,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "AVG" => Keyword::Avg,
            "SAMPLE" => Keyword::Sample,
            "GROUP_CONCAT" => Keyword::GroupConcat,
            "SEPARATOR" => Keyword::Separator,
            _ => return None,
        })
    }

    pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
        Lexer::new(input).run()
    }

    struct Lexer<'a> {
        src: &'a str,
        bytes: &'a [u8],
        pos: usize,
        line: u32,
        col: u32,
        out: Vec<Spanned>,
    }

    impl<'a> Lexer<'a> {
        fn new(src: &'a str) -> Self {
            Lexer {
                src,
                bytes: src.as_bytes(),
                pos: 0,
                line: 1,
                col: 1,
                out: Vec::new(),
            }
        }

        fn error(&self, msg: impl Into<String>) -> String {
            format!("{} at {}:{}", msg.into(), self.line, self.col)
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn peek_at(&self, off: usize) -> Option<u8> {
            self.bytes.get(self.pos + off).copied()
        }

        fn bump(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            Some(b)
        }

        fn push(&mut self, token: Token, offset: usize, line: u32, column: u32) {
            self.out.push(Spanned {
                token,
                offset,
                line,
                column,
            });
        }

        fn skip_ws_and_comments(&mut self) {
            loop {
                match self.peek() {
                    Some(b) if b.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'#') => {
                        while let Some(b) = self.peek() {
                            if b == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                    }
                    _ => return,
                }
            }
        }

        fn run(mut self) -> Result<Vec<Spanned>> {
            loop {
                self.skip_ws_and_comments();
                let (offset, line, col) = (self.pos, self.line, self.col);
                let Some(b) = self.peek() else { break };
                let token = match b {
                    b'{' => {
                        self.bump();
                        Token::LBrace
                    }
                    b'}' => {
                        self.bump();
                        Token::RBrace
                    }
                    b'(' => {
                        self.bump();
                        // NIL: '(' WS* ')'
                        let save = (self.pos, self.line, self.col);
                        self.skip_ws_and_comments();
                        if self.peek() == Some(b')') {
                            self.bump();
                            Token::Nil
                        } else {
                            self.pos = save.0;
                            self.line = save.1;
                            self.col = save.2;
                            Token::LParen
                        }
                    }
                    b')' => {
                        self.bump();
                        Token::RParen
                    }
                    b'[' => {
                        self.bump();
                        let save = (self.pos, self.line, self.col);
                        self.skip_ws_and_comments();
                        if self.peek() == Some(b']') {
                            self.bump();
                            Token::Anon
                        } else {
                            self.pos = save.0;
                            self.line = save.1;
                            self.col = save.2;
                            Token::LBracket
                        }
                    }
                    b']' => {
                        self.bump();
                        Token::RBracket
                    }
                    b',' => {
                        self.bump();
                        Token::Comma
                    }
                    b';' => {
                        self.bump();
                        Token::Semicolon
                    }
                    b'|' => {
                        self.bump();
                        if self.peek() == Some(b'|') {
                            self.bump();
                            Token::OrOr
                        } else {
                            Token::Pipe
                        }
                    }
                    b'&' => {
                        self.bump();
                        if self.peek() == Some(b'&') {
                            self.bump();
                            Token::AndAnd
                        } else {
                            return Err(self.error("stray '&'"));
                        }
                    }
                    b'/' => {
                        self.bump();
                        Token::Slash
                    }
                    b'^' => {
                        self.bump();
                        if self.peek() == Some(b'^') {
                            self.bump();
                            Token::DoubleCaret
                        } else {
                            Token::Caret
                        }
                    }
                    b'*' => {
                        self.bump();
                        Token::Star
                    }
                    b'+' => {
                        self.bump();
                        Token::Plus
                    }
                    b'-' => {
                        self.bump();
                        Token::Minus
                    }
                    b'!' => {
                        self.bump();
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Token::NotEqual
                        } else {
                            Token::Bang
                        }
                    }
                    b'=' => {
                        self.bump();
                        Token::Equal
                    }
                    b'>' => {
                        self.bump();
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Token::GreaterEq
                        } else {
                            Token::Greater
                        }
                    }
                    b'<' => self.lex_lt_or_iri()?,
                    b'.' => {
                        if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                            self.lex_number()?
                        } else {
                            self.bump();
                            Token::Dot
                        }
                    }
                    b'?' | b'$' => {
                        if self.peek_at(1).is_some_and(is_name_start_char) {
                            self.lex_var()
                        } else {
                            self.bump();
                            Token::Question
                        }
                    }
                    b'"' | b'\'' => self.lex_string()?,
                    b'@' => self.lex_lang_tag()?,
                    b'_' if self.peek_at(1) == Some(b':') => self.lex_blank_node()?,
                    b'0'..=b'9' => self.lex_number()?,
                    _ if is_name_start_char(b) || b == b':' => self.lex_word()?,
                    other => {
                        return Err(self.error(format!("unexpected character '{}'", other as char)))
                    }
                };
                self.push(token, offset, line, col);
            }
            Ok(self.out)
        }

        fn lex_lt_or_iri(&mut self) -> Result<Token> {
            let mut j = self.pos + 1;
            let mut is_iri = false;
            while let Some(&c) = self.bytes.get(j) {
                match c {
                    b'>' => {
                        is_iri = true;
                        break;
                    }
                    b'<' | b'"' | b'{' | b'}' | b'|' | b'^' | b'`' | b'\\' => break,
                    c if c <= 0x20 => break,
                    _ => j += 1,
                }
            }
            if is_iri {
                let iri = self.src[self.pos + 1..j].to_string();
                while self.pos <= j {
                    self.bump();
                }
                Ok(Token::IriRef(iri))
            } else {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::LessEq)
                } else {
                    Ok(Token::Less)
                }
            }
        }

        fn lex_var(&mut self) -> Token {
            self.bump(); // sigil
            let start = self.pos;
            while self.peek().is_some_and(is_name_char) {
                self.bump();
            }
            Token::Var(self.src[start..self.pos].to_string())
        }

        fn lex_blank_node(&mut self) -> Result<Token> {
            self.bump(); // '_'
            self.bump(); // ':'
            let start = self.pos;
            while self.peek().is_some_and(|c| is_name_char(c) || c == b'.') {
                self.bump();
            }
            let mut end = self.pos;
            while end > start && self.bytes[end - 1] == b'.' {
                end -= 1;
                self.pos -= 1;
                self.col -= 1;
            }
            if end == start {
                return Err(self.error("empty blank node label"));
            }
            Ok(Token::BlankNodeLabel(self.src[start..end].to_string()))
        }

        fn lex_lang_tag(&mut self) -> Result<Token> {
            self.bump(); // '@'
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'-')
            {
                self.bump();
            }
            if self.pos == start {
                return Err(self.error("empty language tag"));
            }
            Ok(Token::LangTag(self.src[start..self.pos].to_string()))
        }

        fn lex_number(&mut self) -> Result<Token> {
            let start = self.pos;
            let mut has_dot = false;
            let mut has_exp = false;
            while let Some(c) = self.peek() {
                match c {
                    b'0'..=b'9' => {
                        self.bump();
                    }
                    b'.' if !has_dot && !has_exp => {
                        if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                            has_dot = true;
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    b'e' | b'E' if !has_exp => {
                        has_exp = true;
                        self.bump();
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.bump();
                        }
                    }
                    _ => break,
                }
            }
            let text = self.src[start..self.pos].to_string();
            if text.is_empty() {
                return Err(self.error("malformed numeric literal"));
            }
            Ok(if has_exp {
                Token::Double(text)
            } else if has_dot {
                Token::Decimal(text)
            } else {
                Token::Integer(text)
            })
        }

        fn lex_string(&mut self) -> Result<Token> {
            let quote = self.peek().expect("caller checked");
            let long = self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote);
            if long {
                self.bump();
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
            let mut value = String::new();
            loop {
                let Some(c) = self.peek() else {
                    return Err(self.error("unterminated string literal"));
                };
                if c == quote {
                    if long {
                        if self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote) {
                            self.bump();
                            self.bump();
                            self.bump();
                            break;
                        }
                        value.push(c as char);
                        self.bump();
                    } else {
                        self.bump();
                        break;
                    }
                } else if c == b'\\' {
                    self.bump();
                    let Some(esc) = self.src[self.pos..].chars().next() else {
                        return Err(self.error("unterminated escape sequence"));
                    };
                    for _ in 0..esc.len_utf8() {
                        self.bump();
                    }
                    match esc {
                        't' => value.push('\t'),
                        'n' => value.push('\n'),
                        'r' => value.push('\r'),
                        'b' => value.push('\u{8}'),
                        'f' => value.push('\u{c}'),
                        '"' => value.push('"'),
                        '\'' => value.push('\''),
                        '\\' => value.push('\\'),
                        'u' | 'U' => {
                            let len = if esc == 'u' { 4 } else { 8 };
                            let mut code = 0u32;
                            for _ in 0..len {
                                let Some(h) = self.bump() else {
                                    return Err(self.error("truncated unicode escape"));
                                };
                                let d = (h as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?;
                                code = code * 16 + d;
                            }
                            value.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            // Be lenient: real logs contain sloppy escapes.
                            value.push('\\');
                            value.push(other);
                        }
                    }
                } else if !long && (c == b'\n' || c == b'\r') {
                    return Err(self.error("newline in short string literal"));
                } else {
                    let ch_start = self.pos;
                    let ch = self.src[ch_start..].chars().next().expect("valid utf8");
                    for _ in 0..ch.len_utf8() {
                        self.bump();
                    }
                    value.push(ch);
                }
            }
            Ok(Token::String(value))
        }

        fn lex_word(&mut self) -> Result<Token> {
            let start = self.pos;
            if self.peek() == Some(b':') {
                self.bump();
                let local = self.lex_local_part();
                return Ok(Token::PrefixedName(String::new(), local));
            }
            while self.peek().is_some_and(|c| is_name_char(c) || c == b'.') {
                if self.peek() == Some(b'.') {
                    break;
                }
                self.bump();
            }
            let word = &self.src[start..self.pos];
            if self.peek() == Some(b':') {
                self.bump();
                let local = self.lex_local_part();
                return Ok(Token::PrefixedName(word.to_string(), local));
            }
            if word == "a" {
                return Ok(Token::A);
            }
            if word.eq_ignore_ascii_case("true") {
                return Ok(Token::Boolean(true));
            }
            if word.eq_ignore_ascii_case("false") {
                return Ok(Token::Boolean(false));
            }
            if let Some(kw) = keyword_from_str_ci(word) {
                return Ok(Token::Keyword(kw));
            }
            if word.is_empty() {
                return Err(self.error("unexpected ':'"));
            }
            Ok(Token::Ident(word.to_string()))
        }

        fn lex_local_part(&mut self) -> String {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| is_name_char(c) || c == b'.' || c == b'%' || c == b'\\')
            {
                self.bump();
            }
            let mut end = self.pos;
            while end > start && self.bytes[end - 1] == b'.' {
                end -= 1;
                self.pos -= 1;
                self.col -= 1;
            }
            self.src[start..end].to_string()
        }
    }

    fn is_name_start_char(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        is_name_start_char(b) || b.is_ascii_digit() || b == b'-'
    }
}

/// Converts a zero-copy spanned token to the reference's owned form.
fn to_reference(spanned: &Spanned<'_>) -> reference::Spanned {
    use reference::Token as O;
    let token = match spanned.token {
        Token::Keyword(k) => O::Keyword(k),
        Token::Ident(s) => O::Ident(s.to_string()),
        Token::A => O::A,
        Token::IriRef(s) => O::IriRef(s.to_string()),
        Token::PrefixedName(p, l) => O::PrefixedName(p.to_string(), l.to_string()),
        Token::Var(s) => O::Var(s.to_string()),
        Token::BlankNodeLabel(s) => O::BlankNodeLabel(s.to_string()),
        Token::String(s) => O::String(s.to_string()),
        Token::Integer(s) => O::Integer(s.to_string()),
        Token::Decimal(s) => O::Decimal(s.to_string()),
        Token::Double(s) => O::Double(s.to_string()),
        Token::Boolean(b) => O::Boolean(b),
        Token::LangTag(s) => O::LangTag(s.to_string()),
        Token::DoubleCaret => O::DoubleCaret,
        Token::LParen => O::LParen,
        Token::RParen => O::RParen,
        Token::LBrace => O::LBrace,
        Token::RBrace => O::RBrace,
        Token::LBracket => O::LBracket,
        Token::RBracket => O::RBracket,
        Token::Nil => O::Nil,
        Token::Anon => O::Anon,
        Token::Dot => O::Dot,
        Token::Comma => O::Comma,
        Token::Semicolon => O::Semicolon,
        Token::Pipe => O::Pipe,
        Token::Slash => O::Slash,
        Token::Caret => O::Caret,
        Token::Star => O::Star,
        Token::Plus => O::Plus,
        Token::Minus => O::Minus,
        Token::Question => O::Question,
        Token::Bang => O::Bang,
        Token::Equal => O::Equal,
        Token::NotEqual => O::NotEqual,
        Token::Less => O::Less,
        Token::Greater => O::Greater,
        Token::LessEq => O::LessEq,
        Token::GreaterEq => O::GreaterEq,
        Token::AndAnd => O::AndAnd,
        Token::OrOr => O::OrOr,
    };
    reference::Spanned {
        token,
        offset: spanned.offset,
        line: spanned.line,
        column: spanned.column,
    }
}

/// Lexes `input` through both implementations and asserts agreement: same
/// ok-ness, and on success the same spanned token stream.
fn assert_lexers_agree(input: &str) {
    let arena = Arena::new();
    let new = tokenize_in(input, &arena);
    let old = reference::tokenize(input);
    match (&old, &new) {
        (Ok(old_tokens), Ok(new_tokens)) => {
            let converted: Vec<reference::Spanned> = new_tokens.iter().map(to_reference).collect();
            assert_eq!(*old_tokens, converted, "token streams differ for {input:?}");
        }
        (Err(_), Err(_)) => {}
        _ => panic!(
            "ok-ness differs for {input:?}: reference {:?}, zero-copy {:?}",
            old.as_ref().map(|t| t.len()).map_err(|e| e.clone()),
            new.as_ref().map(|t| t.len()).err()
        ),
    }
}

#[test]
fn edge_cases_agree() {
    for input in [
        // Escapes of every kind, including lenient sloppy ones.
        r#""a\tb\nc\"d\\e""#,
        r#""\u0041\U0001F600""#,
        r#""sloppy \x escape""#,
        r#""a\ü b""#,
        "\"truncated\\",
        r#""bad \u00ZZ escape""#,
        r#""overflow \UFFFFFFFF cap""#,
        // CRLF and newline handling: line/column tracking, short-string errors.
        "SELECT ?x\r\nWHERE { ?x a ?y }",
        "SELECT ?x # comment\r\nWHERE {}",
        "\"no\nnewlines\"",
        "\"no\rcarriage\"",
        "'''long\r\nstring'''",
        "\"\"\"quote \" inside\"\"\"",
        // UTF-8 boundaries in names, strings and garbage.
        "?süd :größe \"köln\"",
        "\"🂡 suits\" ?emoji🂡",
        "q\\🂡\"unterminated",
        // Numeric and dot ambiguities.
        "?x :p 1 . ?y :q 2.",
        "1 2.5 .5 3e10 1.0E-2 4E+3 5e-",
        "?x :p 1.5.",
        // Prefixed names, blank nodes, trailing dots, local-part escapes.
        "?s foaf:knows foaf:Person.",
        "_:b0 _:x1. _:dots... :only-local",
        "p:a%20b p:a\\-b wdt:P31",
        ":",
        // IRI-vs-less-than disambiguation.
        "FILTER(?x < 5 && ?y <= 6)",
        "?s <http://p> ?o",
        "< <incomplete",
        "<http://example.org/with#fragment>",
        // NIL / ANON with interior whitespace and comments.
        "( ) [ ] ( # comment\n ) [\t]",
        "(1) [?x]",
        // Operators, keywords, case-insensitivity, stray characters.
        "&& || != <= >= = ! ^ ^^ | / * + -",
        "select SeLeCt OPTIONAL group_concat separator",
        "TRUE false a",
        "stray & here",
        "stray ~ there",
        "@en @ @fr-BE",
        "",
        "   \t \r\n  # only a comment",
    ] {
        assert_lexers_agree(input);
    }
}

#[test]
fn representative_queries_agree() {
    for input in [
        "SELECT ?x WHERE { ?x a <http://example.org/C> . }",
        "PREFIX wdt: <http://www.wikidata.org/prop/direct/>\n\
         SELECT ?s WHERE { ?s wdt:P31/wdt:P279* <http://www.wikidata.org/entity/Q5> }",
        "ASK { ?x <http://p> ?y FILTER(?y > 3 && lang(?z) = \"en\") }",
        "CONSTRUCT { ?s a ?o } WHERE { ?s a ?o } LIMIT 10 OFFSET 5",
        "SELECT (GROUP_CONCAT(?n; SEPARATOR=\", \") AS ?names) WHERE { ?x :name ?n } GROUP BY ?x",
        "SELECT * WHERE { VALUES (?a ?b) { (1 2) (UNDEF \"x\"@en) } }",
        "DESCRIBE <http://r> FROM NAMED <http://g>",
    ] {
        assert_lexers_agree(input);
    }
}

/// SPARQL-shaped fragments the generator composes. Indexed by the proptest
/// strategy; spacing and newlines are part of some fragments so positions
/// and line counts get exercised too.
const FRAGMENTS: [&str; 40] = [
    "SELECT",
    "WHERE",
    "FILTER",
    "OPTIONAL",
    "group_concat",
    "?x",
    "?süd",
    "$y",
    "?",
    "a",
    "true",
    "FALSE",
    "lang",
    "<http://example.org/p>",
    "<http://example.org/with%20pct#f>",
    "foaf:name",
    ":local",
    "wdt:P31",
    "p:dotted.local",
    "p:trailing.",
    "_:b0",
    "_:dots...",
    "\"plain\"",
    "\"esc\\t\\n\\\"\"",
    "\"\\u0041\"",
    "'''long\nstring'''",
    "\"köln\"",
    "@en",
    "^^",
    "42",
    "2.5",
    ".5",
    "3e10",
    "1.",
    "{ }",
    "( )",
    "[ ]",
    "( 1 )",
    ". ; ,",
    "# comment\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_fragment_sequences_agree(
        indices in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40),
        // 0 = space, 1 = newline, 2 = CRLF, 3 = tab — the joiner between
        // fragments, so line/column tracking is exercised under every
        // terminator style.
        joiners in prop::collection::vec(0usize..4, 0..40),
    ) {
        let mut input = String::new();
        for (i, &index) in indices.iter().enumerate() {
            input.push_str(FRAGMENTS[index]);
            input.push_str(match joiners.get(i).copied().unwrap_or(0) {
                1 => "\n",
                2 => "\r\n",
                3 => "\t",
                _ => " ",
            });
        }
        assert_lexers_agree(&input);
    }

    #[test]
    fn raw_printable_ascii_agrees(raw in ".{0,120}") {
        // Arbitrary printable ASCII: mostly error paths; the two lexers must
        // agree on accept/reject and on tokens whenever both accept.
        assert_lexers_agree(&raw);
    }

    #[test]
    fn quoted_fuzz_agrees(body in "[ -~]{0,60}", quote in 0usize..2) {
        // Wrap fuzz in quotes so the string sub-lexer (escapes, terminators,
        // sloppy-escape leniency) sees adversarial content.
        let q = if quote == 0 { '"' } else { '\'' };
        assert_lexers_agree(&format!("{q}{body}{q}"));
    }
}
