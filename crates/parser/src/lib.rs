//! # sparqlog-parser
//!
//! A from-scratch SPARQL 1.1 lexer, AST and recursive-descent parser tailored
//! to query-log analysis. It plays the role that Apache Jena 3.0.1 played in
//! the original study (*An Analytical Study of Large SPARQL Query Logs*,
//! Bonifati–Martens–Timm, VLDB 2017): deciding validity of log entries and
//! exposing the syntactic structure of each query to the analysis passes.
//!
//! The crate is organised as:
//!
//! * [`bytescan`] — SWAR word-at-a-time byte classification shared by the
//!   lexer and the corpus line readers.
//! * [`token`] / [`lexer`] — zero-copy tokenization: [`Token`](token::Token)
//!   borrows `&str` slices of the input, and the token buffer lives in an
//!   [`Arena`].
//! * [`arena`] — the bump [`Arena`] that owns every token, AST node and
//!   expanded string for one parse batch; one [`Arena::reset`] call retires
//!   the whole batch.
//! * [`ast`] — the owned surface-syntax AST (serde-friendly, long-lived).
//! * [`ast_ref`] — the borrowed arena-allocated mirror of [`ast`], produced
//!   by [`parse_query_in`] and converted with `to_owned()` when needed.
//! * [`parser`] — the recursive-descent parser; [`parse_query_in`] is the
//!   zero-copy entry point, [`parse_query`] the owned convenience wrapper.
//! * [`display`] — canonical serialization, entry point
//!   [`to_canonical_string`], used for duplicate elimination and streak
//!   similarity, plus the zero-materialization [`CanonicalHasher`] /
//!   [`canonical_fingerprint_of`] used by the streaming corpus pipeline.
//! * [`intern`] — the per-worker term [`Interner`] mapping IRIs, prefixed
//!   names and variables to dense `u32` [`Symbol`]s, so the analysis passes
//!   hash and compare integers instead of strings.
//!
//! # Arena lifetime rules
//!
//! A [`parse_query_in`] result borrows both the input string and the arena:
//! nothing derived from it (terms, slices, the query itself) may outlive the
//! next [`Arena::reset`]. Extract anything long-lived — fingerprints, interned
//! symbols, owned ASTs via `to_owned()` — *before* resetting. The fused
//! pipeline follows exactly this discipline: one arena per worker, reset once
//! per log entry.
//!
//! # Example
//!
//! ```
//! use sparqlog_parser::{parse_query, ast::QueryForm};
//!
//! let q = parse_query(
//!     "PREFIX wdt: <http://www.wikidata.org/prop/direct/>
//!      PREFIX wd:  <http://www.wikidata.org/entity/>
//!      SELECT ?label ?coord ?subj WHERE {
//!        ?subj wdt:P31/wdt:P279* wd:Q839954 .
//!        ?subj wdt:P625 ?coord .
//!        ?subj <http://www.w3.org/2000/01/rdf-schema#label> ?label
//!        FILTER(lang(?label) = \"en\")
//!      }",
//! )
//! .unwrap();
//! assert_eq!(q.form, QueryForm::Select);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod ast;
pub mod ast_ref;
pub mod bytescan;
pub mod display;
pub mod error;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod token;

pub use arena::Arena;
pub use ast::{Query, QueryForm};
pub use display::{
    canonical_fingerprint, canonical_fingerprint_of, canonical_fingerprint_of_ref,
    to_canonical_string, CanonicalHasher,
};
pub use error::{ErrorKind, ParseError};
pub use intern::{InternStats, Interner, Symbol};
pub use parser::{parse_query, parse_query_in, parse_query_in_with_limits, ParseLimits};
