//! # sparqlog-parser
//!
//! A from-scratch SPARQL 1.1 lexer, AST and recursive-descent parser tailored
//! to query-log analysis. It plays the role that Apache Jena 3.0.1 played in
//! the original study (*An Analytical Study of Large SPARQL Query Logs*,
//! Bonifati–Martens–Timm, VLDB 2017): deciding validity of log entries and
//! exposing the syntactic structure of each query to the analysis passes.
//!
//! The crate is organised as:
//!
//! * [`token`] / [`lexer`] — tokenization.
//! * [`ast`] — the surface-syntax AST.
//! * [`parser`] — the recursive-descent parser, entry point [`parse_query`].
//! * [`display`] — canonical serialization, entry point
//!   [`to_canonical_string`], used for duplicate elimination and streak
//!   similarity, plus the zero-materialization [`CanonicalHasher`] /
//!   [`canonical_fingerprint_of`] used by the streaming corpus pipeline.
//! * [`intern`] — the per-worker term [`Interner`] mapping IRIs, prefixed
//!   names and variables to dense `u32` [`Symbol`]s, so the analysis passes
//!   hash and compare integers instead of strings.
//!
//! # Example
//!
//! ```
//! use sparqlog_parser::{parse_query, ast::QueryForm};
//!
//! let q = parse_query(
//!     "PREFIX wdt: <http://www.wikidata.org/prop/direct/>
//!      PREFIX wd:  <http://www.wikidata.org/entity/>
//!      SELECT ?label ?coord ?subj WHERE {
//!        ?subj wdt:P31/wdt:P279* wd:Q839954 .
//!        ?subj wdt:P625 ?coord .
//!        ?subj <http://www.w3.org/2000/01/rdf-schema#label> ?label
//!        FILTER(lang(?label) = \"en\")
//!      }",
//! )
//! .unwrap();
//! assert_eq!(q.form, QueryForm::Select);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{Query, QueryForm};
pub use display::{
    canonical_fingerprint, canonical_fingerprint_of, to_canonical_string, CanonicalHasher,
};
pub use error::ParseError;
pub use intern::{InternStats, Interner, Symbol};
pub use parser::parse_query;
