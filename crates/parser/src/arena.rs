//! A bump arena for batch-scoped ASTs.
//!
//! The fused analysis pipeline parses thousands of queries whose ASTs live
//! only long enough to be fingerprinted (and, on a cache miss, analysed).
//! Allocating every node and string individually — and tearing each down
//! again — dominated the parse stage once analysis itself was memoized.
//! [`Arena`] replaces that churn with pointer-bump allocation into large
//! chunks: a worker parses into its arena, extracts the fingerprint, and
//! calls [`Arena::reset`] — one pointer rewind — before the next entry.
//! Steady state performs *no* global-allocator traffic at all: the chunk is
//! retained across resets and simply refilled.
//!
//! # Lifetime rules
//!
//! Everything handed out borrows the arena (`&'a T`, `&'a str`,
//! `&'a [T]`). [`Arena::reset`] takes `&mut self`, so the borrow checker
//! statically guarantees no slice survives a reset: data that must outlive
//! the batch has to be copied out first (the AST offers `to_owned()` for
//! exactly this).
//!
//! # Safety
//!
//! Only `Copy` types may be allocated ([`Arena::alloc`],
//! [`ArenaVec`]): nothing in an arena is ever dropped, so types owning
//! heap resources would leak. The borrowed AST is designed around this —
//! every node type is `Copy`. All `unsafe` in the parser crate is confined
//! to this module; the rest stays `deny(unsafe_code)`-checked.

#![allow(unsafe_code)]

use std::alloc::{alloc, dealloc, Layout};
use std::cell::{Cell, RefCell};
use std::ptr::NonNull;

/// Default size of the first chunk. Typical log queries produce a few
/// kilobytes of AST; one chunk of this size serves whole batches without
/// ever growing.
const INITIAL_CHUNK_BYTES: usize = 64 * 1024;

/// Chunks larger than this are released by [`Arena::reset`] instead of
/// retained, so one pathological query cannot pin memory for the rest of a
/// worker's life.
const MAX_RETAINED_BYTES: usize = 8 * 1024 * 1024;

/// One raw allocation owned by the arena.
struct Chunk {
    ptr: NonNull<u8>,
    size: usize,
}

impl Chunk {
    fn layout(size: usize) -> Layout {
        // 16-byte alignment covers every type the parser allocates; per-
        // allocation alignment is still rounded up individually below.
        Layout::from_size_align(size, 16).expect("valid chunk layout")
    }

    fn new(size: usize) -> Chunk {
        let layout = Chunk::layout(size);
        // SAFETY: the layout has non-zero size (callers never request 0).
        let raw = unsafe { alloc(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        Chunk { ptr, size }
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        // SAFETY: `ptr` was allocated with exactly this layout in `new`.
        unsafe { dealloc(self.ptr.as_ptr(), Chunk::layout(self.size)) };
    }
}

/// A chunked bump allocator handing out references tied to its own borrow.
///
/// See the [module docs](self) for the lifetime and `Copy`-only rules.
pub struct Arena {
    /// Next free byte in the current (last) chunk.
    head: Cell<*mut u8>,
    /// One past the last byte of the current chunk.
    end: Cell<*mut u8>,
    /// All live chunks; the last one is the active bump target.
    chunks: RefCell<Vec<Chunk>>,
    /// Bytes handed out since creation or the last [`Arena::reset`]
    /// (excluding alignment padding) — the measurement hook for the
    /// `ablation_parse` harness.
    used: Cell<usize>,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("used", &self.used.get())
            .field("capacity", &self.capacity())
            .finish()
    }
}

// SAFETY: the arena hands out shared references only while it is itself
// borrowed; moving it between threads moves exclusive ownership of its
// chunks. (It is !Sync: interior mutability through `Cell` is unsynchronized.)
unsafe impl Send for Arena {}

impl Arena {
    /// An empty arena. The first chunk is allocated lazily on first use.
    pub fn new() -> Arena {
        Arena {
            head: Cell::new(std::ptr::null_mut()),
            end: Cell::new(std::ptr::null_mut()),
            chunks: RefCell::new(Vec::new()),
            used: Cell::new(0),
        }
    }

    /// Total bytes of chunk capacity currently owned.
    pub fn capacity(&self) -> usize {
        self.chunks.borrow().iter().map(|c| c.size).sum()
    }

    /// Bytes handed out since creation or the last [`Arena::reset`].
    pub fn used_bytes(&self) -> usize {
        self.used.get()
    }

    /// Rewinds the arena, invalidating every outstanding reference (the
    /// `&mut` receiver lets the borrow checker prove there are none). The
    /// largest retained-size chunk is kept for reuse — steady-state resets
    /// free nothing and allocate nothing.
    pub fn reset(&mut self) {
        let chunks = self.chunks.get_mut();
        let keep = chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.size <= MAX_RETAINED_BYTES)
            .max_by_key(|(_, c)| c.size)
            .map(|(i, _)| i);
        match keep {
            Some(index) => {
                chunks.swap(0, index);
                chunks.truncate(1);
                let chunk = &chunks[0];
                self.head.set(chunk.ptr.as_ptr());
                // SAFETY: `size` bytes were allocated at `ptr`.
                self.end.set(unsafe { chunk.ptr.as_ptr().add(chunk.size) });
            }
            None => {
                chunks.clear();
                self.head.set(std::ptr::null_mut());
                self.end.set(std::ptr::null_mut());
            }
        }
        self.used.set(0);
    }

    /// Rewinds the arena like [`Arena::reset`] but releases **every** chunk,
    /// returning the arena to its freshly-created, zero-capacity state. The
    /// corpus pipeline calls this after a resource-guard trip or a caught
    /// parse panic: whatever high-water mark the pathological entry drove the
    /// arena to is handed back to the allocator instead of pinned for the
    /// rest of the worker's life.
    pub fn trim(&mut self) {
        self.chunks.get_mut().clear();
        self.head.set(std::ptr::null_mut());
        self.end.set(std::ptr::null_mut());
        self.used.set(0);
    }

    /// Bump-allocates `size` bytes at `align` and returns the start.
    fn alloc_raw(&self, size: usize, align: usize) -> NonNull<u8> {
        debug_assert!(align <= 16, "arena alignment capped at 16");
        let head = self.head.get();
        let aligned = (head as usize).wrapping_add(align - 1) & !(align - 1);
        let next = aligned.wrapping_add(size);
        if !head.is_null() && next <= self.end.get() as usize && aligned >= head as usize {
            self.head.set(next as *mut u8);
            self.used.set(self.used.get() + size);
            // SAFETY: `aligned` lies inside the current chunk.
            return unsafe { NonNull::new_unchecked(aligned as *mut u8) };
        }
        self.alloc_slow(size, align)
    }

    #[cold]
    fn alloc_slow(&self, size: usize, align: usize) -> NonNull<u8> {
        let grown = self
            .chunks
            .borrow()
            .last()
            .map(|c| c.size.saturating_mul(2))
            .unwrap_or(INITIAL_CHUNK_BYTES);
        let chunk_size = grown.max(INITIAL_CHUNK_BYTES).max(size + align);
        let chunk = Chunk::new(chunk_size);
        let start = chunk.ptr.as_ptr();
        // SAFETY: `chunk_size >= size + align` bytes were just allocated.
        let end = unsafe { start.add(chunk_size) };
        self.chunks.borrow_mut().push(chunk);
        let aligned = (start as usize).wrapping_add(align - 1) & !(align - 1);
        self.head.set((aligned + size) as *mut u8);
        self.end.set(end);
        self.used.set(self.used.get() + size);
        // SAFETY: chunk allocations are non-null.
        unsafe { NonNull::new_unchecked(aligned as *mut u8) }
    }

    /// Allocates one value. `Copy`-bounded: arena memory is never dropped.
    pub fn alloc<T: Copy>(&self, value: T) -> &T {
        let ptr = self.alloc_raw(size_of::<T>(), align_of::<T>()).as_ptr() as *mut T;
        // SAFETY: `ptr` is a fresh, aligned, in-bounds allocation for one T.
        unsafe {
            ptr.write(value);
            &*ptr
        }
    }

    /// Copies a slice into the arena.
    pub fn alloc_slice<T: Copy>(&self, values: &[T]) -> &[T] {
        if values.is_empty() {
            return &[];
        }
        let ptr = self
            .alloc_raw(std::mem::size_of_val(values), align_of::<T>())
            .as_ptr() as *mut T;
        // SAFETY: the allocation holds `values.len()` aligned slots of T and
        // does not overlap `values` (it is freshly bump-allocated).
        unsafe {
            std::ptr::copy_nonoverlapping(values.as_ptr(), ptr, values.len());
            std::slice::from_raw_parts(ptr, values.len())
        }
    }

    /// Copies a string into the arena.
    pub fn alloc_str(&self, s: &str) -> &str {
        let bytes = self.alloc_slice(s.as_bytes());
        // SAFETY: `bytes` is a byte-exact copy of a valid UTF-8 string.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Concatenates two strings into one arena allocation (prefixed-name
    /// expansion, numeric-sign folding).
    pub fn alloc_str_concat(&self, a: &str, b: &str) -> &str {
        if a.is_empty() {
            return self.alloc_str(b);
        }
        if b.is_empty() {
            return self.alloc_str(a);
        }
        let total = a.len() + b.len();
        let ptr = self.alloc_raw(total, 1).as_ptr();
        // SAFETY: `total` fresh bytes at `ptr`; sources do not overlap the
        // destination.
        unsafe {
            std::ptr::copy_nonoverlapping(a.as_ptr(), ptr, a.len());
            std::ptr::copy_nonoverlapping(b.as_ptr(), ptr.add(a.len()), b.len());
            let bytes = std::slice::from_raw_parts(ptr, total);
            std::str::from_utf8_unchecked(bytes)
        }
    }

    /// Copies a string into the arena with ASCII letters uppercased
    /// (canonical function names). Non-ASCII bytes pass through untouched,
    /// so the copy stays valid UTF-8.
    pub fn alloc_str_ascii_uppercase(&self, s: &str) -> &str {
        let ptr = self.alloc_raw(s.len(), 1).as_ptr();
        for (i, b) in s.bytes().enumerate() {
            // SAFETY: `i < s.len()` bytes were allocated at `ptr`.
            unsafe { ptr.add(i).write(b.to_ascii_uppercase()) };
        }
        // SAFETY: ASCII-only uppercasing preserves UTF-8 validity.
        unsafe {
            let bytes = std::slice::from_raw_parts(ptr, s.len());
            std::str::from_utf8_unchecked(bytes)
        }
    }

    /// Attempts to extend the allocation `[ptr, ptr + old_bytes)` in place
    /// to `new_bytes`; only possible when it is the most recent allocation
    /// (sits at the bump tip). Returns whether it succeeded.
    fn try_grow_in_place(&self, ptr: *mut u8, old_bytes: usize, new_bytes: usize) -> bool {
        let tip = (ptr as usize).wrapping_add(old_bytes);
        if tip != self.head.get() as usize {
            return false;
        }
        let next = (ptr as usize).wrapping_add(new_bytes);
        if next > self.end.get() as usize {
            return false;
        }
        self.head.set(next as *mut u8);
        self.used.set(self.used.get() + (new_bytes - old_bytes));
        true
    }
}

/// A growable vector whose storage lives in an [`Arena`].
///
/// The parser builds every AST list through one of these: pushes bump into
/// the arena, growth extends in place whenever the vector still sits at the
/// bump tip (the common case for the innermost list under construction),
/// and [`ArenaVec::finish`] releases the storage as a plain `&'a [T]` —
/// list building touches the global allocator zero times.
pub struct ArenaVec<'a, T: Copy> {
    arena: &'a Arena,
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
}

impl<'a, T: Copy> ArenaVec<'a, T> {
    /// An empty vector borrowing the arena. No space is reserved until the
    /// first push.
    pub fn new(arena: &'a Arena) -> ArenaVec<'a, T> {
        ArenaVec {
            arena,
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    /// Number of elements pushed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no element has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements pushed so far.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `len` initialized elements live at `ptr`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len == self.cap {
            self.grow();
        }
        // SAFETY: `len < cap` slots are allocated at `ptr`.
        unsafe { self.ptr.as_ptr().add(self.len).write(value) };
        self.len += 1;
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.cap * 2).max(4);
        let elem = size_of::<T>();
        if self.cap > 0
            && elem > 0
            && self.arena.try_grow_in_place(
                self.ptr.as_ptr() as *mut u8,
                self.cap * elem,
                new_cap * elem,
            )
        {
            self.cap = new_cap;
            return;
        }
        let fresh = self
            .arena
            .alloc_raw((new_cap * elem).max(1), align_of::<T>().min(16))
            .as_ptr() as *mut T;
        // SAFETY: `new_cap >= len` slots at `fresh`; old storage (if any)
        // holds `len` initialized elements and cannot overlap the fresh
        // bump allocation.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), fresh, self.len);
            self.ptr = NonNull::new_unchecked(fresh);
        }
        self.cap = new_cap;
    }

    /// Finishes the vector, returning its contents as an arena slice.
    pub fn finish(self) -> &'a [T] {
        // SAFETY: `len` initialized elements live at `ptr` inside the arena,
        // which outlives 'a.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_values_slices_and_strings() {
        let arena = Arena::new();
        let a = arena.alloc(41u64);
        let b = arena.alloc((1u8, 2u32));
        let s = arena.alloc_slice(&[1u16, 2, 3]);
        let t = arena.alloc_str("hello");
        assert_eq!((*a, *b), (41, (1, 2)));
        assert_eq!(s, &[1, 2, 3]);
        assert_eq!(t, "hello");
        assert!(arena.used_bytes() >= 8 + 8 + 6 + 5);
    }

    #[test]
    fn concat_and_uppercase_helpers() {
        let arena = Arena::new();
        assert_eq!(arena.alloc_str_concat("http://x/", "P31"), "http://x/P31");
        assert_eq!(arena.alloc_str_concat("", "y"), "y");
        assert_eq!(arena.alloc_str_ascii_uppercase("strLen-ß"), "STRLEN-ß");
    }

    #[test]
    fn reset_retains_capacity_and_invalidates_nothing_live() {
        let mut arena = Arena::new();
        for round in 0..3 {
            let s = arena.alloc_str("payload");
            assert_eq!(s, "payload");
            let capacity = arena.capacity();
            assert!(capacity >= INITIAL_CHUNK_BYTES, "round {round}");
            arena.reset();
            assert_eq!(arena.used_bytes(), 0);
            // Steady state: capacity is retained, not reallocated.
            assert_eq!(arena.capacity(), capacity);
        }
    }

    #[test]
    fn grows_past_the_first_chunk() {
        let arena = Arena::new();
        let big = vec![7u8; INITIAL_CHUNK_BYTES * 3];
        let copy = arena.alloc_slice(&big);
        assert_eq!(copy.len(), big.len());
        assert!(copy.iter().all(|&b| b == 7));
        let small = arena.alloc(1u32);
        assert_eq!(*small, 1);
    }

    #[test]
    fn arena_vec_pushes_grows_and_finishes() {
        let arena = Arena::new();
        let mut v = ArenaVec::new(&arena);
        for i in 0..1000u32 {
            v.push(i);
        }
        assert_eq!(v.len(), 1000);
        let slice = v.finish();
        assert!(slice.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn interleaved_arena_vecs_stay_disjoint() {
        let arena = Arena::new();
        let mut a = ArenaVec::new(&arena);
        let mut b = ArenaVec::new(&arena);
        for i in 0..200u64 {
            a.push(i);
            b.push(i * 2);
            if i % 7 == 0 {
                arena.alloc_str("interleaved");
            }
        }
        let (a, b) = (a.finish(), b.finish());
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u64));
        assert!(b.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn zero_sized_and_empty_allocations() {
        let arena = Arena::new();
        let unit = arena.alloc(());
        assert_eq!(*unit, ());
        let empty: &[u32] = arena.alloc_slice(&[]);
        assert!(empty.is_empty());
        let mut v: ArenaVec<'_, ()> = ArenaVec::new(&arena);
        v.push(());
        v.push(());
        assert_eq!(v.finish().len(), 2);
    }

    #[test]
    fn oversized_chunks_are_released_on_reset() {
        let mut arena = Arena::new();
        let huge = vec![0u8; MAX_RETAINED_BYTES + 1];
        arena.alloc_slice(&huge);
        assert!(arena.capacity() > MAX_RETAINED_BYTES);
        arena.reset();
        assert!(arena.capacity() <= MAX_RETAINED_BYTES);
    }
}
