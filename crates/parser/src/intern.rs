//! String interning for the analysis hot path.
//!
//! The corpus pipeline looks at the same IRIs, prefixed names and variable
//! names millions of times: every canonical-graph node, union-find key and
//! visibility test used to re-hash (or re-allocate) the term's string. An
//! [`Interner`] maps each distinct string to a dense [`Symbol`] — a `u32`
//! index into a shared string table — so downstream hashing and comparison
//! become integer operations and each distinct string is stored exactly once
//! per worker.
//!
//! Interners are **per worker**: they are cheap to create, are not shared
//! across threads, and keep growing over the queries a worker analyses, which
//! is exactly what makes them effective (the corpus-wide vocabulary of IRIs
//! and variable names is tiny compared to the number of occurrences). In the
//! staged analysis engine a worker's interner lives for the fold over its
//! chunks; in the fused ingest→analyze engine it lives for the whole stream —
//! threaded through every first-occurrence analysis a worker performs while
//! batches are still being parsed — and its [`InternStats`] are merged
//! across workers into the run's combined counters either way.
//!
//! ```
//! use sparqlog_parser::intern::Interner;
//!
//! let mut interner = Interner::new();
//! let a = interner.intern("http://example.org/p");
//! let b = interner.intern("http://example.org/p");
//! assert_eq!(a, b); // same string, same symbol — an integer comparison
//! assert_eq!(interner.resolve(a), "http://example.org/p");
//! let stats = interner.stats();
//! assert_eq!((stats.distinct, stats.hits), (1, 1));
//! assert_eq!(stats.bytes_saved, "http://example.org/p".len() as u64);
//! ```

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A handle to an interned string: a dense `u32` index into the owning
/// [`Interner`]'s string table. Comparing, ordering and hashing symbols are
/// integer operations; the string is recovered with [`Interner::resolve`].
///
/// Symbols are only meaningful relative to the interner that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of the symbol in its interner's string table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Counters describing how much work an [`Interner`] absorbed: how many
/// lookups hit an already-interned string and how many string bytes were
/// *not* re-stored because of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InternStats {
    /// Distinct strings in the table.
    pub distinct: u64,
    /// Total [`Interner::intern`] calls.
    pub lookups: u64,
    /// Lookups that found the string already interned.
    pub hits: u64,
    /// Bytes held by the string table (each distinct string once).
    pub bytes_interned: u64,
    /// Bytes of repeated strings that were served from the table instead of
    /// being stored (or hashed as strings) again — the allocation diet.
    pub bytes_saved: u64,
}

impl InternStats {
    /// Sums another worker's counters into this one (the per-worker interners
    /// of the analysis pool report one combined figure).
    pub fn merge(&mut self, other: &InternStats) {
        self.distinct += other.distinct;
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.bytes_interned += other.bytes_interned;
        self.bytes_saved += other.bytes_saved;
    }

    /// The share of lookups served from the table.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.lookups.max(1) as f64
    }
}

/// A pass-through hasher for pre-computed 64-bit string hashes: the bucket
/// keys of the interner are already FNV-1a outputs, so re-hashing them would
/// be pure overhead.
#[derive(Debug, Default)]
struct PrehashedHasher(u64);

impl Hasher for PrehashedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }
}

/// 64-bit FNV-1a over a string's bytes.
fn fnv64(s: &str) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// A symbol table mapping strings to dense [`Symbol`]s.
///
/// Each distinct string is stored **once**, in `strings`; the lookup index
/// maps the string's 64-bit FNV-1a hash to the symbols sharing that hash
/// (collisions are resolved by comparing against the stored string), so the
/// table never duplicates key storage the way a `HashMap<String, Symbol>`
/// would.
#[derive(Debug, Default)]
pub struct Interner {
    /// The string table, indexed by [`Symbol::index`].
    strings: Vec<Box<str>>,
    /// FNV-1a hash of a string → symbols whose strings share that hash.
    buckets: HashMap<u64, Vec<Symbol>, BuildHasherDefault<PrehashedHasher>>,
    stats: InternStats,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a string, returning its symbol. The first occurrence stores
    /// the string; every later occurrence is an integer-keyed lookup that
    /// allocates nothing.
    pub fn intern(&mut self, s: &str) -> Symbol {
        let hash = fnv64(s);
        self.intern_hashed(s, hash)
    }

    /// [`Interner::intern`] under a caller-supplied bucket hash — the actual
    /// implementation, split out so the tests can force two strings into one
    /// bucket and exercise the collision scan (a real 64-bit collision is
    /// too rare to hit organically).
    fn intern_hashed(&mut self, s: &str, hash: u64) -> Symbol {
        self.stats.lookups += 1;
        if let Some(candidates) = self.buckets.get(&hash) {
            for &symbol in candidates {
                if &*self.strings[symbol.index()] == s {
                    self.stats.hits += 1;
                    self.stats.bytes_saved += s.len() as u64;
                    return symbol;
                }
            }
        }
        let symbol = Symbol(
            u32::try_from(self.strings.len())
                .expect("interner overflow: more than u32::MAX distinct strings"),
        );
        self.strings.push(s.into());
        self.stats.distinct += 1;
        self.stats.bytes_interned += s.len() as u64;
        self.buckets.entry(hash).or_default().push(symbol);
        symbol
    }

    /// The string a symbol stands for.
    pub fn resolve(&self, symbol: Symbol) -> &str {
        &self.strings[symbol.index()]
    }

    /// The symbol of an already-interned string, without interning it.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        let candidates = self.buckets.get(&fnv64(s))?;
        candidates
            .iter()
            .copied()
            .find(|&sym| &*self.strings[sym.index()] == s)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// A snapshot of the interner's counters.
    pub fn stats(&self) -> InternStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("http://example.org/very/long/iri");
        let a2 = i.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "x");
        assert_eq!(i.resolve(b), "http://example.org/very/long/iri");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.lookup("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn stats_track_hits_and_bytes() {
        let mut i = Interner::new();
        i.intern("abcd");
        i.intern("abcd");
        i.intern("abcd");
        i.intern("ef");
        let s = i.stats();
        assert_eq!(s.distinct, 2);
        assert_eq!(s.lookups, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.bytes_interned, 6);
        assert_eq!(s.bytes_saved, 8);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = InternStats {
            distinct: 1,
            lookups: 3,
            hits: 2,
            bytes_interned: 4,
            bytes_saved: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.lookups, 6);
        assert_eq!(a.bytes_saved, 16);
    }

    #[test]
    fn hash_collisions_are_resolved_by_comparison() {
        // Drive the collision branch directly: three distinct strings forced
        // into one bucket must stay distinct symbols, and re-interning any
        // of them must scan past the other bucket entries to the right one.
        let mut i = Interner::new();
        let a = i.intern_hashed("alpha", 42);
        let b = i.intern_hashed("beta", 42);
        let c = i.intern_hashed("gamma", 42);
        assert_eq!(i.len(), 3);
        assert!(a != b && b != c && a != c);
        assert_eq!(i.intern_hashed("alpha", 42), a);
        assert_eq!(i.intern_hashed("beta", 42), b);
        assert_eq!(i.intern_hashed("gamma", 42), c);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.resolve(c), "gamma");
        assert_eq!(i.stats().hits, 3);
        // And the public entry points stay consistent over a large table.
        let symbols: Vec<Symbol> = (0..500).map(|n| i.intern(&format!("s{n}"))).collect();
        for (n, &sym) in symbols.iter().enumerate() {
            assert_eq!(i.resolve(sym), format!("s{n}"));
            assert_eq!(i.intern(&format!("s{n}")), sym);
            assert_eq!(i.lookup(&format!("s{n}")), Some(sym));
        }
    }
}
