//! Recursive-descent parser for SPARQL 1.1 queries.
//!
//! The parser covers the query-language subset relevant to log analysis:
//! all four query forms, basic graph patterns with predicate-object and
//! object lists, blank-node property lists and RDF collections, property
//! paths, `FILTER` / `OPTIONAL` / `UNION` / `GRAPH` / `MINUS` / `BIND` /
//! `VALUES` / `SERVICE`, subqueries, the SPARQL expression grammar including
//! `EXISTS` and aggregates, and all solution modifiers.
//!
//! It builds the borrowed [`ast_ref`](crate::ast_ref) representation
//! directly in a caller-supplied [`Arena`]: every node, list and expanded
//! IRI is bump-allocated, so parsing performs no steady-state global
//! allocation. [`parse_query`] wraps this with a thread-local arena and a
//! `to_owned()` conversion for callers that want the owned
//! [`ast::Query`] surface.
//!
//! Update requests (`INSERT` / `DELETE` / `LOAD` …) are *not* supported: the
//! paper's corpus consists of queries, and update entries count as invalid.

use crate::arena::{Arena, ArenaVec};
use crate::ast;
use crate::ast_ref::*;
use crate::error::{ErrorKind, ParseError, Result};
use crate::lexer::tokenize_in_limited;
use crate::token::{Keyword, Spanned, Token};
use std::cell::RefCell;

/// Hard resource guards for parsing adversarial input. Each field is a cap;
/// `0` disables that guard. The corpus pipeline parses every entry under
/// [`ParseLimits::default`], so a pathological log line trips a structured
/// [`ErrorKind::OversizeEntry`] / [`ErrorKind::DepthExceeded`] error instead
/// of exhausting a worker's memory or stack; the plain [`parse_query`] /
/// [`parse_query_in`] entry points stay unguarded for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Per-entry byte cap (`0` = unlimited).
    pub max_entry_bytes: usize,
    /// Token-count cap (`0` = unlimited).
    pub max_tokens: usize,
    /// Parser recursion-depth cap (`0` = unlimited).
    pub max_depth: usize,
}

impl ParseLimits {
    /// Default per-entry byte cap: 1 MiB. Real log entries top out around a
    /// few hundred KiB; a multi-MiB "entry" is a corrupt or adversarial line.
    pub const DEFAULT_MAX_ENTRY_BYTES: usize = 1 << 20;
    /// Default token cap: 256 Ki tokens (several tokens per byte is
    /// impossible, so this binds the token buffer well under the byte cap).
    pub const DEFAULT_MAX_TOKENS: usize = 1 << 18;
    /// Default recursion-depth cap. Generous for real queries (which nest a
    /// handful of levels) while keeping worst-case stack usage far from the
    /// 2 MiB spawned-thread default.
    pub const DEFAULT_MAX_DEPTH: usize = 128;

    /// No guards at all — the behavior of [`parse_query_in`].
    pub fn none() -> ParseLimits {
        ParseLimits {
            max_entry_bytes: 0,
            max_tokens: 0,
            max_depth: 0,
        }
    }
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits {
            max_entry_bytes: ParseLimits::DEFAULT_MAX_ENTRY_BYTES,
            max_tokens: ParseLimits::DEFAULT_MAX_TOKENS,
            max_depth: ParseLimits::DEFAULT_MAX_DEPTH,
        }
    }
}

/// The `rdf:type` IRI that the keyword `a` abbreviates.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `rdf:first`, used when desugaring collections.
pub const RDF_FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
/// `rdf:rest`, used when desugaring collections.
pub const RDF_REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
/// `rdf:nil`, used when desugaring collections.
pub const RDF_NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";

thread_local! {
    static PARSE_ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Parses a complete SPARQL query string into an owned [`ast::Query`].
///
/// Internally parses into a thread-local arena (reset on each call) and
/// copies the result out; use [`parse_query_in`] to keep the zero-copy
/// borrowed form instead.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a syntactically valid SPARQL
/// 1.1 query (of the supported query subset).
///
/// # Examples
///
/// ```
/// use sparqlog_parser::parse_query;
/// let q = parse_query("ASK { ?x a <http://example.org/Person> }").unwrap();
/// assert_eq!(q.form, sparqlog_parser::ast::QueryForm::Ask);
/// ```
pub fn parse_query(input: &str) -> Result<ast::Query> {
    PARSE_ARENA.with(|cell| {
        let mut arena = cell.borrow_mut();
        arena.reset();
        parse_query_in(input, &arena).map(|q| q.to_owned())
    })
}

/// Parses a complete SPARQL query string into the borrowed
/// [`Query`] representation, allocating every node
/// into `arena`.
///
/// The returned query borrows both `input` and `arena`; see the
/// [`ast_ref`](crate::ast_ref) module docs for the lifetime rules (nothing
/// may outlive the next [`Arena::reset`]).
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a syntactically valid SPARQL
/// 1.1 query (of the supported query subset).
///
/// # Examples
///
/// ```
/// use sparqlog_parser::{parse_query_in, Arena};
/// let arena = Arena::new();
/// let q = parse_query_in("SELECT * WHERE { ?s ?p ?o }", &arena).unwrap();
/// assert!(q.has_body());
/// ```
pub fn parse_query_in<'a>(input: &'a str, arena: &'a Arena) -> Result<Query<'a>> {
    parse_query_in_with_limits(input, arena, &ParseLimits::none())
}

/// [`parse_query_in`] under hard resource guards: the entry-byte cap is
/// checked before tokenization, the token cap during it, and the
/// recursion-depth cap while parsing. Guard trips surface as structured
/// [`ParseError`]s ([`ErrorKind::OversizeEntry`] /
/// [`ErrorKind::DepthExceeded`]) — the corpus pipeline tallies or aborts on
/// them according to its recovery policy.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input is not a syntactically valid SPARQL
/// 1.1 query (of the supported query subset) or trips one of `limits`.
pub fn parse_query_in_with_limits<'a>(
    input: &'a str,
    arena: &'a Arena,
    limits: &ParseLimits,
) -> Result<Query<'a>> {
    if limits.max_entry_bytes > 0 && input.len() > limits.max_entry_bytes {
        return Err(ParseError::with_kind(
            ErrorKind::OversizeEntry,
            format!(
                "entry of {} bytes exceeds the {}-byte cap",
                input.len(),
                limits.max_entry_bytes
            ),
            1,
            1,
        ));
    }
    let tokens = tokenize_in_limited(input, arena, limits.max_tokens)?;
    let mut p = Parser::new(tokens, arena, limits.max_depth);
    let q = p.parse_query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser<'a> {
    tokens: &'a [Spanned<'a>],
    pos: usize,
    arena: &'a Arena,
    prefixes: Vec<(&'a str, &'a str)>,
    base: Option<&'a str>,
    blank_counter: u32,
    /// Current nesting depth of the guarded recursion sites.
    depth: usize,
    /// Recursion-depth cap (`0` = unlimited).
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Spanned<'a>], arena: &'a Arena, max_depth: usize) -> Self {
        Parser {
            tokens,
            pos: 0,
            arena,
            prefixes: Vec::new(),
            base: None,
            blank_counter: 0,
            depth: 0,
            max_depth,
        }
    }

    /// Enters one level of guarded recursion (group patterns, bracketed
    /// terms, path groups, parenthesized expressions). Paired with
    /// [`Parser::leave`]; trips [`ErrorKind::DepthExceeded`] past the cap.
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.max_depth > 0 && self.depth > self.max_depth {
            let (line, column) = self.here();
            return Err(ParseError::with_kind(
                ErrorKind::DepthExceeded,
                format!("entry nests deeper than the {}-level cap", self.max_depth),
                line,
                column,
            ));
        }
        Ok(())
    }

    /// Leaves one level of guarded recursion.
    fn leave(&mut self) {
        self.depth -= 1;
    }

    // ------------------------------------------------------------------
    // Token-stream helpers
    // ------------------------------------------------------------------

    fn peek(&self) -> Option<Token<'a>> {
        self.tokens.get(self.pos).map(|s| s.token)
    }

    fn peek_at(&self, off: usize) -> Option<Token<'a>> {
        self.tokens.get(self.pos + off).map(|s| s.token)
    }

    fn bump(&mut self) -> Option<Token<'a>> {
        let t = self.tokens.get(self.pos).map(|s| s.token);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (u32, u32) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.column))
            .unwrap_or((1, 1))
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (line, column) = self.here();
        ParseError::new(msg, line, column)
    }

    fn eat(&mut self, expected: Token<'a>) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: Token<'a>) -> Result<()> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {expected}, found {}",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek() == Some(Token::Keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw:?}")))
        }
    }

    fn at_keyword(&self, kw: Keyword) -> bool {
        self.peek() == Some(Token::Keyword(kw))
    }

    fn expect_eof(&self) -> Result<()> {
        // Allow a trailing dot or semicolon — seen in real logs.
        let mut p = self.pos;
        while matches!(
            self.tokens.get(p).map(|s| s.token),
            Some(Token::Dot) | Some(Token::Semicolon)
        ) {
            p += 1;
        }
        if p == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing content after query"))
        }
    }

    fn fresh_blank(&mut self) -> Term<'a> {
        self.blank_counter += 1;
        // "gen" + up to 10 decimal digits, formatted without allocating.
        let mut buf = [0u8; 13];
        buf[..3].copy_from_slice(b"gen");
        let mut n = self.blank_counter;
        let mut digits = [0u8; 10];
        let mut i = digits.len();
        loop {
            i -= 1;
            digits[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        let len = 3 + (digits.len() - i);
        buf[3..len].copy_from_slice(&digits[i..]);
        let label = std::str::from_utf8(&buf[..len]).expect("ascii digits");
        Term::BlankNode(self.arena.alloc_str(label))
    }

    // ------------------------------------------------------------------
    // Prologue
    // ------------------------------------------------------------------

    fn parse_prologue(&mut self) -> Result<Prologue<'a>> {
        loop {
            if self.eat_keyword(Keyword::Prefix) {
                let (prefix, local) = match self.bump() {
                    Some(Token::PrefixedName(p, l)) => (p, l),
                    _ => return Err(self.error("expected prefix name after PREFIX")),
                };
                if !local.is_empty() {
                    return Err(self.error("prefix declaration must end with ':'"));
                }
                let iri = match self.bump() {
                    Some(Token::IriRef(i)) => i,
                    _ => return Err(self.error("expected IRI in PREFIX declaration")),
                };
                // Later declarations override earlier ones for the same prefix.
                self.prefixes.retain(|(p, _)| *p != prefix);
                self.prefixes.push((prefix, iri));
            } else if self.eat_keyword(Keyword::Base) {
                let iri = match self.bump() {
                    Some(Token::IriRef(i)) => i,
                    _ => return Err(self.error("expected IRI in BASE declaration")),
                };
                self.base = Some(iri);
            } else {
                break;
            }
        }
        Ok(Prologue {
            base: self.base,
            prefixes: self.arena.alloc_slice(&self.prefixes),
        })
    }

    fn expand_prefixed(&self, prefix: &'a str, local: &'a str) -> &'a str {
        for (p, iri) in self.prefixes.iter().rev() {
            if *p == prefix {
                return self.arena.alloc_str_concat(iri, local);
            }
        }
        let head = self.arena.alloc_str_concat(prefix, ":");
        self.arena.alloc_str_concat(head, local)
    }

    // ------------------------------------------------------------------
    // Query forms
    // ------------------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query<'a>> {
        let prologue = self.parse_prologue()?;
        let q = match self.peek() {
            Some(Token::Keyword(Keyword::Select)) => self.parse_select(prologue, true)?,
            Some(Token::Keyword(Keyword::Ask)) => self.parse_ask(prologue)?,
            Some(Token::Keyword(Keyword::Construct)) => self.parse_construct(prologue)?,
            Some(Token::Keyword(Keyword::Describe)) => self.parse_describe(prologue)?,
            _ => return Err(self.error("expected SELECT, ASK, CONSTRUCT or DESCRIBE")),
        };
        Ok(q)
    }

    /// Parses a SELECT query. `top_level` controls whether dataset clauses and
    /// a trailing VALUES block are allowed (they are not in subqueries).
    fn parse_select(&mut self, prologue: Prologue<'a>, top_level: bool) -> Result<Query<'a>> {
        self.expect_keyword(Keyword::Select)?;
        let mut modifiers = SolutionModifiers::default();
        if self.eat_keyword(Keyword::Distinct) {
            modifiers.distinct = true;
        } else if self.eat_keyword(Keyword::Reduced) {
            modifiers.reduced = true;
        }
        let projection = self.parse_select_items()?;
        let dataset = if top_level {
            self.parse_dataset_clauses()?
        } else {
            &[]
        };
        self.eat_keyword(Keyword::Where);
        let body = self.parse_group_graph_pattern()?;
        self.parse_solution_modifiers(&mut modifiers)?;
        let values = if top_level {
            self.parse_values_clause()?
        } else {
            None
        };
        Ok(Query {
            prologue,
            form: QueryForm::Select,
            projection,
            construct_template: None,
            dataset,
            where_clause: Some(body),
            modifiers,
            values,
        })
    }

    fn parse_select_items(&mut self) -> Result<Projection<'a>> {
        if self.eat(Token::Star) {
            return Ok(Projection::All);
        }
        let mut items = ArenaVec::new(self.arena);
        loop {
            match self.peek() {
                Some(Token::Var(v)) => {
                    self.bump();
                    items.push(SelectItem { expr: None, var: v });
                }
                Some(Token::LParen) => {
                    self.bump();
                    let expr = self.parse_expression()?;
                    self.expect_keyword(Keyword::As)?;
                    let var = match self.bump() {
                        Some(Token::Var(v)) => v,
                        _ => return Err(self.error("expected variable after AS")),
                    };
                    self.expect(Token::RParen)?;
                    items.push(SelectItem {
                        expr: Some(expr),
                        var,
                    });
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return Err(self.error("SELECT clause requires '*' or at least one variable"));
        }
        Ok(Projection::Items(items.finish()))
    }

    fn parse_ask(&mut self, prologue: Prologue<'a>) -> Result<Query<'a>> {
        self.expect_keyword(Keyword::Ask)?;
        let dataset = self.parse_dataset_clauses()?;
        self.eat_keyword(Keyword::Where);
        let body = self.parse_group_graph_pattern()?;
        let mut modifiers = SolutionModifiers::default();
        self.parse_solution_modifiers(&mut modifiers)?;
        let values = self.parse_values_clause()?;
        Ok(Query {
            prologue,
            form: QueryForm::Ask,
            projection: Projection::None,
            construct_template: None,
            dataset,
            where_clause: Some(body),
            modifiers,
            values,
        })
    }

    fn parse_construct(&mut self, prologue: Prologue<'a>) -> Result<Query<'a>> {
        self.expect_keyword(Keyword::Construct)?;
        if self.peek() == Some(Token::LBrace) {
            // CONSTRUCT { template } dataset* WHERE { pattern } modifiers
            let template = self.parse_construct_template()?;
            let dataset = self.parse_dataset_clauses()?;
            self.eat_keyword(Keyword::Where);
            let body = self.parse_group_graph_pattern()?;
            let mut modifiers = SolutionModifiers::default();
            self.parse_solution_modifiers(&mut modifiers)?;
            Ok(Query {
                prologue,
                form: QueryForm::Construct,
                projection: Projection::None,
                construct_template: Some(template),
                dataset,
                where_clause: Some(body),
                modifiers,
                values: None,
            })
        } else {
            // Short form: CONSTRUCT dataset* WHERE { triples }
            let dataset = self.parse_dataset_clauses()?;
            self.expect_keyword(Keyword::Where)?;
            let body = self.parse_group_graph_pattern()?;
            let mut modifiers = SolutionModifiers::default();
            self.parse_solution_modifiers(&mut modifiers)?;
            Ok(Query {
                prologue,
                form: QueryForm::Construct,
                projection: Projection::None,
                construct_template: None,
                dataset,
                where_clause: Some(body),
                modifiers,
                values: None,
            })
        }
    }

    fn parse_construct_template(&mut self) -> Result<&'a [TriplePattern<'a>]> {
        self.expect(Token::LBrace)?;
        let mut triples = ArenaVec::new(self.arena);
        if self.peek() != Some(Token::RBrace) {
            let items = self.parse_triples_block()?;
            for item in items {
                match item {
                    TripleOrPath::Triple(t) => triples.push(*t),
                    TripleOrPath::Path(p) => {
                        // A trivial path is still a triple; anything else is
                        // illegal in a CONSTRUCT template.
                        if let PropertyPath::Iri(iri) = p.path {
                            triples.push(TriplePattern {
                                subject: p.subject,
                                predicate: Term::Iri(iri),
                                object: p.object,
                            });
                        } else {
                            return Err(
                                self.error("property paths are not allowed in CONSTRUCT templates")
                            );
                        }
                    }
                }
            }
        }
        self.expect(Token::RBrace)?;
        Ok(triples.finish())
    }

    fn parse_describe(&mut self, prologue: Prologue<'a>) -> Result<Query<'a>> {
        self.expect_keyword(Keyword::Describe)?;
        let projection = if self.eat(Token::Star) {
            Projection::All
        } else {
            let mut terms = ArenaVec::new(self.arena);
            while matches!(
                self.peek(),
                Some(Token::Var(_)) | Some(Token::IriRef(_)) | Some(Token::PrefixedName(_, _))
            ) {
                let term = self.parse_var_or_iri()?;
                terms.push(term);
            }
            if terms.is_empty() {
                return Err(self.error("DESCRIBE requires '*' or at least one resource"));
            }
            Projection::Terms(terms.finish())
        };
        let dataset = self.parse_dataset_clauses()?;
        let where_clause = if self.at_keyword(Keyword::Where) || self.peek() == Some(Token::LBrace)
        {
            self.eat_keyword(Keyword::Where);
            Some(self.parse_group_graph_pattern()?)
        } else {
            None
        };
        let mut modifiers = SolutionModifiers::default();
        self.parse_solution_modifiers(&mut modifiers)?;
        Ok(Query {
            prologue,
            form: QueryForm::Describe,
            projection,
            construct_template: None,
            dataset,
            where_clause,
            modifiers,
            values: None,
        })
    }

    fn parse_dataset_clauses(&mut self) -> Result<&'a [DatasetClause<'a>]> {
        let mut out = ArenaVec::new(self.arena);
        while self.eat_keyword(Keyword::From) {
            let named = self.eat_keyword(Keyword::Named);
            let iri = match self.parse_iri()? {
                Term::Iri(i) => i,
                _ => return Err(self.error("expected IRI in FROM clause")),
            };
            out.push(DatasetClause { named, iri });
        }
        Ok(out.finish())
    }

    // ------------------------------------------------------------------
    // Group graph patterns
    // ------------------------------------------------------------------

    fn parse_group_graph_pattern(&mut self) -> Result<GroupGraphPattern<'a>> {
        self.enter()?;
        let result = self.parse_group_graph_pattern_inner();
        self.leave();
        result
    }

    fn parse_group_graph_pattern_inner(&mut self) -> Result<GroupGraphPattern<'a>> {
        self.expect(Token::LBrace)?;
        // Subquery?
        if self.at_keyword(Keyword::Select) {
            let mut sub = self.parse_select(Prologue::default(), false)?;
            // An optional VALUES clause may follow the subquery.
            let values = self.parse_values_clause()?;
            self.expect(Token::RBrace)?;
            sub.values = values;
            let elements = self
                .arena
                .alloc_slice(&[GroupElement::SubSelect(self.arena.alloc(sub))]);
            return Ok(GroupGraphPattern { elements });
        }
        let mut elements = ArenaVec::new(self.arena);
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                None => return Err(self.error("unterminated group graph pattern")),
                Some(Token::Keyword(Keyword::Filter)) => {
                    self.bump();
                    let e = self.parse_constraint()?;
                    elements.push(GroupElement::Filter(e));
                    self.eat(Token::Dot);
                }
                Some(Token::Keyword(Keyword::Optional)) => {
                    self.bump();
                    let g = self.parse_group_graph_pattern()?;
                    elements.push(GroupElement::Optional(g));
                    self.eat(Token::Dot);
                }
                Some(Token::Keyword(Keyword::Minus)) => {
                    self.bump();
                    let g = self.parse_group_graph_pattern()?;
                    elements.push(GroupElement::Minus(g));
                    self.eat(Token::Dot);
                }
                Some(Token::Keyword(Keyword::Graph)) => {
                    self.bump();
                    let name = self.parse_var_or_iri()?;
                    let pattern = self.parse_group_graph_pattern()?;
                    elements.push(GroupElement::Graph { name, pattern });
                    self.eat(Token::Dot);
                }
                Some(Token::Keyword(Keyword::Service)) => {
                    self.bump();
                    let silent = self.eat_keyword(Keyword::Silent);
                    let name = self.parse_var_or_iri()?;
                    let pattern = self.parse_group_graph_pattern()?;
                    elements.push(GroupElement::Service {
                        silent,
                        name,
                        pattern,
                    });
                    self.eat(Token::Dot);
                }
                Some(Token::Keyword(Keyword::Bind)) => {
                    self.bump();
                    self.expect(Token::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_keyword(Keyword::As)?;
                    let var = match self.bump() {
                        Some(Token::Var(v)) => v,
                        _ => return Err(self.error("expected variable after AS in BIND")),
                    };
                    self.expect(Token::RParen)?;
                    elements.push(GroupElement::Bind { expr, var });
                    self.eat(Token::Dot);
                }
                Some(Token::Keyword(Keyword::Values)) => {
                    self.bump();
                    let data = self.parse_data_block()?;
                    elements.push(GroupElement::Values(data));
                    self.eat(Token::Dot);
                }
                Some(Token::LBrace) => {
                    // Group or union chain.
                    let first = self.parse_group_graph_pattern()?;
                    if self.at_keyword(Keyword::Union) {
                        let mut branches = ArenaVec::new(self.arena);
                        branches.push(first);
                        while self.eat_keyword(Keyword::Union) {
                            branches.push(self.parse_group_graph_pattern()?);
                        }
                        elements.push(GroupElement::Union(branches.finish()));
                    } else if first.elements.len() == 1
                        && matches!(first.elements[0], GroupElement::SubSelect(_))
                    {
                        // `{ SELECT … }` used directly as a group element: the
                        // braces belong to the subquery, so do not wrap it in
                        // an extra Group.
                        elements.push(first.elements[0]);
                    } else {
                        elements.push(GroupElement::Group(first));
                    }
                    self.eat(Token::Dot);
                }
                _ => {
                    let triples = self.parse_triples_block()?;
                    if triples.is_empty() {
                        return Err(self.error(format!(
                            "unexpected token {} in group graph pattern",
                            self.peek().map(|t| t.to_string()).unwrap_or_default()
                        )));
                    }
                    elements.push(GroupElement::Triples(triples));
                }
            }
        }
        Ok(GroupGraphPattern {
            elements: elements.finish(),
        })
    }

    /// Parses a block of triples-same-subject productions separated by dots.
    /// Stops before any token that cannot begin a triple.
    fn parse_triples_block(&mut self) -> Result<&'a [TripleOrPath<'a>]> {
        let mut out = ArenaVec::new(self.arena);
        loop {
            if !self.at_triple_start() {
                break;
            }
            self.parse_triples_same_subject(&mut out)?;
            if self.eat(Token::Dot) {
                continue;
            }
            break;
        }
        Ok(out.finish())
    }

    fn at_triple_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Var(_))
                | Some(Token::IriRef(_))
                | Some(Token::PrefixedName(_, _))
                | Some(Token::BlankNodeLabel(_))
                | Some(Token::Anon)
                | Some(Token::LBracket)
                | Some(Token::String(_))
                | Some(Token::Integer(_))
                | Some(Token::Decimal(_))
                | Some(Token::Double(_))
                | Some(Token::Boolean(_))
                | Some(Token::Nil)
                | Some(Token::LParen)
                | Some(Token::Minus)
                | Some(Token::Plus)
        )
    }

    fn parse_triples_same_subject(
        &mut self,
        out: &mut ArenaVec<'a, TripleOrPath<'a>>,
    ) -> Result<()> {
        // Subject: a term, a blank-node property list, or a collection.
        let subject = match self.peek() {
            Some(Token::LBracket) => {
                let node = self.parse_blank_node_property_list(out)?;
                // A blank-node property list may be the whole triple.
                if !self.at_verb_start() {
                    return Ok(());
                }
                node
            }
            Some(Token::LParen) | Some(Token::Nil) => self.parse_collection(out)?,
            _ => self.parse_graph_node(out)?,
        };
        self.parse_property_list(subject, out, true)
    }

    fn at_verb_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::A)
                | Some(Token::Var(_))
                | Some(Token::IriRef(_))
                | Some(Token::PrefixedName(_, _))
                | Some(Token::Caret)
                | Some(Token::Bang)
                | Some(Token::LParen)
        )
    }

    /// Parses a predicate-object list for `subject`, appending triples to
    /// `out`. `required` demands at least one verb.
    fn parse_property_list(
        &mut self,
        subject: Term<'a>,
        out: &mut ArenaVec<'a, TripleOrPath<'a>>,
        required: bool,
    ) -> Result<()> {
        if !self.at_verb_start() {
            if required {
                return Err(self.error("expected predicate"));
            }
            return Ok(());
        }
        loop {
            // Verb: variable, 'a', or property path.
            enum Verb<'v> {
                Var(&'v str),
                Path(PropertyPath<'v>),
            }
            let verb = match self.peek() {
                Some(Token::Var(v)) => {
                    self.bump();
                    Verb::Var(v)
                }
                _ => Verb::Path(self.parse_path()?),
            };
            // Object list.
            loop {
                let object = match self.peek() {
                    Some(Token::LBracket) => self.parse_blank_node_property_list(out)?,
                    Some(Token::LParen) | Some(Token::Nil) => self.parse_collection(out)?,
                    _ => self.parse_graph_node(out)?,
                };
                let item = match verb {
                    Verb::Var(v) => TripleOrPath::Triple(TriplePattern {
                        subject,
                        predicate: Term::Var(v),
                        object,
                    }),
                    Verb::Path(PropertyPath::Iri(iri)) => TripleOrPath::Triple(TriplePattern {
                        subject,
                        predicate: Term::Iri(iri),
                        object,
                    }),
                    Verb::Path(p) => TripleOrPath::Path(PathPattern {
                        subject,
                        path: p,
                        object,
                    }),
                };
                out.push(item);
                if !self.eat(Token::Comma) {
                    break;
                }
            }
            // ';' continues with another verb for the same subject; a dangling
            // ';' before '.' or '}' is tolerated (common in real logs).
            if self.eat(Token::Semicolon) {
                while self.eat(Token::Semicolon) {}
                if self.at_verb_start() {
                    continue;
                }
            }
            break;
        }
        Ok(())
    }

    /// Parses `[ predicate-object-list ]`, returning the fresh blank node.
    fn parse_blank_node_property_list(
        &mut self,
        out: &mut ArenaVec<'a, TripleOrPath<'a>>,
    ) -> Result<Term<'a>> {
        self.enter()?;
        let result = self.parse_blank_node_property_list_inner(out);
        self.leave();
        result
    }

    fn parse_blank_node_property_list_inner(
        &mut self,
        out: &mut ArenaVec<'a, TripleOrPath<'a>>,
    ) -> Result<Term<'a>> {
        self.expect(Token::LBracket)?;
        let node = self.fresh_blank();
        self.parse_property_list(node, out, true)?;
        self.expect(Token::RBracket)?;
        Ok(node)
    }

    /// Parses an RDF collection `( n1 n2 … )`, desugaring to `rdf:first` /
    /// `rdf:rest` triples; returns the head node (or `rdf:nil` when empty).
    fn parse_collection(&mut self, out: &mut ArenaVec<'a, TripleOrPath<'a>>) -> Result<Term<'a>> {
        self.enter()?;
        let result = self.parse_collection_inner(out);
        self.leave();
        result
    }

    fn parse_collection_inner(
        &mut self,
        out: &mut ArenaVec<'a, TripleOrPath<'a>>,
    ) -> Result<Term<'a>> {
        if self.eat(Token::Nil) {
            return Ok(Term::Iri(RDF_NIL));
        }
        self.expect(Token::LParen)?;
        let mut nodes = ArenaVec::new(self.arena);
        while self.peek() != Some(Token::RParen) {
            let node = match self.peek() {
                Some(Token::LBracket) => self.parse_blank_node_property_list(out)?,
                Some(Token::LParen) | Some(Token::Nil) => self.parse_collection(out)?,
                None => return Err(self.error("unterminated collection")),
                _ => self.parse_graph_node(out)?,
            };
            nodes.push(node);
        }
        self.expect(Token::RParen)?;
        // Desugar.
        let mut head = Term::Iri(RDF_NIL);
        for node in nodes.finish().iter().rev() {
            let cell = self.fresh_blank();
            out.push(TripleOrPath::Triple(TriplePattern {
                subject: cell,
                predicate: Term::Iri(RDF_FIRST),
                object: *node,
            }));
            out.push(TripleOrPath::Triple(TriplePattern {
                subject: cell,
                predicate: Term::Iri(RDF_REST),
                object: head,
            }));
            head = cell;
        }
        Ok(head)
    }

    /// Parses a simple graph node: a variable, IRI, literal or blank node.
    fn parse_graph_node(&mut self, _out: &mut ArenaVec<'a, TripleOrPath<'a>>) -> Result<Term<'a>> {
        self.parse_term()
    }

    fn parse_var_or_iri(&mut self) -> Result<Term<'a>> {
        match self.peek() {
            Some(Token::Var(v)) => {
                self.bump();
                Ok(Term::Var(v))
            }
            _ => self.parse_iri(),
        }
    }

    fn parse_iri(&mut self) -> Result<Term<'a>> {
        match self.bump() {
            Some(Token::IriRef(i)) => Ok(Term::Iri(i)),
            Some(Token::PrefixedName(p, l)) => Ok(Term::Iri(self.expand_prefixed(p, l))),
            Some(Token::A) => Ok(Term::Iri(RDF_TYPE)),
            other => Err(self.error(format!(
                "expected IRI, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// Parses an RDF term (no blank node property lists / collections).
    fn parse_term(&mut self) -> Result<Term<'a>> {
        // Optional numeric sign.
        let negative = if self.peek() == Some(Token::Minus) {
            self.bump();
            true
        } else {
            if self.peek() == Some(Token::Plus) {
                self.bump();
            }
            false
        };
        let tok = self
            .bump()
            .ok_or_else(|| self.error("expected term, found end of input"))?;
        let term = match tok {
            Token::Var(v) => Term::Var(v),
            Token::IriRef(i) => Term::Iri(i),
            Token::PrefixedName(p, l) => Term::Iri(self.expand_prefixed(p, l)),
            Token::A => Term::Iri(RDF_TYPE),
            Token::BlankNodeLabel(b) => Term::BlankNode(b),
            Token::Anon => self.fresh_blank(),
            Token::Boolean(b) => Term::Literal {
                lexical: if b { "true" } else { "false" },
                datatype: Some("http://www.w3.org/2001/XMLSchema#boolean"),
                lang: None,
            },
            Token::Integer(s) => Term::Literal {
                lexical: self.signed_lexical(s, negative),
                datatype: Some("http://www.w3.org/2001/XMLSchema#integer"),
                lang: None,
            },
            Token::Decimal(s) => Term::Literal {
                lexical: self.signed_lexical(s, negative),
                datatype: Some("http://www.w3.org/2001/XMLSchema#decimal"),
                lang: None,
            },
            Token::Double(s) => Term::Literal {
                lexical: self.signed_lexical(s, negative),
                datatype: Some("http://www.w3.org/2001/XMLSchema#double"),
                lang: None,
            },
            Token::String(s) => {
                // Optional language tag or datatype.
                match self.peek() {
                    Some(Token::LangTag(tag)) => {
                        self.bump();
                        Term::Literal {
                            lexical: s,
                            datatype: None,
                            lang: Some(tag),
                        }
                    }
                    Some(Token::DoubleCaret) => {
                        self.bump();
                        let dt = match self.parse_iri()? {
                            Term::Iri(i) => i,
                            _ => return Err(self.error("expected datatype IRI after ^^")),
                        };
                        Term::Literal {
                            lexical: s,
                            datatype: Some(dt),
                            lang: None,
                        }
                    }
                    _ => Term::Literal {
                        lexical: s,
                        datatype: None,
                        lang: None,
                    },
                }
            }
            Token::Nil => Term::Iri(RDF_NIL),
            other => {
                return Err(self.error(format!("expected term, found {other}")));
            }
        };
        if negative && !matches!(term, Term::Literal { .. }) {
            return Err(self.error("'-' must be followed by a numeric literal"));
        }
        Ok(term)
    }

    fn signed_lexical(&self, s: &'a str, negative: bool) -> &'a str {
        if negative {
            self.arena.alloc_str_concat("-", s)
        } else {
            s
        }
    }

    // ------------------------------------------------------------------
    // Property paths
    // ------------------------------------------------------------------

    fn parse_path(&mut self) -> Result<PropertyPath<'a>> {
        self.parse_path_alternative()
    }

    fn path_ref(&self, p: PropertyPath<'a>) -> &'a PropertyPath<'a> {
        self.arena.alloc(p)
    }

    fn parse_path_alternative(&mut self) -> Result<PropertyPath<'a>> {
        let mut left = self.parse_path_sequence()?;
        while self.eat(Token::Pipe) {
            let right = self.parse_path_sequence()?;
            left = PropertyPath::Alternative(self.path_ref(left), self.path_ref(right));
        }
        Ok(left)
    }

    fn parse_path_sequence(&mut self) -> Result<PropertyPath<'a>> {
        let mut left = self.parse_path_elt_or_inverse()?;
        while self.eat(Token::Slash) {
            let right = self.parse_path_elt_or_inverse()?;
            left = PropertyPath::Sequence(self.path_ref(left), self.path_ref(right));
        }
        Ok(left)
    }

    fn parse_path_elt_or_inverse(&mut self) -> Result<PropertyPath<'a>> {
        if self.eat(Token::Caret) {
            let p = self.parse_path_elt()?;
            Ok(PropertyPath::Inverse(self.path_ref(p)))
        } else {
            self.parse_path_elt()
        }
    }

    fn parse_path_elt(&mut self) -> Result<PropertyPath<'a>> {
        let primary = self.parse_path_primary()?;
        Ok(match self.peek() {
            Some(Token::Star) => {
                self.bump();
                PropertyPath::ZeroOrMore(self.path_ref(primary))
            }
            Some(Token::Plus) => {
                self.bump();
                PropertyPath::OneOrMore(self.path_ref(primary))
            }
            Some(Token::Question) => {
                self.bump();
                PropertyPath::ZeroOrOne(self.path_ref(primary))
            }
            _ => primary,
        })
    }

    fn parse_path_primary(&mut self) -> Result<PropertyPath<'a>> {
        self.enter()?;
        let result = self.parse_path_primary_inner();
        self.leave();
        result
    }

    fn parse_path_primary_inner(&mut self) -> Result<PropertyPath<'a>> {
        match self.peek() {
            Some(Token::IriRef(_)) | Some(Token::PrefixedName(_, _)) | Some(Token::A) => {
                let Term::Iri(iri) = self.parse_iri()? else {
                    unreachable!()
                };
                Ok(PropertyPath::Iri(iri))
            }
            Some(Token::Bang) => {
                self.bump();
                self.parse_negated_property_set()
            }
            Some(Token::LParen) => {
                self.bump();
                let p = self.parse_path()?;
                self.expect(Token::RParen)?;
                Ok(p)
            }
            _ => Err(self.error("expected property path")),
        }
    }

    fn parse_negated_property_set(&mut self) -> Result<PropertyPath<'a>> {
        let mut items = ArenaVec::new(self.arena);
        if self.eat(Token::LParen) {
            loop {
                let inverse = self.eat(Token::Caret);
                let Term::Iri(iri) = self.parse_iri()? else {
                    unreachable!()
                };
                items.push((iri, inverse));
                if !self.eat(Token::Pipe) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
        } else {
            let inverse = self.eat(Token::Caret);
            let Term::Iri(iri) = self.parse_iri()? else {
                unreachable!()
            };
            items.push((iri, inverse));
        }
        Ok(PropertyPath::NegatedPropertySet(items.finish()))
    }

    // ------------------------------------------------------------------
    // VALUES
    // ------------------------------------------------------------------

    fn parse_values_clause(&mut self) -> Result<Option<InlineData<'a>>> {
        if self.eat_keyword(Keyword::Values) {
            Ok(Some(self.parse_data_block()?))
        } else {
            Ok(None)
        }
    }

    fn parse_data_block(&mut self) -> Result<InlineData<'a>> {
        // Single variable or parenthesised variable list.
        let mut variables = ArenaVec::new(self.arena);
        let single = match self.peek() {
            Some(Token::Var(v)) => {
                self.bump();
                variables.push(v);
                true
            }
            Some(Token::LParen) | Some(Token::Nil) => {
                if self.eat(Token::Nil) {
                    // no variables
                } else {
                    self.bump();
                    while let Some(Token::Var(v)) = self.peek() {
                        self.bump();
                        variables.push(v);
                    }
                    self.expect(Token::RParen)?;
                }
                false
            }
            _ => return Err(self.error("expected variable list in VALUES")),
        };
        self.expect(Token::LBrace)?;
        let mut rows: ArenaVec<'a, ValuesRow<'a>> = ArenaVec::new(self.arena);
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                None => return Err(self.error("unterminated VALUES block")),
                _ => {
                    if single {
                        let term = self.parse_data_value()?;
                        rows.push(self.arena.alloc_slice(&[term]));
                    } else {
                        if self.eat(Token::Nil) {
                            rows.push(&[]);
                            continue;
                        }
                        self.expect(Token::LParen)?;
                        let mut row = ArenaVec::new(self.arena);
                        while self.peek() != Some(Token::RParen) {
                            row.push(self.parse_data_value()?);
                        }
                        self.expect(Token::RParen)?;
                        rows.push(row.finish());
                    }
                }
            }
        }
        Ok(InlineData {
            variables: variables.finish(),
            rows: rows.finish(),
        })
    }

    fn parse_data_value(&mut self) -> Result<Option<Term<'a>>> {
        if self.eat_keyword(Keyword::Undef) {
            return Ok(None);
        }
        Ok(Some(self.parse_term()?))
    }

    // ------------------------------------------------------------------
    // Solution modifiers
    // ------------------------------------------------------------------

    fn parse_solution_modifiers(&mut self, m: &mut SolutionModifiers<'a>) -> Result<()> {
        // GROUP BY
        if self.at_keyword(Keyword::Group) && self.peek_at(1) == Some(Token::Keyword(Keyword::By)) {
            self.bump();
            self.bump();
            let mut group_by = ArenaVec::new(self.arena);
            loop {
                match self.peek() {
                    Some(Token::Var(v)) => {
                        self.bump();
                        group_by.push(GroupCondition {
                            expr: Expression::Var(v),
                            alias: None,
                        });
                    }
                    Some(Token::LParen) => {
                        self.bump();
                        let expr = self.parse_expression()?;
                        let alias = if self.eat_keyword(Keyword::As) {
                            match self.bump() {
                                Some(Token::Var(v)) => Some(v),
                                _ => return Err(self.error("expected variable after AS")),
                            }
                        } else {
                            None
                        };
                        self.expect(Token::RParen)?;
                        group_by.push(GroupCondition { expr, alias });
                    }
                    Some(Token::Ident(_))
                    | Some(Token::IriRef(_))
                    | Some(Token::PrefixedName(_, _)) => {
                        let expr = self.parse_unary_expression()?;
                        group_by.push(GroupCondition { expr, alias: None });
                    }
                    _ => break,
                }
            }
            if group_by.is_empty() {
                return Err(self.error("expected GROUP BY condition"));
            }
            m.group_by = group_by.finish();
        }
        // HAVING
        if self.eat_keyword(Keyword::Having) {
            let mut having = ArenaVec::new(self.arena);
            loop {
                let e = self.parse_constraint()?;
                having.push(e);
                if !matches!(self.peek(), Some(Token::LParen) | Some(Token::Ident(_))) {
                    break;
                }
            }
            m.having = having.finish();
        }
        // ORDER BY
        if self.at_keyword(Keyword::Order) && self.peek_at(1) == Some(Token::Keyword(Keyword::By)) {
            self.bump();
            self.bump();
            let mut order_by = ArenaVec::new(self.arena);
            loop {
                let cond = match self.peek() {
                    Some(Token::Keyword(Keyword::Asc)) | Some(Token::Keyword(Keyword::Desc)) => {
                        let dir = if self.eat_keyword(Keyword::Asc) {
                            OrderDirection::Asc
                        } else {
                            self.bump();
                            OrderDirection::Desc
                        };
                        self.expect(Token::LParen)?;
                        let expr = self.parse_expression()?;
                        self.expect(Token::RParen)?;
                        Some(OrderCondition {
                            direction: dir,
                            expr,
                        })
                    }
                    Some(Token::Var(v)) => {
                        self.bump();
                        Some(OrderCondition {
                            direction: OrderDirection::Asc,
                            expr: Expression::Var(v),
                        })
                    }
                    Some(Token::LParen) => {
                        self.bump();
                        let expr = self.parse_expression()?;
                        self.expect(Token::RParen)?;
                        Some(OrderCondition {
                            direction: OrderDirection::Asc,
                            expr,
                        })
                    }
                    Some(Token::Ident(_)) => {
                        let expr = self.parse_unary_expression()?;
                        Some(OrderCondition {
                            direction: OrderDirection::Asc,
                            expr,
                        })
                    }
                    _ => None,
                };
                match cond {
                    Some(c) => order_by.push(c),
                    None => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.error("expected ORDER BY condition"));
            }
            m.order_by = order_by.finish();
        }
        // LIMIT / OFFSET in either order.
        loop {
            if self.eat_keyword(Keyword::Limit) {
                let n = self.parse_integer()?;
                m.limit = Some(n);
            } else if self.eat_keyword(Keyword::Offset) {
                let n = self.parse_integer()?;
                m.offset = Some(n);
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_integer(&mut self) -> Result<u64> {
        match self.bump() {
            Some(Token::Integer(s)) => s
                .parse::<u64>()
                .map_err(|_| self.error(format!("integer out of range: {s}"))),
            other => Err(self.error(format!(
                "expected integer, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr_ref(&self, e: Expression<'a>) -> &'a Expression<'a> {
        self.arena.alloc(e)
    }

    /// A FILTER / HAVING constraint: a bracketted expression, a built-in call,
    /// or a function call.
    fn parse_constraint(&mut self) -> Result<Expression<'a>> {
        match self.peek() {
            Some(Token::LParen) => {
                self.bump();
                let e = self.parse_expression()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            _ => self.parse_unary_expression(),
        }
    }

    fn parse_expression(&mut self) -> Result<Expression<'a>> {
        self.enter()?;
        let result = self.parse_or_expression();
        self.leave();
        result
    }

    fn parse_or_expression(&mut self) -> Result<Expression<'a>> {
        let mut left = self.parse_and_expression()?;
        while self.eat(Token::OrOr) {
            let right = self.parse_and_expression()?;
            left = Expression::Or(self.expr_ref(left), self.expr_ref(right));
        }
        Ok(left)
    }

    fn parse_and_expression(&mut self) -> Result<Expression<'a>> {
        let mut left = self.parse_relational_expression()?;
        while self.eat(Token::AndAnd) {
            let right = self.parse_relational_expression()?;
            left = Expression::And(self.expr_ref(left), self.expr_ref(right));
        }
        Ok(left)
    }

    fn parse_relational_expression(&mut self) -> Result<Expression<'a>> {
        let left = self.parse_additive_expression()?;
        let expr = match self.peek() {
            Some(Token::Equal) => {
                self.bump();
                let right = self.parse_additive_expression()?;
                Expression::Equal(self.expr_ref(left), self.expr_ref(right))
            }
            Some(Token::NotEqual) => {
                self.bump();
                let right = self.parse_additive_expression()?;
                Expression::NotEqual(self.expr_ref(left), self.expr_ref(right))
            }
            Some(Token::Less) => {
                self.bump();
                let right = self.parse_additive_expression()?;
                Expression::Less(self.expr_ref(left), self.expr_ref(right))
            }
            Some(Token::Greater) => {
                self.bump();
                let right = self.parse_additive_expression()?;
                Expression::Greater(self.expr_ref(left), self.expr_ref(right))
            }
            Some(Token::LessEq) => {
                self.bump();
                let right = self.parse_additive_expression()?;
                Expression::LessEq(self.expr_ref(left), self.expr_ref(right))
            }
            Some(Token::GreaterEq) => {
                self.bump();
                let right = self.parse_additive_expression()?;
                Expression::GreaterEq(self.expr_ref(left), self.expr_ref(right))
            }
            Some(Token::Keyword(Keyword::In)) => {
                self.bump();
                let list = self.parse_expression_list()?;
                Expression::In(self.expr_ref(left), list)
            }
            Some(Token::Keyword(Keyword::Not))
                if self.peek_at(1) == Some(Token::Keyword(Keyword::In)) =>
            {
                self.bump();
                self.bump();
                let list = self.parse_expression_list()?;
                Expression::NotIn(self.expr_ref(left), list)
            }
            _ => left,
        };
        Ok(expr)
    }

    fn parse_expression_list(&mut self) -> Result<&'a [Expression<'a>]> {
        if self.eat(Token::Nil) {
            return Ok(&[]);
        }
        self.expect(Token::LParen)?;
        let mut out = ArenaVec::new(self.arena);
        out.push(self.parse_expression()?);
        while self.eat(Token::Comma) {
            out.push(self.parse_expression()?);
        }
        self.expect(Token::RParen)?;
        Ok(out.finish())
    }

    fn parse_additive_expression(&mut self) -> Result<Expression<'a>> {
        let mut left = self.parse_multiplicative_expression()?;
        loop {
            if self.eat(Token::Plus) {
                let right = self.parse_multiplicative_expression()?;
                left = Expression::Add(self.expr_ref(left), self.expr_ref(right));
            } else if self.eat(Token::Minus) {
                let right = self.parse_multiplicative_expression()?;
                left = Expression::Subtract(self.expr_ref(left), self.expr_ref(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn parse_multiplicative_expression(&mut self) -> Result<Expression<'a>> {
        let mut left = self.parse_unary_expression()?;
        loop {
            if self.eat(Token::Star) {
                let right = self.parse_unary_expression()?;
                left = Expression::Multiply(self.expr_ref(left), self.expr_ref(right));
            } else if self.eat(Token::Slash) {
                let right = self.parse_unary_expression()?;
                left = Expression::Divide(self.expr_ref(left), self.expr_ref(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn parse_unary_expression(&mut self) -> Result<Expression<'a>> {
        if self.eat(Token::Bang) {
            let e = self.parse_unary_expression()?;
            Ok(Expression::Not(self.expr_ref(e)))
        } else if self.eat(Token::Minus) {
            let e = self.parse_unary_expression()?;
            Ok(Expression::UnaryMinus(self.expr_ref(e)))
        } else if self.eat(Token::Plus) {
            let e = self.parse_unary_expression()?;
            Ok(Expression::UnaryPlus(self.expr_ref(e)))
        } else {
            self.parse_primary_expression()
        }
    }

    fn parse_primary_expression(&mut self) -> Result<Expression<'a>> {
        self.enter()?;
        let result = self.parse_primary_expression_inner();
        self.leave();
        result
    }

    fn parse_primary_expression_inner(&mut self) -> Result<Expression<'a>> {
        match self.peek() {
            Some(Token::LParen) => {
                self.bump();
                let e = self.parse_expression()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Var(v)) => {
                self.bump();
                Ok(Expression::Var(v))
            }
            Some(Token::Keyword(Keyword::Exists)) => {
                self.bump();
                let g = self.parse_group_graph_pattern()?;
                Ok(Expression::Exists(self.arena.alloc(g)))
            }
            Some(Token::Keyword(Keyword::Not)) => {
                self.bump();
                self.expect_keyword(Keyword::Exists)?;
                let g = self.parse_group_graph_pattern()?;
                Ok(Expression::NotExists(self.arena.alloc(g)))
            }
            Some(Token::Keyword(kw)) if aggregate_kind(kw).is_some() => {
                self.bump();
                self.parse_aggregate(aggregate_kind(kw).expect("checked"))
            }
            Some(Token::Ident(name)) => {
                self.bump();
                let args = self.parse_arg_list()?;
                // Built-in names are canonicalized to upper case; skip the
                // copy when the source already is.
                let canonical = if name.bytes().any(|b| b.is_ascii_lowercase()) {
                    self.arena.alloc_str_ascii_uppercase(name)
                } else {
                    name
                };
                Ok(Expression::FunctionCall(canonical, args))
            }
            Some(Token::IriRef(_)) | Some(Token::PrefixedName(_, _)) | Some(Token::A) => {
                let iri = self.parse_iri()?;
                if matches!(self.peek(), Some(Token::LParen) | Some(Token::Nil)) {
                    let args = self.parse_arg_list()?;
                    let Term::Iri(name) = iri else { unreachable!() };
                    Ok(Expression::FunctionCall(name, args))
                } else {
                    Ok(Expression::Term(iri))
                }
            }
            Some(Token::String(_))
            | Some(Token::Integer(_))
            | Some(Token::Decimal(_))
            | Some(Token::Double(_))
            | Some(Token::Boolean(_)) => Ok(Expression::Term(self.parse_term()?)),
            other => Err(self.error(format!(
                "expected expression, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn parse_arg_list(&mut self) -> Result<&'a [Expression<'a>]> {
        if self.eat(Token::Nil) {
            return Ok(&[]);
        }
        self.expect(Token::LParen)?;
        // DISTINCT may appear in e.g. custom aggregate calls; skip it.
        self.eat_keyword(Keyword::Distinct);
        if self.eat(Token::RParen) {
            return Ok(&[]);
        }
        let mut args = ArenaVec::new(self.arena);
        args.push(self.parse_expression()?);
        while self.eat(Token::Comma) {
            args.push(self.parse_expression()?);
        }
        self.expect(Token::RParen)?;
        Ok(args.finish())
    }

    fn parse_aggregate(&mut self, kind: AggregateKind) -> Result<Expression<'a>> {
        self.expect(Token::LParen)?;
        let distinct = self.eat_keyword(Keyword::Distinct);
        let expr = if self.eat(Token::Star) {
            None
        } else {
            let e = self.parse_expression()?;
            Some(self.expr_ref(e))
        };
        let mut separator = None;
        if self.eat(Token::Semicolon) {
            self.expect_keyword(Keyword::Separator)?;
            self.expect(Token::Equal)?;
            match self.bump() {
                Some(Token::String(s)) => separator = Some(s),
                _ => return Err(self.error("expected string SEPARATOR value")),
            }
        }
        self.expect(Token::RParen)?;
        Ok(Expression::Aggregate(Aggregate {
            kind,
            distinct,
            expr,
            separator,
        }))
    }
}

fn aggregate_kind(kw: Keyword) -> Option<AggregateKind> {
    Some(match kw {
        Keyword::Count => AggregateKind::Count,
        Keyword::Sum => AggregateKind::Sum,
        Keyword::Min => AggregateKind::Min,
        Keyword::Max => AggregateKind::Max,
        Keyword::Avg => AggregateKind::Avg,
        Keyword::Sample => AggregateKind::Sample,
        Keyword::GroupConcat => AggregateKind::GroupConcat,
        _ => return None,
    })
}
