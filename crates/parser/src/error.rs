//! Error types shared by the lexer and the parser.

use std::fmt;

/// The stable taxonomy of malformed-entry failures, shared by the parser,
/// the corpus pipeline's per-log error tallies and the snapshot codec.
///
/// Every variant has an **append-only wire code** ([`ErrorKind::wire_code`]):
/// codes are never renumbered or reused, so snapshots and protocol frames
/// written by one build decode identically in every later build. New kinds
/// must be appended with the next free code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorKind {
    /// The entry failed lexical analysis (unterminated string or IRI, stray
    /// byte, bad escape).
    Lex,
    /// The entry tokenized but is not a syntactically valid query of the
    /// supported subset.
    Syntax,
    /// The raw log bytes were not valid UTF-8 (a reader-level defect — the
    /// entry never reached the lexer).
    InvalidUtf8,
    /// The entry tripped a resource guard before or during tokenization:
    /// the per-entry byte cap or the token-count cap.
    OversizeEntry,
    /// The entry nested deeper than the parser's recursion-depth guard.
    DepthExceeded,
    /// Parsing the entry panicked; the panic was caught at the batch
    /// boundary and recorded instead of killing the worker.
    WorkerPanic,
}

impl ErrorKind {
    /// Number of kinds in the taxonomy.
    pub const COUNT: usize = 6;

    /// Every kind, in wire-code order.
    pub const ALL: [ErrorKind; ErrorKind::COUNT] = [
        ErrorKind::Lex,
        ErrorKind::Syntax,
        ErrorKind::InvalidUtf8,
        ErrorKind::OversizeEntry,
        ErrorKind::DepthExceeded,
        ErrorKind::WorkerPanic,
    ];

    /// The append-only wire code of this kind.
    pub fn wire_code(self) -> u8 {
        match self {
            ErrorKind::Lex => 0,
            ErrorKind::Syntax => 1,
            ErrorKind::InvalidUtf8 => 2,
            ErrorKind::OversizeEntry => 3,
            ErrorKind::DepthExceeded => 4,
            ErrorKind::WorkerPanic => 5,
        }
    }

    /// The kind for a wire code, or `None` for a code this build does not
    /// know (a snapshot from a newer build).
    pub fn from_wire_code(code: u8) -> Option<ErrorKind> {
        ErrorKind::ALL.get(code as usize).copied()
    }

    /// A short stable label, used by reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Lex => "lex",
            ErrorKind::Syntax => "syntax",
            ErrorKind::InvalidUtf8 => "invalid-utf8",
            ErrorKind::OversizeEntry => "oversize-entry",
            ErrorKind::DepthExceeded => "depth-exceeded",
            ErrorKind::WorkerPanic => "worker-panic",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An error raised while tokenizing or parsing a SPARQL query.
///
/// The error carries a human-readable message, a stable [`ErrorKind`] and
/// the position (1-based line and column) where the problem was detected.
/// Query-log entries that are not SPARQL at all (HTTP requests, truncated
/// strings, …) surface as parse errors and are counted as *invalid* by the
/// corpus pipeline, mirroring the paper's "Valid" column in Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Which class of failure this is.
    pub kind: ErrorKind,
    /// 1-based line number of the offending position.
    pub line: u32,
    /// 1-based column number of the offending position.
    pub column: u32,
}

impl ParseError {
    /// Creates a new syntax error at the given position.
    pub fn new(message: impl Into<String>, line: u32, column: u32) -> Self {
        ParseError::with_kind(ErrorKind::Syntax, message, line, column)
    }

    /// Creates a new error of an explicit kind at the given position.
    pub fn with_kind(kind: ErrorKind, message: impl Into<String>, line: u32, column: u32) -> Self {
        ParseError {
            message: message.into(),
            kind,
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error ({}) at {}:{}: {}",
            self.kind, self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias used across the parser crate.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position_kind_and_message() {
        let e = ParseError::new("unexpected token", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"));
        assert!(s.contains("unexpected token"));
        assert!(s.contains("syntax"));
        assert_eq!(e.kind, ErrorKind::Syntax);
    }

    #[test]
    fn wire_codes_are_stable_and_round_trip() {
        // Append-only contract: these exact numbers are on disk in snapshots.
        assert_eq!(ErrorKind::Lex.wire_code(), 0);
        assert_eq!(ErrorKind::Syntax.wire_code(), 1);
        assert_eq!(ErrorKind::InvalidUtf8.wire_code(), 2);
        assert_eq!(ErrorKind::OversizeEntry.wire_code(), 3);
        assert_eq!(ErrorKind::DepthExceeded.wire_code(), 4);
        assert_eq!(ErrorKind::WorkerPanic.wire_code(), 5);
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_wire_code(kind.wire_code()), Some(kind));
        }
        assert_eq!(ErrorKind::from_wire_code(ErrorKind::COUNT as u8), None);
    }
}
