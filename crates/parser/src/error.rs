//! Error types shared by the lexer and the parser.

use std::fmt;

/// An error raised while tokenizing or parsing a SPARQL query.
///
/// The error carries a human-readable message and the position (1-based line
/// and column) where the problem was detected. Query-log entries that are not
/// SPARQL at all (HTTP requests, truncated strings, …) surface as parse errors
/// and are counted as *invalid* by the corpus pipeline, mirroring the paper's
/// "Valid" column in Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// 1-based line number of the offending position.
    pub line: u32,
    /// 1-based column number of the offending position.
    pub column: u32,
}

impl ParseError {
    /// Creates a new error at the given position.
    pub fn new(message: impl Into<String>, line: u32, column: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias used across the parser crate.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position_and_message() {
        let e = ParseError::new("unexpected token", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"));
        assert!(s.contains("unexpected token"));
    }
}
