//! Canonical serialization of parsed queries back to SPARQL text.
//!
//! The serializer produces a *canonical form*: prefixed names are written as
//! fully expanded IRIs, whitespace is normalized, and keywords are
//! upper-cased. Two syntactically different but token-identical queries
//! therefore serialize to the same string, which is what the corpus pipeline
//! uses to detect duplicates (Table 1 "Unique") and what the streak detector
//! measures Levenshtein distance on (Section 8).

use crate::ast::*;
use std::fmt::Write as _;

/// Serializes a query into its canonical textual form.
pub fn to_canonical_string(q: &Query) -> String {
    let mut out = String::new();
    write_query(&mut out, q);
    out
}

fn write_query(out: &mut String, q: &Query) {
    match q.form {
        QueryForm::Select => {
            out.push_str("SELECT ");
            if q.modifiers.distinct {
                out.push_str("DISTINCT ");
            }
            if q.modifiers.reduced {
                out.push_str("REDUCED ");
            }
            write_projection(out, &q.projection);
        }
        QueryForm::Ask => out.push_str("ASK"),
        QueryForm::Construct => {
            out.push_str("CONSTRUCT");
            if let Some(template) = &q.construct_template {
                out.push_str(" { ");
                for t in template {
                    let _ = write!(out, "{} {} {} . ", t.subject, t.predicate, t.object);
                }
                out.push('}');
            }
        }
        QueryForm::Describe => {
            out.push_str("DESCRIBE ");
            write_projection(out, &q.projection);
        }
    }
    for d in &q.dataset {
        if d.named {
            let _ = write!(out, " FROM NAMED <{}>", d.iri);
        } else {
            let _ = write!(out, " FROM <{}>", d.iri);
        }
    }
    if let Some(body) = &q.where_clause {
        out.push_str(" WHERE ");
        write_group(out, body);
    }
    write_modifiers(out, &q.modifiers);
    if let Some(values) = &q.values {
        out.push_str(" VALUES ");
        write_inline_data(out, values);
    }
}

fn write_projection(out: &mut String, p: &Projection) {
    match p {
        Projection::All => out.push('*'),
        Projection::Items(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                match &item.expr {
                    Some(e) => {
                        out.push('(');
                        write_expr(out, e);
                        let _ = write!(out, " AS ?{})", item.var);
                    }
                    None => {
                        let _ = write!(out, "?{}", item.var);
                    }
                }
            }
        }
        Projection::Terms(terms) => {
            for (i, t) in terms.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{t}");
            }
        }
        Projection::None => {}
    }
}

fn write_modifiers(out: &mut String, m: &SolutionModifiers) {
    if !m.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for g in &m.group_by {
            out.push(' ');
            match &g.alias {
                Some(a) => {
                    out.push('(');
                    write_expr(out, &g.expr);
                    let _ = write!(out, " AS ?{a})");
                }
                None => write_expr(out, &g.expr),
            }
        }
    }
    if !m.having.is_empty() {
        out.push_str(" HAVING");
        for h in &m.having {
            out.push_str(" (");
            write_expr(out, h);
            out.push(')');
        }
    }
    if !m.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for o in &m.order_by {
            match o.direction {
                OrderDirection::Asc => out.push_str(" ASC("),
                OrderDirection::Desc => out.push_str(" DESC("),
            }
            write_expr(out, &o.expr);
            out.push(')');
        }
    }
    if let Some(l) = m.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = m.offset {
        let _ = write!(out, " OFFSET {o}");
    }
}

/// Writes a group graph pattern (including braces).
pub fn write_group(out: &mut String, g: &GroupGraphPattern) {
    out.push_str("{ ");
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => {
                for t in ts {
                    match t {
                        TripleOrPath::Triple(t) => {
                            let _ = write!(out, "{} {} {} . ", t.subject, t.predicate, t.object);
                        }
                        TripleOrPath::Path(p) => {
                            let _ = write!(out, "{} {} {} . ", p.subject, p.path, p.object);
                        }
                    }
                }
            }
            GroupElement::Filter(e) => {
                out.push_str("FILTER(");
                write_expr(out, e);
                out.push_str(") ");
            }
            GroupElement::Bind { expr, var } => {
                out.push_str("BIND(");
                write_expr(out, expr);
                let _ = write!(out, " AS ?{var}) ");
            }
            GroupElement::Optional(g) => {
                out.push_str("OPTIONAL ");
                write_group(out, g);
                out.push(' ');
            }
            GroupElement::Union(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        out.push_str("UNION ");
                    }
                    write_group(out, b);
                    out.push(' ');
                }
            }
            GroupElement::Graph { name, pattern } => {
                let _ = write!(out, "GRAPH {name} ");
                write_group(out, pattern);
                out.push(' ');
            }
            GroupElement::Minus(g) => {
                out.push_str("MINUS ");
                write_group(out, g);
                out.push(' ');
            }
            GroupElement::Service {
                silent,
                name,
                pattern,
            } => {
                out.push_str("SERVICE ");
                if *silent {
                    out.push_str("SILENT ");
                }
                let _ = write!(out, "{name} ");
                write_group(out, pattern);
                out.push(' ');
            }
            GroupElement::Values(d) => {
                out.push_str("VALUES ");
                write_inline_data(out, d);
                out.push(' ');
            }
            GroupElement::SubSelect(q) => {
                out.push_str("{ ");
                write_query(out, q);
                out.push_str(" } ");
            }
            GroupElement::Group(g) => {
                write_group(out, g);
                out.push(' ');
            }
        }
    }
    out.push('}');
}

fn write_inline_data(out: &mut String, d: &InlineData) {
    out.push('(');
    for (i, v) in d.variables.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "?{v}");
    }
    out.push_str(") { ");
    for row in &d.rows {
        out.push('(');
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match cell {
                Some(t) => {
                    let _ = write!(out, "{t}");
                }
                None => out.push_str("UNDEF"),
            }
        }
        out.push_str(") ");
    }
    out.push('}');
}

fn write_expr(out: &mut String, e: &Expression) {
    match e {
        Expression::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        Expression::Term(t) => {
            let _ = write!(out, "{t}");
        }
        Expression::Or(a, b) => write_binary(out, a, "||", b),
        Expression::And(a, b) => write_binary(out, a, "&&", b),
        Expression::Equal(a, b) => write_binary(out, a, "=", b),
        Expression::NotEqual(a, b) => write_binary(out, a, "!=", b),
        Expression::Less(a, b) => write_binary(out, a, "<", b),
        Expression::Greater(a, b) => write_binary(out, a, ">", b),
        Expression::LessEq(a, b) => write_binary(out, a, "<=", b),
        Expression::GreaterEq(a, b) => write_binary(out, a, ">=", b),
        Expression::Add(a, b) => write_binary(out, a, "+", b),
        Expression::Subtract(a, b) => write_binary(out, a, "-", b),
        Expression::Multiply(a, b) => write_binary(out, a, "*", b),
        Expression::Divide(a, b) => write_binary(out, a, "/", b),
        Expression::In(a, list) => {
            write_expr(out, a);
            out.push_str(" IN (");
            write_expr_list(out, list);
            out.push(')');
        }
        Expression::NotIn(a, list) => {
            write_expr(out, a);
            out.push_str(" NOT IN (");
            write_expr_list(out, list);
            out.push(')');
        }
        Expression::Not(a) => {
            out.push('!');
            write_expr_parens(out, a);
        }
        Expression::UnaryMinus(a) => {
            out.push('-');
            write_expr_parens(out, a);
        }
        Expression::UnaryPlus(a) => {
            out.push('+');
            write_expr_parens(out, a);
        }
        Expression::FunctionCall(name, args) => {
            if name.contains("://")
                || name.contains(':') && !name.chars().all(|c| c.is_ascii_uppercase() || c == '_')
            {
                let _ = write!(out, "<{name}>(");
            } else {
                let _ = write!(out, "{name}(");
            }
            write_expr_list(out, args);
            out.push(')');
        }
        Expression::Exists(g) => {
            out.push_str("EXISTS ");
            write_group(out, g);
        }
        Expression::NotExists(g) => {
            out.push_str("NOT EXISTS ");
            write_group(out, g);
        }
        Expression::Aggregate(agg) => {
            let name = match agg.kind {
                AggregateKind::Count => "COUNT",
                AggregateKind::Sum => "SUM",
                AggregateKind::Min => "MIN",
                AggregateKind::Max => "MAX",
                AggregateKind::Avg => "AVG",
                AggregateKind::Sample => "SAMPLE",
                AggregateKind::GroupConcat => "GROUP_CONCAT",
            };
            let _ = write!(out, "{name}(");
            if agg.distinct {
                out.push_str("DISTINCT ");
            }
            match &agg.expr {
                Some(e) => write_expr(out, e),
                None => out.push('*'),
            }
            if let Some(sep) = &agg.separator {
                let _ = write!(out, "; SEPARATOR = {sep:?}");
            }
            out.push(')');
        }
    }
}

fn write_binary(out: &mut String, a: &Expression, op: &str, b: &Expression) {
    write_expr_parens(out, a);
    let _ = write!(out, " {op} ");
    write_expr_parens(out, b);
}

fn write_expr_parens(out: &mut String, e: &Expression) {
    let atomic = matches!(
        e,
        Expression::Var(_)
            | Expression::Term(_)
            | Expression::FunctionCall(_, _)
            | Expression::Aggregate(_)
    );
    if atomic {
        write_expr(out, e);
    } else {
        out.push('(');
        write_expr(out, e);
        out.push(')');
    }
}

fn write_expr_list(out: &mut String, list: &[Expression]) {
    for (i, e) in list.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn canonical_form_is_reparseable() {
        let queries = [
            "SELECT DISTINCT ?x WHERE { ?x a <http://ex.org/C> . FILTER(?x != <http://ex.org/y>) } LIMIT 10",
            "ASK { ?s <http://p> ?o . OPTIONAL { ?o <http://q> ?z } }",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ASC(?n)",
            "CONSTRUCT { ?s <http://p> ?o } WHERE { ?s <http://p> ?o }",
            "DESCRIBE <http://example.org/resource>",
        ];
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let canon = to_canonical_string(&parsed);
            let reparsed = parse_query(&canon).unwrap_or_else(|e| {
                panic!("canonical form of {q:?} not reparseable: {canon:?}: {e}")
            });
            let recanon = to_canonical_string(&reparsed);
            assert_eq!(
                canon, recanon,
                "canonicalization must be a fixpoint for {q:?}"
            );
        }
    }

    #[test]
    fn canonical_form_identifies_whitespace_variants() {
        let a = parse_query("SELECT ?x WHERE { ?x a <http://ex.org/C> }").unwrap();
        let b = parse_query("SELECT   ?x\nWHERE {\n  ?x a <http://ex.org/C> .\n}").unwrap();
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn canonical_form_distinguishes_distinct() {
        let a = parse_query("SELECT ?x WHERE { ?x a <http://ex.org/C> }").unwrap();
        let b = parse_query("SELECT DISTINCT ?x WHERE { ?x a <http://ex.org/C> }").unwrap();
        assert_ne!(to_canonical_string(&a), to_canonical_string(&b));
    }
}
