//! Canonical serialization of parsed queries back to SPARQL text, and the
//! zero-materialization canonical fingerprint built on top of it.
//!
//! The serializer produces a *canonical form*: prefixed names are written as
//! fully expanded IRIs, whitespace is normalized, and keywords are
//! upper-cased. Two syntactically different but token-identical queries
//! therefore serialize to the same string, which is what the corpus pipeline
//! uses to detect duplicates (Table 1 "Unique") and what the streak detector
//! measures Levenshtein distance on (Section 8).
//!
//! Every writer in this module is generic over [`std::fmt::Write`], so the
//! same canonical-form walk can fill a `String` ([`to_canonical_string`]) or
//! stream straight into the 128-bit FNV-1a state of a [`CanonicalHasher`]
//! ([`canonical_fingerprint_of`]) without ever materializing the canonical
//! string — the duplicate-elimination hot path at corpus scale.

use crate::ast::*;
use crate::ast_ref;
use std::fmt::Write;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Serializes a query into its canonical textual form.
pub fn to_canonical_string(q: &Query) -> String {
    let mut out = String::new();
    write_query(&mut out, q);
    out
}

/// A 128-bit FNV-1a fingerprint of a canonical form given as a string, used
/// for duplicate elimination without retaining the canonical string. At 128
/// bits a corpus of 10⁹ queries has a collision probability below 10⁻²⁰, far
/// under the parse-ambiguity noise floor of any real log study.
pub fn canonical_fingerprint(canonical: &str) -> u128 {
    let mut hasher = CanonicalHasher::new();
    let _ = hasher.write_str(canonical);
    hasher.finish()
}

/// The 128-bit FNV-1a fingerprint of a query's canonical form, computed by
/// streaming the canonical-form walk directly into the hash state — no
/// canonical `String` is ever allocated. Equal, byte for byte, to
/// `canonical_fingerprint(&to_canonical_string(q))`.
pub fn canonical_fingerprint_of(q: &Query) -> u128 {
    let mut hasher = CanonicalHasher::new();
    write_query(&mut hasher, q);
    hasher.finish()
}

/// Serializes a borrowed [`ast_ref::Query`] into its canonical textual form.
/// Byte-identical to [`to_canonical_string`] of the query's `to_owned()`.
pub fn to_canonical_string_ref(q: &ast_ref::Query<'_>) -> String {
    let mut out = String::new();
    write_query_ref(&mut out, q);
    out
}

/// The 128-bit FNV-1a fingerprint of a borrowed query's canonical form,
/// streamed straight from the arena AST — the zero-copy pipeline's duplicate
/// key. Equal, byte for byte, to [`canonical_fingerprint_of`] applied to the
/// query's `to_owned()`.
pub fn canonical_fingerprint_of_ref(q: &ast_ref::Query<'_>) -> u128 {
    let mut hasher = CanonicalHasher::new();
    write_query_ref(&mut hasher, q);
    hasher.finish()
}

/// An [`std::fmt::Write`] sink that folds every byte written into a 128-bit
/// FNV-1a state. Feeding it the canonical-form walk yields the same
/// fingerprint as hashing [`to_canonical_string`]'s output, minus the
/// allocation, the copy and the second pass over the bytes.
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    state: u128,
}

impl CanonicalHasher {
    /// Creates a hasher seeded with the FNV-1a offset basis.
    pub fn new() -> CanonicalHasher {
        CanonicalHasher { state: FNV_OFFSET }
    }

    /// Streams a query's canonical form into the state.
    pub fn write_query(&mut self, q: &Query) {
        write_query(self, q);
    }

    /// The current fingerprint.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for CanonicalHasher {
    fn default() -> CanonicalHasher {
        CanonicalHasher::new()
    }
}

impl Write for CanonicalHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let mut state = self.state;
        for &byte in s.as_bytes() {
            state ^= u128::from(byte);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
        Ok(())
    }
}

fn write_query<W: Write>(out: &mut W, q: &Query) {
    match q.form {
        QueryForm::Select => {
            let _ = out.write_str("SELECT ");
            if q.modifiers.distinct {
                let _ = out.write_str("DISTINCT ");
            }
            if q.modifiers.reduced {
                let _ = out.write_str("REDUCED ");
            }
            write_projection(out, &q.projection);
        }
        QueryForm::Ask => {
            let _ = out.write_str("ASK");
        }
        QueryForm::Construct => {
            let _ = out.write_str("CONSTRUCT");
            if let Some(template) = &q.construct_template {
                let _ = out.write_str(" { ");
                for t in template {
                    let _ = write!(out, "{} {} {} . ", t.subject, t.predicate, t.object);
                }
                let _ = out.write_char('}');
            }
        }
        QueryForm::Describe => {
            let _ = out.write_str("DESCRIBE ");
            write_projection(out, &q.projection);
        }
    }
    for d in &q.dataset {
        if d.named {
            let _ = write!(out, " FROM NAMED <{}>", d.iri);
        } else {
            let _ = write!(out, " FROM <{}>", d.iri);
        }
    }
    if let Some(body) = &q.where_clause {
        let _ = out.write_str(" WHERE ");
        write_group(out, body);
    }
    write_modifiers(out, &q.modifiers);
    if let Some(values) = &q.values {
        let _ = out.write_str(" VALUES ");
        write_inline_data(out, values);
    }
}

fn write_projection<W: Write>(out: &mut W, p: &Projection) {
    match p {
        Projection::All => {
            let _ = out.write_char('*');
        }
        Projection::Items(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    let _ = out.write_char(' ');
                }
                match &item.expr {
                    Some(e) => {
                        let _ = out.write_char('(');
                        write_expr(out, e);
                        let _ = write!(out, " AS ?{})", item.var);
                    }
                    None => {
                        let _ = write!(out, "?{}", item.var);
                    }
                }
            }
        }
        Projection::Terms(terms) => {
            for (i, t) in terms.iter().enumerate() {
                if i > 0 {
                    let _ = out.write_char(' ');
                }
                let _ = write!(out, "{t}");
            }
        }
        Projection::None => {}
    }
}

fn write_modifiers<W: Write>(out: &mut W, m: &SolutionModifiers) {
    if !m.group_by.is_empty() {
        let _ = out.write_str(" GROUP BY");
        for g in &m.group_by {
            let _ = out.write_char(' ');
            match &g.alias {
                Some(a) => {
                    let _ = out.write_char('(');
                    write_expr(out, &g.expr);
                    let _ = write!(out, " AS ?{a})");
                }
                None => write_expr(out, &g.expr),
            }
        }
    }
    if !m.having.is_empty() {
        let _ = out.write_str(" HAVING");
        for h in &m.having {
            let _ = out.write_str(" (");
            write_expr(out, h);
            let _ = out.write_char(')');
        }
    }
    if !m.order_by.is_empty() {
        let _ = out.write_str(" ORDER BY");
        for o in &m.order_by {
            match o.direction {
                OrderDirection::Asc => {
                    let _ = out.write_str(" ASC(");
                }
                OrderDirection::Desc => {
                    let _ = out.write_str(" DESC(");
                }
            }
            write_expr(out, &o.expr);
            let _ = out.write_char(')');
        }
    }
    if let Some(l) = m.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = m.offset {
        let _ = write!(out, " OFFSET {o}");
    }
}

/// Writes a group graph pattern (including braces) into any
/// [`std::fmt::Write`] sink.
pub fn write_group<W: Write>(out: &mut W, g: &GroupGraphPattern) {
    let _ = out.write_str("{ ");
    for el in &g.elements {
        match el {
            GroupElement::Triples(ts) => {
                for t in ts {
                    match t {
                        TripleOrPath::Triple(t) => {
                            let _ = write!(out, "{} {} {} . ", t.subject, t.predicate, t.object);
                        }
                        TripleOrPath::Path(p) => {
                            let _ = write!(out, "{} {} {} . ", p.subject, p.path, p.object);
                        }
                    }
                }
            }
            GroupElement::Filter(e) => {
                let _ = out.write_str("FILTER(");
                write_expr(out, e);
                let _ = out.write_str(") ");
            }
            GroupElement::Bind { expr, var } => {
                let _ = out.write_str("BIND(");
                write_expr(out, expr);
                let _ = write!(out, " AS ?{var}) ");
            }
            GroupElement::Optional(g) => {
                let _ = out.write_str("OPTIONAL ");
                write_group(out, g);
                let _ = out.write_char(' ');
            }
            GroupElement::Union(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        let _ = out.write_str("UNION ");
                    }
                    write_group(out, b);
                    let _ = out.write_char(' ');
                }
            }
            GroupElement::Graph { name, pattern } => {
                let _ = write!(out, "GRAPH {name} ");
                write_group(out, pattern);
                let _ = out.write_char(' ');
            }
            GroupElement::Minus(g) => {
                let _ = out.write_str("MINUS ");
                write_group(out, g);
                let _ = out.write_char(' ');
            }
            GroupElement::Service {
                silent,
                name,
                pattern,
            } => {
                let _ = out.write_str("SERVICE ");
                if *silent {
                    let _ = out.write_str("SILENT ");
                }
                let _ = write!(out, "{name} ");
                write_group(out, pattern);
                let _ = out.write_char(' ');
            }
            GroupElement::Values(d) => {
                let _ = out.write_str("VALUES ");
                write_inline_data(out, d);
                let _ = out.write_char(' ');
            }
            GroupElement::SubSelect(q) => {
                let _ = out.write_str("{ ");
                write_query(out, q);
                let _ = out.write_str(" } ");
            }
            GroupElement::Group(g) => {
                write_group(out, g);
                let _ = out.write_char(' ');
            }
        }
    }
    let _ = out.write_char('}');
}

fn write_inline_data<W: Write>(out: &mut W, d: &InlineData) {
    let _ = out.write_char('(');
    for (i, v) in d.variables.iter().enumerate() {
        if i > 0 {
            let _ = out.write_char(' ');
        }
        let _ = write!(out, "?{v}");
    }
    let _ = out.write_str(") { ");
    for row in &d.rows {
        let _ = out.write_char('(');
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                let _ = out.write_char(' ');
            }
            match cell {
                Some(t) => {
                    let _ = write!(out, "{t}");
                }
                None => {
                    let _ = out.write_str("UNDEF");
                }
            }
        }
        let _ = out.write_str(") ");
    }
    let _ = out.write_char('}');
}

fn write_expr<W: Write>(out: &mut W, e: &Expression) {
    match e {
        Expression::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        Expression::Term(t) => {
            let _ = write!(out, "{t}");
        }
        Expression::Or(a, b) => write_binary(out, a, "||", b),
        Expression::And(a, b) => write_binary(out, a, "&&", b),
        Expression::Equal(a, b) => write_binary(out, a, "=", b),
        Expression::NotEqual(a, b) => write_binary(out, a, "!=", b),
        Expression::Less(a, b) => write_binary(out, a, "<", b),
        Expression::Greater(a, b) => write_binary(out, a, ">", b),
        Expression::LessEq(a, b) => write_binary(out, a, "<=", b),
        Expression::GreaterEq(a, b) => write_binary(out, a, ">=", b),
        Expression::Add(a, b) => write_binary(out, a, "+", b),
        Expression::Subtract(a, b) => write_binary(out, a, "-", b),
        Expression::Multiply(a, b) => write_binary(out, a, "*", b),
        Expression::Divide(a, b) => write_binary(out, a, "/", b),
        Expression::In(a, list) => {
            write_expr(out, a);
            let _ = out.write_str(" IN (");
            write_expr_list(out, list);
            let _ = out.write_char(')');
        }
        Expression::NotIn(a, list) => {
            write_expr(out, a);
            let _ = out.write_str(" NOT IN (");
            write_expr_list(out, list);
            let _ = out.write_char(')');
        }
        Expression::Not(a) => {
            let _ = out.write_char('!');
            write_expr_parens(out, a);
        }
        Expression::UnaryMinus(a) => {
            let _ = out.write_char('-');
            write_expr_parens(out, a);
        }
        Expression::UnaryPlus(a) => {
            let _ = out.write_char('+');
            write_expr_parens(out, a);
        }
        Expression::FunctionCall(name, args) => {
            if name.contains("://")
                || name.contains(':') && !name.chars().all(|c| c.is_ascii_uppercase() || c == '_')
            {
                let _ = write!(out, "<{name}>(");
            } else {
                let _ = write!(out, "{name}(");
            }
            write_expr_list(out, args);
            let _ = out.write_char(')');
        }
        Expression::Exists(g) => {
            let _ = out.write_str("EXISTS ");
            write_group(out, g);
        }
        Expression::NotExists(g) => {
            let _ = out.write_str("NOT EXISTS ");
            write_group(out, g);
        }
        Expression::Aggregate(agg) => {
            let name = match agg.kind {
                AggregateKind::Count => "COUNT",
                AggregateKind::Sum => "SUM",
                AggregateKind::Min => "MIN",
                AggregateKind::Max => "MAX",
                AggregateKind::Avg => "AVG",
                AggregateKind::Sample => "SAMPLE",
                AggregateKind::GroupConcat => "GROUP_CONCAT",
            };
            let _ = write!(out, "{name}(");
            if agg.distinct {
                let _ = out.write_str("DISTINCT ");
            }
            match &agg.expr {
                Some(e) => write_expr(out, e),
                None => {
                    let _ = out.write_char('*');
                }
            }
            if let Some(sep) = &agg.separator {
                let _ = write!(out, "; SEPARATOR = {sep:?}");
            }
            let _ = out.write_char(')');
        }
    }
}

fn write_binary<W: Write>(out: &mut W, a: &Expression, op: &str, b: &Expression) {
    write_expr_parens(out, a);
    let _ = write!(out, " {op} ");
    write_expr_parens(out, b);
}

fn write_expr_parens<W: Write>(out: &mut W, e: &Expression) {
    let atomic = matches!(
        e,
        Expression::Var(_)
            | Expression::Term(_)
            | Expression::FunctionCall(_, _)
            | Expression::Aggregate(_)
    );
    if atomic {
        write_expr(out, e);
    } else {
        let _ = out.write_char('(');
        write_expr(out, e);
        let _ = out.write_char(')');
    }
}

fn write_expr_list<W: Write>(out: &mut W, list: &[Expression]) {
    for (i, e) in list.iter().enumerate() {
        if i > 0 {
            let _ = out.write_str(", ");
        }
        write_expr(out, e);
    }
}

// ---------------------------------------------------------------------------
// Borrowed-AST mirrors of the canonical writers. These must stay byte-for-byte
// identical to the owned writers above: the fused pipeline fingerprints the
// borrowed form while the staged pipeline fingerprints the owned form, and the
// differential gate compares the two.
// ---------------------------------------------------------------------------

fn write_query_ref<W: Write>(out: &mut W, q: &ast_ref::Query<'_>) {
    match q.form {
        QueryForm::Select => {
            let _ = out.write_str("SELECT ");
            if q.modifiers.distinct {
                let _ = out.write_str("DISTINCT ");
            }
            if q.modifiers.reduced {
                let _ = out.write_str("REDUCED ");
            }
            write_projection_ref(out, &q.projection);
        }
        QueryForm::Ask => {
            let _ = out.write_str("ASK");
        }
        QueryForm::Construct => {
            let _ = out.write_str("CONSTRUCT");
            if let Some(template) = q.construct_template {
                let _ = out.write_str(" { ");
                for t in template {
                    let _ = write!(out, "{} {} {} . ", t.subject, t.predicate, t.object);
                }
                let _ = out.write_char('}');
            }
        }
        QueryForm::Describe => {
            let _ = out.write_str("DESCRIBE ");
            write_projection_ref(out, &q.projection);
        }
    }
    for d in q.dataset {
        if d.named {
            let _ = write!(out, " FROM NAMED <{}>", d.iri);
        } else {
            let _ = write!(out, " FROM <{}>", d.iri);
        }
    }
    if let Some(body) = &q.where_clause {
        let _ = out.write_str(" WHERE ");
        write_group_ref(out, body);
    }
    write_modifiers_ref(out, &q.modifiers);
    if let Some(values) = &q.values {
        let _ = out.write_str(" VALUES ");
        write_inline_data_ref(out, values);
    }
}

fn write_projection_ref<W: Write>(out: &mut W, p: &ast_ref::Projection<'_>) {
    match p {
        ast_ref::Projection::All => {
            let _ = out.write_char('*');
        }
        ast_ref::Projection::Items(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    let _ = out.write_char(' ');
                }
                match &item.expr {
                    Some(e) => {
                        let _ = out.write_char('(');
                        write_expr_ref(out, e);
                        let _ = write!(out, " AS ?{})", item.var);
                    }
                    None => {
                        let _ = write!(out, "?{}", item.var);
                    }
                }
            }
        }
        ast_ref::Projection::Terms(terms) => {
            for (i, t) in terms.iter().enumerate() {
                if i > 0 {
                    let _ = out.write_char(' ');
                }
                let _ = write!(out, "{t}");
            }
        }
        ast_ref::Projection::None => {}
    }
}

fn write_modifiers_ref<W: Write>(out: &mut W, m: &ast_ref::SolutionModifiers<'_>) {
    if !m.group_by.is_empty() {
        let _ = out.write_str(" GROUP BY");
        for g in m.group_by {
            let _ = out.write_char(' ');
            match &g.alias {
                Some(a) => {
                    let _ = out.write_char('(');
                    write_expr_ref(out, &g.expr);
                    let _ = write!(out, " AS ?{a})");
                }
                None => write_expr_ref(out, &g.expr),
            }
        }
    }
    if !m.having.is_empty() {
        let _ = out.write_str(" HAVING");
        for h in m.having {
            let _ = out.write_str(" (");
            write_expr_ref(out, h);
            let _ = out.write_char(')');
        }
    }
    if !m.order_by.is_empty() {
        let _ = out.write_str(" ORDER BY");
        for o in m.order_by {
            match o.direction {
                OrderDirection::Asc => {
                    let _ = out.write_str(" ASC(");
                }
                OrderDirection::Desc => {
                    let _ = out.write_str(" DESC(");
                }
            }
            write_expr_ref(out, &o.expr);
            let _ = out.write_char(')');
        }
    }
    if let Some(l) = m.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = m.offset {
        let _ = write!(out, " OFFSET {o}");
    }
}

/// Borrowed-AST twin of [`write_group`].
pub fn write_group_ref<W: Write>(out: &mut W, g: &ast_ref::GroupGraphPattern<'_>) {
    let _ = out.write_str("{ ");
    for el in g.elements {
        match el {
            ast_ref::GroupElement::Triples(ts) => {
                for t in *ts {
                    match t {
                        ast_ref::TripleOrPath::Triple(t) => {
                            let _ = write!(out, "{} {} {} . ", t.subject, t.predicate, t.object);
                        }
                        ast_ref::TripleOrPath::Path(p) => {
                            let _ = write!(out, "{} {} {} . ", p.subject, p.path, p.object);
                        }
                    }
                }
            }
            ast_ref::GroupElement::Filter(e) => {
                let _ = out.write_str("FILTER(");
                write_expr_ref(out, e);
                let _ = out.write_str(") ");
            }
            ast_ref::GroupElement::Bind { expr, var } => {
                let _ = out.write_str("BIND(");
                write_expr_ref(out, expr);
                let _ = write!(out, " AS ?{var}) ");
            }
            ast_ref::GroupElement::Optional(g) => {
                let _ = out.write_str("OPTIONAL ");
                write_group_ref(out, g);
                let _ = out.write_char(' ');
            }
            ast_ref::GroupElement::Union(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        let _ = out.write_str("UNION ");
                    }
                    write_group_ref(out, b);
                    let _ = out.write_char(' ');
                }
            }
            ast_ref::GroupElement::Graph { name, pattern } => {
                let _ = write!(out, "GRAPH {name} ");
                write_group_ref(out, pattern);
                let _ = out.write_char(' ');
            }
            ast_ref::GroupElement::Minus(g) => {
                let _ = out.write_str("MINUS ");
                write_group_ref(out, g);
                let _ = out.write_char(' ');
            }
            ast_ref::GroupElement::Service {
                silent,
                name,
                pattern,
            } => {
                let _ = out.write_str("SERVICE ");
                if *silent {
                    let _ = out.write_str("SILENT ");
                }
                let _ = write!(out, "{name} ");
                write_group_ref(out, pattern);
                let _ = out.write_char(' ');
            }
            ast_ref::GroupElement::Values(d) => {
                let _ = out.write_str("VALUES ");
                write_inline_data_ref(out, d);
                let _ = out.write_char(' ');
            }
            ast_ref::GroupElement::SubSelect(q) => {
                let _ = out.write_str("{ ");
                write_query_ref(out, q);
                let _ = out.write_str(" } ");
            }
            ast_ref::GroupElement::Group(g) => {
                write_group_ref(out, g);
                let _ = out.write_char(' ');
            }
        }
    }
    let _ = out.write_char('}');
}

fn write_inline_data_ref<W: Write>(out: &mut W, d: &ast_ref::InlineData<'_>) {
    let _ = out.write_char('(');
    for (i, v) in d.variables.iter().enumerate() {
        if i > 0 {
            let _ = out.write_char(' ');
        }
        let _ = write!(out, "?{v}");
    }
    let _ = out.write_str(") { ");
    for row in d.rows {
        let _ = out.write_char('(');
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                let _ = out.write_char(' ');
            }
            match cell {
                Some(t) => {
                    let _ = write!(out, "{t}");
                }
                None => {
                    let _ = out.write_str("UNDEF");
                }
            }
        }
        let _ = out.write_str(") ");
    }
    let _ = out.write_char('}');
}

fn write_expr_ref<W: Write>(out: &mut W, e: &ast_ref::Expression<'_>) {
    match e {
        ast_ref::Expression::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        ast_ref::Expression::Term(t) => {
            let _ = write!(out, "{t}");
        }
        ast_ref::Expression::Or(a, b) => write_binary_ref(out, a, "||", b),
        ast_ref::Expression::And(a, b) => write_binary_ref(out, a, "&&", b),
        ast_ref::Expression::Equal(a, b) => write_binary_ref(out, a, "=", b),
        ast_ref::Expression::NotEqual(a, b) => write_binary_ref(out, a, "!=", b),
        ast_ref::Expression::Less(a, b) => write_binary_ref(out, a, "<", b),
        ast_ref::Expression::Greater(a, b) => write_binary_ref(out, a, ">", b),
        ast_ref::Expression::LessEq(a, b) => write_binary_ref(out, a, "<=", b),
        ast_ref::Expression::GreaterEq(a, b) => write_binary_ref(out, a, ">=", b),
        ast_ref::Expression::Add(a, b) => write_binary_ref(out, a, "+", b),
        ast_ref::Expression::Subtract(a, b) => write_binary_ref(out, a, "-", b),
        ast_ref::Expression::Multiply(a, b) => write_binary_ref(out, a, "*", b),
        ast_ref::Expression::Divide(a, b) => write_binary_ref(out, a, "/", b),
        ast_ref::Expression::In(a, list) => {
            write_expr_ref(out, a);
            let _ = out.write_str(" IN (");
            write_expr_list_ref(out, list);
            let _ = out.write_char(')');
        }
        ast_ref::Expression::NotIn(a, list) => {
            write_expr_ref(out, a);
            let _ = out.write_str(" NOT IN (");
            write_expr_list_ref(out, list);
            let _ = out.write_char(')');
        }
        ast_ref::Expression::Not(a) => {
            let _ = out.write_char('!');
            write_expr_parens_ref(out, a);
        }
        ast_ref::Expression::UnaryMinus(a) => {
            let _ = out.write_char('-');
            write_expr_parens_ref(out, a);
        }
        ast_ref::Expression::UnaryPlus(a) => {
            let _ = out.write_char('+');
            write_expr_parens_ref(out, a);
        }
        ast_ref::Expression::FunctionCall(name, args) => {
            if name.contains("://")
                || name.contains(':') && !name.chars().all(|c| c.is_ascii_uppercase() || c == '_')
            {
                let _ = write!(out, "<{name}>(");
            } else {
                let _ = write!(out, "{name}(");
            }
            write_expr_list_ref(out, args);
            let _ = out.write_char(')');
        }
        ast_ref::Expression::Exists(g) => {
            let _ = out.write_str("EXISTS ");
            write_group_ref(out, g);
        }
        ast_ref::Expression::NotExists(g) => {
            let _ = out.write_str("NOT EXISTS ");
            write_group_ref(out, g);
        }
        ast_ref::Expression::Aggregate(agg) => {
            let name = match agg.kind {
                AggregateKind::Count => "COUNT",
                AggregateKind::Sum => "SUM",
                AggregateKind::Min => "MIN",
                AggregateKind::Max => "MAX",
                AggregateKind::Avg => "AVG",
                AggregateKind::Sample => "SAMPLE",
                AggregateKind::GroupConcat => "GROUP_CONCAT",
            };
            let _ = write!(out, "{name}(");
            if agg.distinct {
                let _ = out.write_str("DISTINCT ");
            }
            match agg.expr {
                Some(e) => write_expr_ref(out, e),
                None => {
                    let _ = out.write_char('*');
                }
            }
            if let Some(sep) = &agg.separator {
                let _ = write!(out, "; SEPARATOR = {sep:?}");
            }
            let _ = out.write_char(')');
        }
    }
}

fn write_binary_ref<W: Write>(
    out: &mut W,
    a: &ast_ref::Expression<'_>,
    op: &str,
    b: &ast_ref::Expression<'_>,
) {
    write_expr_parens_ref(out, a);
    let _ = write!(out, " {op} ");
    write_expr_parens_ref(out, b);
}

fn write_expr_parens_ref<W: Write>(out: &mut W, e: &ast_ref::Expression<'_>) {
    let atomic = matches!(
        e,
        ast_ref::Expression::Var(_)
            | ast_ref::Expression::Term(_)
            | ast_ref::Expression::FunctionCall(_, _)
            | ast_ref::Expression::Aggregate(_)
    );
    if atomic {
        write_expr_ref(out, e);
    } else {
        let _ = out.write_char('(');
        write_expr_ref(out, e);
        let _ = out.write_char(')');
    }
}

fn write_expr_list_ref<W: Write>(out: &mut W, list: &[ast_ref::Expression<'_>]) {
    for (i, e) in list.iter().enumerate() {
        if i > 0 {
            let _ = out.write_str(", ");
        }
        write_expr_ref(out, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn canonical_form_is_reparseable() {
        let queries = [
            "SELECT DISTINCT ?x WHERE { ?x a <http://ex.org/C> . FILTER(?x != <http://ex.org/y>) } LIMIT 10",
            "ASK { ?s <http://p> ?o . OPTIONAL { ?o <http://q> ?z } }",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ASC(?n)",
            "CONSTRUCT { ?s <http://p> ?o } WHERE { ?s <http://p> ?o }",
            "DESCRIBE <http://example.org/resource>",
        ];
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let canon = to_canonical_string(&parsed);
            let reparsed = parse_query(&canon).unwrap_or_else(|e| {
                panic!("canonical form of {q:?} not reparseable: {canon:?}: {e}")
            });
            let recanon = to_canonical_string(&reparsed);
            assert_eq!(
                canon, recanon,
                "canonicalization must be a fixpoint for {q:?}"
            );
        }
    }

    #[test]
    fn canonical_form_identifies_whitespace_variants() {
        let a = parse_query("SELECT ?x WHERE { ?x a <http://ex.org/C> }").unwrap();
        let b = parse_query("SELECT   ?x\nWHERE {\n  ?x a <http://ex.org/C> .\n}").unwrap();
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn canonical_form_distinguishes_distinct() {
        let a = parse_query("SELECT ?x WHERE { ?x a <http://ex.org/C> }").unwrap();
        let b = parse_query("SELECT DISTINCT ?x WHERE { ?x a <http://ex.org/C> }").unwrap();
        assert_ne!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn hasher_matches_materialized_fingerprint() {
        let queries = [
            "SELECT DISTINCT ?x WHERE { ?x a <http://ex.org/C> . FILTER(?x != <http://ex.org/y>) } LIMIT 10",
            "ASK { ?s <http://p> ?o . OPTIONAL { ?o <http://q> ?z } }",
            "CONSTRUCT { ?s <http://p> ?o } WHERE { ?s <http://p> ?o }",
            "DESCRIBE <http://example.org/resource>",
            "SELECT (COUNT(?x) AS ?c) WHERE { ?x <http://p> ?y } GROUP BY ?y HAVING (AVG(?y) > 2)",
            "SELECT ?x WHERE { ?x <http://a> ?y VALUES ?x { <http://v> <http://w> } }",
        ];
        for q in queries {
            let parsed = parse_query(q).unwrap();
            assert_eq!(
                canonical_fingerprint_of(&parsed),
                canonical_fingerprint(&to_canonical_string(&parsed)),
                "streamed fingerprint diverges for {q:?}"
            );
        }
    }

    #[test]
    fn fingerprints_distinguish_nearby_strings() {
        let a = canonical_fingerprint("SELECT ?x WHERE { ?x <http://p> ?y }");
        let b = canonical_fingerprint("SELECT ?x WHERE { ?x <http://q> ?y }");
        assert_ne!(a, b);
        assert_eq!(
            a,
            canonical_fingerprint("SELECT ?x WHERE { ?x <http://p> ?y }")
        );
    }

    #[test]
    fn borrowed_writers_match_owned_writers_byte_for_byte() {
        let queries = [
            "SELECT DISTINCT ?x WHERE { ?x a <http://ex.org/C> . FILTER(?x != <http://ex.org/y>) } LIMIT 10",
            "ASK { ?s <http://p> ?o . OPTIONAL { ?o <http://q> ?z } }",
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p foaf:name ?n } ORDER BY ASC(?n)",
            "CONSTRUCT { ?s <http://p> ?o } WHERE { ?s <http://p> ?o }",
            "DESCRIBE <http://example.org/resource>",
            "SELECT (COUNT(?x) AS ?c) WHERE { ?x <http://p> ?y } GROUP BY ?y HAVING (AVG(?y) > 2)",
            "SELECT ?x WHERE { { SELECT ?x WHERE { ?x ^(<http://a>/<http://b>)* ?z } } \
             VALUES (?x ?y) { (<http://v> UNDEF) } }",
            "SELECT ?x WHERE { ?x <http://a> ?y . SERVICE SILENT <http://e> { ?y !(^<http://b>|<http://c>) ?z } \
             MINUS { ?x <http://d> \"lit\"@en } BIND(GROUP_CONCAT(DISTINCT ?y; SEPARATOR = \",\") AS ?g) }",
        ];
        let arena = crate::arena::Arena::new();
        for q in queries {
            let borrowed = crate::parse_query_in(q, &arena).unwrap();
            let owned = borrowed.to_owned();
            assert_eq!(
                to_canonical_string_ref(&borrowed),
                to_canonical_string(&owned),
                "borrowed canonical form diverges for {q:?}"
            );
            assert_eq!(
                canonical_fingerprint_of_ref(&borrowed),
                canonical_fingerprint_of(&owned),
                "borrowed fingerprint diverges for {q:?}"
            );
        }
    }

    #[test]
    fn hasher_streams_multibyte_chars_like_the_string_pass() {
        // write_char on a multibyte char must hash its UTF-8 bytes exactly
        // as the string pass does.
        let mut h = CanonicalHasher::new();
        let _ = h.write_char('é');
        let _ = h.write_str("αβ");
        assert_eq!(h.finish(), canonical_fingerprint("éαβ"));
    }
}
