//! Borrowed, arena-resident mirrors of the owned [`ast`] types.
//!
//! Every type here is `Copy` and borrows either the query source text or the
//! parse [`Arena`](crate::arena::Arena): strings are `&'a str`, child nodes
//! are arena references, and lists are arena slices. The parser builds these
//! (via [`parse_query_in`](crate::parse_query_in)) with zero per-node global
//! allocations; tearing a query down is a single arena
//! [`reset`](crate::arena::Arena::reset).
//!
//! # Lifetime rules
//!
//! A borrowed query is valid only while *both* its input buffer and its arena
//! are alive and the arena has not been reset. Nothing from a borrowed query
//! may escape the batch that parsed it: anything that must outlive the batch
//! (cache keys, reports, interner symbols) must be copied out first — either
//! through [`Query::to_owned`], which produces the exact owned
//! [`ast::Query`], or by interning individual strings.
//! The `to_owned` adapters define the equivalence contract with the owned
//! surface: a round trip through them is byte-identical under canonical
//! serialization.
//!
//! Structure, field names and `Display` output deliberately match `ast`
//! one-to-one so the canonical-form writers can be mirrored mechanically.

use crate::ast;
pub use crate::ast::{AggregateKind, OrderDirection, QueryForm};
use std::fmt;

/// An RDF term or variable (borrowed). See [`ast::Term`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term<'a> {
    /// An IRI (expanded or verbatim `prefix:local`).
    Iri(&'a str),
    /// A literal with optional datatype IRI or language tag.
    Literal {
        /// The lexical form (without quotes).
        lexical: &'a str,
        /// Datatype IRI, if `^^` was used.
        datatype: Option<&'a str>,
        /// Language tag, if `@tag` was used.
        lang: Option<&'a str>,
    },
    /// A blank node label.
    BlankNode(&'a str),
    /// A query variable (without the sigil).
    Var(&'a str),
}

impl<'a> Term<'a> {
    /// Returns `true` if this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` if this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// Returns `true` if this term is a variable or blank node.
    pub fn is_var_or_blank(&self) -> bool {
        self.is_var() || self.is_blank()
    }

    /// Returns the variable name if this term is a variable.
    pub fn as_var(&self) -> Option<&'a str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Copies the term into the owned representation.
    pub fn to_owned(&self) -> ast::Term {
        match *self {
            Term::Iri(i) => ast::Term::Iri(i.to_string()),
            Term::Literal {
                lexical,
                datatype,
                lang,
            } => ast::Term::Literal {
                lexical: lexical.to_string(),
                datatype: datatype.map(str::to_string),
                lang: lang.map(str::to_string),
            },
            Term::BlankNode(b) => ast::Term::BlankNode(b.to_string()),
            Term::Var(v) => ast::Term::Var(v.to_string()),
        }
    }
}

impl fmt::Display for Term<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Must stay byte-identical to `ast::Term`'s Display.
        match self {
            Term::Iri(i) => {
                if i.contains("://") || i.starts_with("urn:") || i.starts_with("mailto:") {
                    write!(f, "<{i}>")
                } else {
                    write!(f, "{i}")
                }
            }
            Term::Literal {
                lexical,
                datatype,
                lang,
            } => {
                write!(f, "{:?}", lexical)?;
                if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                if let Some(l) = lang {
                    write!(f, "@{l}")?;
                }
                Ok(())
            }
            Term::BlankNode(b) => write!(f, "_:{b}"),
            Term::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A triple pattern (borrowed). See [`ast::TriplePattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriplePattern<'a> {
    /// The subject position.
    pub subject: Term<'a>,
    /// The predicate position.
    pub predicate: Term<'a>,
    /// The object position.
    pub object: Term<'a>,
}

impl<'a> TriplePattern<'a> {
    /// Copies the pattern into the owned representation.
    pub fn to_owned(&self) -> ast::TriplePattern {
        ast::TriplePattern {
            subject: self.subject.to_owned(),
            predicate: self.predicate.to_owned(),
            object: self.object.to_owned(),
        }
    }
}

/// A property path expression (borrowed). See [`ast::PropertyPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyPath<'a> {
    /// A single IRI step.
    Iri(&'a str),
    /// `^p` — inverse step.
    Inverse(&'a PropertyPath<'a>),
    /// `p1 / p2` — sequence.
    Sequence(&'a PropertyPath<'a>, &'a PropertyPath<'a>),
    /// `p1 | p2` — alternative.
    Alternative(&'a PropertyPath<'a>, &'a PropertyPath<'a>),
    /// `p*` — zero or more.
    ZeroOrMore(&'a PropertyPath<'a>),
    /// `p+` — one or more.
    OneOrMore(&'a PropertyPath<'a>),
    /// `p?` — zero or one.
    ZeroOrOne(&'a PropertyPath<'a>),
    /// `!(a | ^b | …)` — negated property set of `(iri, inverse?)` entries.
    NegatedPropertySet(&'a [(&'a str, bool)]),
}

impl PropertyPath<'_> {
    /// Returns `true` if the path is a single forward IRI step.
    pub fn is_trivial(&self) -> bool {
        matches!(self, PropertyPath::Iri(_))
    }

    /// Copies the path into the owned representation.
    pub fn to_owned(&self) -> ast::PropertyPath {
        match *self {
            PropertyPath::Iri(i) => ast::PropertyPath::Iri(i.to_string()),
            PropertyPath::Inverse(p) => ast::PropertyPath::Inverse(Box::new(p.to_owned())),
            PropertyPath::Sequence(a, b) => {
                ast::PropertyPath::Sequence(Box::new(a.to_owned()), Box::new(b.to_owned()))
            }
            PropertyPath::Alternative(a, b) => {
                ast::PropertyPath::Alternative(Box::new(a.to_owned()), Box::new(b.to_owned()))
            }
            PropertyPath::ZeroOrMore(p) => ast::PropertyPath::ZeroOrMore(Box::new(p.to_owned())),
            PropertyPath::OneOrMore(p) => ast::PropertyPath::OneOrMore(Box::new(p.to_owned())),
            PropertyPath::ZeroOrOne(p) => ast::PropertyPath::ZeroOrOne(Box::new(p.to_owned())),
            PropertyPath::NegatedPropertySet(items) => ast::PropertyPath::NegatedPropertySet(
                items
                    .iter()
                    .map(|&(iri, inv)| (iri.to_string(), inv))
                    .collect(),
            ),
        }
    }
}

impl fmt::Display for PropertyPath<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Must stay byte-identical to `ast::PropertyPath`'s Display.
        match self {
            PropertyPath::Iri(i) => write!(f, "<{i}>"),
            PropertyPath::Inverse(p) => write!(f, "^({p})"),
            PropertyPath::Sequence(a, b) => write!(f, "({a}/{b})"),
            PropertyPath::Alternative(a, b) => write!(f, "({a}|{b})"),
            PropertyPath::ZeroOrMore(p) => write!(f, "({p})*"),
            PropertyPath::OneOrMore(p) => write!(f, "({p})+"),
            PropertyPath::ZeroOrOne(p) => write!(f, "({p})?"),
            PropertyPath::NegatedPropertySet(items) => {
                write!(f, "!(")?;
                for (i, (iri, inv)) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    if *inv {
                        write!(f, "^")?;
                    }
                    write!(f, "<{iri}>")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A property path pattern (borrowed). See [`ast::PathPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathPattern<'a> {
    /// The subject position.
    pub subject: Term<'a>,
    /// The property path connecting subject and object.
    pub path: PropertyPath<'a>,
    /// The object position.
    pub object: Term<'a>,
}

impl PathPattern<'_> {
    /// Copies the pattern into the owned representation.
    pub fn to_owned(&self) -> ast::PathPattern {
        ast::PathPattern {
            subject: self.subject.to_owned(),
            path: self.path.to_owned(),
            object: self.object.to_owned(),
        }
    }
}

/// A triple-like element (borrowed). See [`ast::TripleOrPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripleOrPath<'a> {
    /// A plain triple pattern.
    Triple(TriplePattern<'a>),
    /// A property path pattern.
    Path(PathPattern<'a>),
}

impl<'a> TripleOrPath<'a> {
    /// The subject term.
    pub fn subject(&self) -> &Term<'a> {
        match self {
            TripleOrPath::Triple(t) => &t.subject,
            TripleOrPath::Path(p) => &p.subject,
        }
    }

    /// The object term.
    pub fn object(&self) -> &Term<'a> {
        match self {
            TripleOrPath::Triple(t) => &t.object,
            TripleOrPath::Path(p) => &p.object,
        }
    }

    /// Copies the element into the owned representation.
    pub fn to_owned(&self) -> ast::TripleOrPath {
        match self {
            TripleOrPath::Triple(t) => ast::TripleOrPath::Triple(t.to_owned()),
            TripleOrPath::Path(p) => ast::TripleOrPath::Path(p.to_owned()),
        }
    }
}

/// An aggregate expression (borrowed). See [`ast::Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate<'a> {
    /// Which aggregate function.
    pub kind: AggregateKind,
    /// Whether `DISTINCT` was used inside the aggregate.
    pub distinct: bool,
    /// The aggregated expression; `None` for `COUNT(*)`.
    pub expr: Option<&'a Expression<'a>>,
    /// The `SEPARATOR` argument of `GROUP_CONCAT`, if present.
    pub separator: Option<&'a str>,
}

impl Aggregate<'_> {
    /// Copies the aggregate into the owned representation.
    pub fn to_owned(&self) -> ast::Aggregate {
        ast::Aggregate {
            kind: self.kind,
            distinct: self.distinct,
            expr: self.expr.map(|e| Box::new(e.to_owned())),
            separator: self.separator.map(str::to_string),
        }
    }
}

/// A SPARQL expression (borrowed). See [`ast::Expression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expression<'a> {
    /// A variable reference.
    Var(&'a str),
    /// A constant RDF term.
    Term(Term<'a>),
    /// `a || b`.
    Or(&'a Expression<'a>, &'a Expression<'a>),
    /// `a && b`.
    And(&'a Expression<'a>, &'a Expression<'a>),
    /// `a = b`.
    Equal(&'a Expression<'a>, &'a Expression<'a>),
    /// `a != b`.
    NotEqual(&'a Expression<'a>, &'a Expression<'a>),
    /// `a < b`.
    Less(&'a Expression<'a>, &'a Expression<'a>),
    /// `a > b`.
    Greater(&'a Expression<'a>, &'a Expression<'a>),
    /// `a <= b`.
    LessEq(&'a Expression<'a>, &'a Expression<'a>),
    /// `a >= b`.
    GreaterEq(&'a Expression<'a>, &'a Expression<'a>),
    /// `a IN (…)`.
    In(&'a Expression<'a>, &'a [Expression<'a>]),
    /// `a NOT IN (…)`.
    NotIn(&'a Expression<'a>, &'a [Expression<'a>]),
    /// `a + b`.
    Add(&'a Expression<'a>, &'a Expression<'a>),
    /// `a - b`.
    Subtract(&'a Expression<'a>, &'a Expression<'a>),
    /// `a * b`.
    Multiply(&'a Expression<'a>, &'a Expression<'a>),
    /// `a / b`.
    Divide(&'a Expression<'a>, &'a Expression<'a>),
    /// `!a`.
    Not(&'a Expression<'a>),
    /// `-a`.
    UnaryMinus(&'a Expression<'a>),
    /// `+a`.
    UnaryPlus(&'a Expression<'a>),
    /// A built-in or custom function call `name(args…)`.
    FunctionCall(&'a str, &'a [Expression<'a>]),
    /// `EXISTS { … }`.
    Exists(&'a GroupGraphPattern<'a>),
    /// `NOT EXISTS { … }`.
    NotExists(&'a GroupGraphPattern<'a>),
    /// An aggregate expression.
    Aggregate(Aggregate<'a>),
}

impl<'a> Expression<'a> {
    /// Visits every variable mentioned in the expression (with duplicates, in
    /// traversal order), including variables inside EXISTS patterns.
    pub fn for_each_variable(&self, f: &mut impl FnMut(&'a str)) {
        match *self {
            Expression::Var(v) => f(v),
            Expression::Term(_) => {}
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                a.for_each_variable(f);
                b.for_each_variable(f);
            }
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                a.for_each_variable(f);
                for e in list {
                    e.for_each_variable(f);
                }
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                a.for_each_variable(f)
            }
            Expression::FunctionCall(_, args) => {
                for a in args {
                    a.for_each_variable(f);
                }
            }
            Expression::Exists(g) | Expression::NotExists(g) => g.for_each_variable(f),
            Expression::Aggregate(agg) => {
                if let Some(e) = agg.expr {
                    e.for_each_variable(f);
                }
            }
        }
    }

    /// Returns `true` if the expression contains an EXISTS or NOT EXISTS.
    pub fn contains_exists(&self) -> bool {
        match *self {
            Expression::Exists(_) | Expression::NotExists(_) => true,
            Expression::Var(_) | Expression::Term(_) => false,
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => a.contains_exists() || b.contains_exists(),
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                a.contains_exists() || list.iter().any(|e| e.contains_exists())
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                a.contains_exists()
            }
            Expression::FunctionCall(_, args) => args.iter().any(|a| a.contains_exists()),
            Expression::Aggregate(agg) => agg.expr.is_some_and(|e| e.contains_exists()),
        }
    }

    /// Copies the expression into the owned representation.
    pub fn to_owned(&self) -> ast::Expression {
        fn bx(e: &Expression<'_>) -> Box<ast::Expression> {
            Box::new(e.to_owned())
        }
        match *self {
            Expression::Var(v) => ast::Expression::Var(v.to_string()),
            Expression::Term(t) => ast::Expression::Term(t.to_owned()),
            Expression::Or(a, b) => ast::Expression::Or(bx(a), bx(b)),
            Expression::And(a, b) => ast::Expression::And(bx(a), bx(b)),
            Expression::Equal(a, b) => ast::Expression::Equal(bx(a), bx(b)),
            Expression::NotEqual(a, b) => ast::Expression::NotEqual(bx(a), bx(b)),
            Expression::Less(a, b) => ast::Expression::Less(bx(a), bx(b)),
            Expression::Greater(a, b) => ast::Expression::Greater(bx(a), bx(b)),
            Expression::LessEq(a, b) => ast::Expression::LessEq(bx(a), bx(b)),
            Expression::GreaterEq(a, b) => ast::Expression::GreaterEq(bx(a), bx(b)),
            Expression::In(a, list) => {
                ast::Expression::In(bx(a), list.iter().map(|e| e.to_owned()).collect())
            }
            Expression::NotIn(a, list) => {
                ast::Expression::NotIn(bx(a), list.iter().map(|e| e.to_owned()).collect())
            }
            Expression::Add(a, b) => ast::Expression::Add(bx(a), bx(b)),
            Expression::Subtract(a, b) => ast::Expression::Subtract(bx(a), bx(b)),
            Expression::Multiply(a, b) => ast::Expression::Multiply(bx(a), bx(b)),
            Expression::Divide(a, b) => ast::Expression::Divide(bx(a), bx(b)),
            Expression::Not(a) => ast::Expression::Not(bx(a)),
            Expression::UnaryMinus(a) => ast::Expression::UnaryMinus(bx(a)),
            Expression::UnaryPlus(a) => ast::Expression::UnaryPlus(bx(a)),
            Expression::FunctionCall(name, args) => ast::Expression::FunctionCall(
                name.to_string(),
                args.iter().map(|e| e.to_owned()).collect(),
            ),
            Expression::Exists(g) => ast::Expression::Exists(Box::new(g.to_owned())),
            Expression::NotExists(g) => ast::Expression::NotExists(Box::new(g.to_owned())),
            Expression::Aggregate(agg) => ast::Expression::Aggregate(agg.to_owned()),
        }
    }
}

/// One row of an inline `VALUES` block; `None` represents `UNDEF`.
pub type ValuesRow<'a> = &'a [Option<Term<'a>>];

/// An inline data block (borrowed). See [`ast::InlineData`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InlineData<'a> {
    /// The declared variables.
    pub variables: &'a [&'a str],
    /// The data rows.
    pub rows: &'a [ValuesRow<'a>],
}

impl InlineData<'_> {
    /// Copies the block into the owned representation.
    pub fn to_owned(&self) -> ast::InlineData {
        ast::InlineData {
            variables: self.variables.iter().map(|v| v.to_string()).collect(),
            rows: self
                .rows
                .iter()
                .map(|row| row.iter().map(|t| t.map(|t| t.to_owned())).collect())
                .collect(),
        }
    }
}

/// A single element of a group graph pattern (borrowed). See
/// [`ast::GroupElement`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupElement<'a> {
    /// A block of triple / path patterns.
    Triples(&'a [TripleOrPath<'a>]),
    /// `FILTER constraint`.
    Filter(Expression<'a>),
    /// `BIND (expr AS ?var)`.
    Bind {
        /// The bound expression.
        expr: Expression<'a>,
        /// The target variable (without sigil).
        var: &'a str,
    },
    /// `OPTIONAL { … }`.
    Optional(GroupGraphPattern<'a>),
    /// A union chain (two or more branches).
    Union(&'a [GroupGraphPattern<'a>]),
    /// `GRAPH term { … }`.
    Graph {
        /// The graph name (IRI or variable).
        name: Term<'a>,
        /// The nested pattern.
        pattern: GroupGraphPattern<'a>,
    },
    /// `MINUS { … }`.
    Minus(GroupGraphPattern<'a>),
    /// `SERVICE [SILENT] term { … }`.
    Service {
        /// Whether `SILENT` was given.
        silent: bool,
        /// The service endpoint (IRI or variable).
        name: Term<'a>,
        /// The nested pattern.
        pattern: GroupGraphPattern<'a>,
    },
    /// An inline `VALUES` block.
    Values(InlineData<'a>),
    /// A nested subquery.
    SubSelect(&'a Query<'a>),
    /// A plain nested group.
    Group(GroupGraphPattern<'a>),
}

impl GroupElement<'_> {
    /// Copies the element into the owned representation.
    pub fn to_owned(&self) -> ast::GroupElement {
        match *self {
            GroupElement::Triples(ts) => {
                ast::GroupElement::Triples(ts.iter().map(|t| t.to_owned()).collect())
            }
            GroupElement::Filter(e) => ast::GroupElement::Filter(e.to_owned()),
            GroupElement::Bind { expr, var } => ast::GroupElement::Bind {
                expr: expr.to_owned(),
                var: var.to_string(),
            },
            GroupElement::Optional(g) => ast::GroupElement::Optional(g.to_owned()),
            GroupElement::Union(branches) => {
                ast::GroupElement::Union(branches.iter().map(|b| b.to_owned()).collect())
            }
            GroupElement::Graph { name, pattern } => ast::GroupElement::Graph {
                name: name.to_owned(),
                pattern: pattern.to_owned(),
            },
            GroupElement::Minus(g) => ast::GroupElement::Minus(g.to_owned()),
            GroupElement::Service {
                silent,
                name,
                pattern,
            } => ast::GroupElement::Service {
                silent,
                name: name.to_owned(),
                pattern: pattern.to_owned(),
            },
            GroupElement::Values(d) => ast::GroupElement::Values(d.to_owned()),
            GroupElement::SubSelect(q) => ast::GroupElement::SubSelect(Box::new(q.to_owned())),
            GroupElement::Group(g) => ast::GroupElement::Group(g.to_owned()),
        }
    }
}

/// A group graph pattern (borrowed). See [`ast::GroupGraphPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupGraphPattern<'a> {
    /// The elements in source order.
    pub elements: &'a [GroupElement<'a>],
}

impl<'a> GroupGraphPattern<'a> {
    /// Returns `true` if the group contains no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Visits every variable occurrence in the group (duplicates included),
    /// with the same coverage as [`ast::GroupGraphPattern::all_variables`].
    pub fn for_each_variable(&self, f: &mut impl FnMut(&'a str)) {
        for el in self.elements {
            match el {
                GroupElement::Triples(ts) => {
                    for t in *ts {
                        match t {
                            TripleOrPath::Triple(t) => {
                                for term in [&t.subject, &t.predicate, &t.object] {
                                    if let Term::Var(v) = term {
                                        f(v);
                                    }
                                }
                            }
                            TripleOrPath::Path(p) => {
                                for term in [&p.subject, &p.object] {
                                    if let Term::Var(v) = term {
                                        f(v);
                                    }
                                }
                            }
                        }
                    }
                }
                GroupElement::Filter(e) => e.for_each_variable(f),
                GroupElement::Bind { expr, var } => {
                    expr.for_each_variable(f);
                    f(var);
                }
                GroupElement::Optional(g) | GroupElement::Minus(g) | GroupElement::Group(g) => {
                    g.for_each_variable(f)
                }
                GroupElement::Union(branches) => {
                    for b in *branches {
                        b.for_each_variable(f);
                    }
                }
                GroupElement::Graph { name, pattern }
                | GroupElement::Service { name, pattern, .. } => {
                    if let Term::Var(v) = name {
                        f(v);
                    }
                    pattern.for_each_variable(f);
                }
                GroupElement::Values(d) => {
                    for v in d.variables {
                        f(v);
                    }
                }
                GroupElement::SubSelect(q) => {
                    if let Some(w) = &q.where_clause {
                        w.for_each_variable(f);
                    }
                }
            }
        }
    }

    /// Copies the group into the owned representation.
    pub fn to_owned(&self) -> ast::GroupGraphPattern {
        ast::GroupGraphPattern {
            elements: self.elements.iter().map(|el| el.to_owned()).collect(),
        }
    }
}

/// One item of a SELECT clause (borrowed). See [`ast::SelectItem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectItem<'a> {
    /// The expression, if the item is `(expr AS ?var)`.
    pub expr: Option<Expression<'a>>,
    /// The (result) variable name.
    pub var: &'a str,
}

impl SelectItem<'_> {
    /// Copies the item into the owned representation.
    pub fn to_owned(&self) -> ast::SelectItem {
        ast::SelectItem {
            expr: self.expr.map(|e| e.to_owned()),
            var: self.var.to_string(),
        }
    }
}

/// What a query projects / describes (borrowed). See [`ast::Projection`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Projection<'a> {
    /// `SELECT *` (or DESCRIBE *).
    All,
    /// An explicit list of SELECT items.
    Items(&'a [SelectItem<'a>]),
    /// The resource list of a DESCRIBE query.
    Terms(&'a [Term<'a>]),
    /// ASK and CONSTRUCT queries have no projection.
    None,
}

impl Projection<'_> {
    /// Copies the projection into the owned representation.
    pub fn to_owned(&self) -> ast::Projection {
        match *self {
            Projection::All => ast::Projection::All,
            Projection::Items(items) => {
                ast::Projection::Items(items.iter().map(|i| i.to_owned()).collect())
            }
            Projection::Terms(terms) => {
                ast::Projection::Terms(terms.iter().map(|t| t.to_owned()).collect())
            }
            Projection::None => ast::Projection::None,
        }
    }
}

/// A single ORDER BY condition (borrowed). See [`ast::OrderCondition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderCondition<'a> {
    /// Direction of this condition.
    pub direction: OrderDirection,
    /// The ordering expression.
    pub expr: Expression<'a>,
}

impl OrderCondition<'_> {
    /// Copies the condition into the owned representation.
    pub fn to_owned(&self) -> ast::OrderCondition {
        ast::OrderCondition {
            direction: self.direction,
            expr: self.expr.to_owned(),
        }
    }
}

/// One GROUP BY condition (borrowed). See [`ast::GroupCondition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCondition<'a> {
    /// The grouping expression.
    pub expr: Expression<'a>,
    /// Optional alias variable.
    pub alias: Option<&'a str>,
}

impl GroupCondition<'_> {
    /// Copies the condition into the owned representation.
    pub fn to_owned(&self) -> ast::GroupCondition {
        ast::GroupCondition {
            expr: self.expr.to_owned(),
            alias: self.alias.map(str::to_string),
        }
    }
}

/// Solution modifiers (borrowed). See [`ast::SolutionModifiers`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolutionModifiers<'a> {
    /// `DISTINCT` on the projection.
    pub distinct: bool,
    /// `REDUCED` on the projection.
    pub reduced: bool,
    /// `GROUP BY` conditions (empty when absent).
    pub group_by: &'a [GroupCondition<'a>],
    /// `HAVING` constraints (empty when absent).
    pub having: &'a [Expression<'a>],
    /// `ORDER BY` conditions (empty when absent).
    pub order_by: &'a [OrderCondition<'a>],
    /// `LIMIT`, if present.
    pub limit: Option<u64>,
    /// `OFFSET`, if present.
    pub offset: Option<u64>,
}

impl SolutionModifiers<'_> {
    /// Copies the modifiers into the owned representation.
    pub fn to_owned(&self) -> ast::SolutionModifiers {
        ast::SolutionModifiers {
            distinct: self.distinct,
            reduced: self.reduced,
            group_by: self.group_by.iter().map(|g| g.to_owned()).collect(),
            having: self.having.iter().map(|e| e.to_owned()).collect(),
            order_by: self.order_by.iter().map(|o| o.to_owned()).collect(),
            limit: self.limit,
            offset: self.offset,
        }
    }
}

/// A `FROM` / `FROM NAMED` clause (borrowed). See [`ast::DatasetClause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetClause<'a> {
    /// Whether the clause was `FROM NAMED`.
    pub named: bool,
    /// The graph IRI.
    pub iri: &'a str,
}

impl DatasetClause<'_> {
    /// Copies the clause into the owned representation.
    pub fn to_owned(&self) -> ast::DatasetClause {
        ast::DatasetClause {
            named: self.named,
            iri: self.iri.to_string(),
        }
    }
}

/// The prologue of a query (borrowed). See [`ast::Prologue`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prologue<'a> {
    /// The BASE IRI, if declared.
    pub base: Option<&'a str>,
    /// The declared prefixes in source order as `(prefix, iri)` pairs.
    pub prefixes: &'a [(&'a str, &'a str)],
}

impl Prologue<'_> {
    /// Copies the prologue into the owned representation.
    pub fn to_owned(&self) -> ast::Prologue {
        ast::Prologue {
            base: self.base.map(str::to_string),
            prefixes: self
                .prefixes
                .iter()
                .map(|&(p, i)| (p.to_string(), i.to_string()))
                .collect(),
        }
    }
}

/// A complete SPARQL query (borrowed). See [`ast::Query`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query<'a> {
    /// BASE / PREFIX declarations.
    pub prologue: Prologue<'a>,
    /// The query form (Select / Ask / Construct / Describe).
    pub form: QueryForm,
    /// What is projected or described.
    pub projection: Projection<'a>,
    /// The CONSTRUCT template, for CONSTRUCT queries.
    pub construct_template: Option<&'a [TriplePattern<'a>]>,
    /// FROM / FROM NAMED clauses.
    pub dataset: &'a [DatasetClause<'a>],
    /// The WHERE clause. `None` for body-less DESCRIBE (and rare ASK) queries.
    pub where_clause: Option<GroupGraphPattern<'a>>,
    /// Solution modifiers.
    pub modifiers: SolutionModifiers<'a>,
    /// A trailing `VALUES` block after the solution modifiers, if present.
    pub values: Option<InlineData<'a>>,
}

impl Query<'_> {
    /// Returns `true` if the query has a (non-empty) WHERE clause body.
    pub fn has_body(&self) -> bool {
        self.where_clause.as_ref().is_some_and(|g| !g.is_empty())
    }

    /// Copies the borrowed query into the owned [`ast::Query`]
    /// representation — the adapter that keeps the owned surface (serde,
    /// baseline engine, external consumers) unchanged.
    pub fn to_owned(&self) -> ast::Query {
        ast::Query {
            prologue: self.prologue.to_owned(),
            form: self.form,
            projection: self.projection.to_owned(),
            construct_template: self
                .construct_template
                .map(|ts| ts.iter().map(|t| t.to_owned()).collect()),
            dataset: self.dataset.iter().map(|d| d.to_owned()).collect(),
            where_clause: self.where_clause.map(|g| g.to_owned()),
            modifiers: self.modifiers.to_owned(),
            values: self.values.map(|v| v.to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_display_matches_owned() {
        let cases: Vec<Term<'_>> = vec![
            Term::Iri("http://example.org/p"),
            Term::Iri("wdt:P31"),
            Term::Iri("urn:x"),
            Term::Literal {
                lexical: "hi \"there\"",
                datatype: Some("http://www.w3.org/2001/XMLSchema#string"),
                lang: None,
            },
            Term::Literal {
                lexical: "bonjour",
                datatype: None,
                lang: Some("fr"),
            },
            Term::BlankNode("b0"),
            Term::Var("x"),
        ];
        for t in cases {
            assert_eq!(t.to_string(), t.to_owned().to_string());
        }
    }

    #[test]
    fn path_display_matches_owned() {
        let a = PropertyPath::Iri("a");
        let b = PropertyPath::Iri("b");
        let seq = PropertyPath::Sequence(&a, &b);
        let star = PropertyPath::ZeroOrMore(&seq);
        let inv = PropertyPath::Inverse(&star);
        let neg = PropertyPath::NegatedPropertySet(&[("p", false), ("q", true)]);
        for p in [a, seq, star, inv, neg] {
            assert_eq!(p.to_string(), p.to_owned().to_string());
            assert_eq!(p.is_trivial(), p.to_owned().is_trivial());
        }
    }

    #[test]
    fn expression_for_each_variable_matches_owned_collect() {
        let x = Expression::Var("x");
        let y = Expression::Var("y");
        let eq = Expression::Equal(&x, &y);
        let args = [Expression::Var("x")];
        let call = Expression::FunctionCall("LANG", &args);
        let e = Expression::And(&eq, &call);
        let mut seen = Vec::new();
        e.for_each_variable(&mut |v| seen.push(v.to_string()));
        seen.sort();
        seen.dedup();
        assert_eq!(seen, e.to_owned().variables());
    }

    #[test]
    fn group_for_each_variable_matches_owned() {
        let triples = [TripleOrPath::Triple(TriplePattern {
            subject: Term::Var("a"),
            predicate: Term::Iri("p"),
            object: Term::Var("b"),
        })];
        let inner_elements = [GroupElement::Triples(&triples)];
        let inner = GroupGraphPattern {
            elements: &inner_elements,
        };
        let elements = [
            GroupElement::Optional(inner),
            GroupElement::Filter(Expression::Var("c")),
        ];
        let g = GroupGraphPattern {
            elements: &elements,
        };
        let mut seen = Vec::new();
        g.for_each_variable(&mut |v| seen.push(v.to_string()));
        seen.sort();
        seen.dedup();
        assert_eq!(seen, g.to_owned().all_variables());
    }
}
