//! SWAR (SIMD-within-a-register) byte classification shared by the
//! zero-copy [`lexer`](crate::lexer) and `core`'s streaming line readers.
//!
//! Every scanner here walks its input a machine word at a time and builds a
//! per-lane *stop mask*: the high bit of each byte lane is set exactly when
//! the lane leaves the scanned character class. The masks are assembled from
//! carry-free range/equality tests over the low seven bits (no arithmetic
//! ever crosses a lane boundary), so — unlike the classic borrow-propagating
//! "has zero byte" trick — each mask is *exact* and may be popcounted, not
//! just searched for its lowest set bit.
//!
//! The one borrow-based scanner, [`find_newline`], predates this module in
//! `core`'s `LineLogReader` and is hoisted here so both the lexer's comment
//! skipping and the line readers share a single implementation. Its
//! approximate mask is safe because only the *first* match is consumed:
//! borrow-induced false flags can only appear in lanes above a true match.

/// `0x01` in every lane.
const ONES: u64 = 0x0101_0101_0101_0101;
/// `0x80` in every lane.
const HIGHS: u64 = 0x8080_8080_8080_8080;

/// Broadcasts a byte into every lane of a word.
#[inline(always)]
const fn splat(b: u8) -> u64 {
    ONES * b as u64
}

/// Exact per-lane test `lo <= lane <= hi` for an ASCII range (`hi < 0x80`):
/// returns a word whose lane high bits are set exactly on the lanes inside
/// the range. Lanes with their own high bit set (non-ASCII) are never
/// members. All additions stay inside their lane: the masked lane value is
/// at most `0x7F` and both addends are at most `0x7F`, so no carry crosses
/// into the neighbouring lane and the mask is exact (popcount-safe).
#[inline(always)]
const fn in_range(word: u64, lo: u8, hi: u8) -> u64 {
    let seven = word & !HIGHS;
    let ge_lo = seven.wrapping_add(splat(0x80 - lo)) & HIGHS;
    let gt_hi = seven.wrapping_add(splat(0x7F - hi)) & HIGHS;
    ge_lo & !gt_hi & !(word & HIGHS)
}

/// Exact per-lane equality test against one ASCII byte.
#[inline(always)]
const fn eq(word: u64, b: u8) -> u64 {
    in_range(word, b, b)
}

/// Loads the word starting at `bytes[i]` (caller guarantees 8 bytes).
#[inline(always)]
fn load(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte chunk"))
}

/// The generic scanner skeleton: advances from `start` while `member`
/// holds, taking 8-byte SWAR strides through the interior and a scalar tail
/// at the end. `member_mask` must be the exact word-at-a-time image of
/// `member` (lane high bit set iff the lane byte is a member).
#[inline(always)]
fn scan_while(
    bytes: &[u8],
    start: usize,
    member_mask: impl Fn(u64) -> u64,
    member: impl Fn(u8) -> bool,
) -> usize {
    let mut i = start;
    while i + 8 <= bytes.len() {
        let stops = !member_mask(load(bytes, i)) & HIGHS;
        if stops != 0 {
            return i + stops.trailing_zeros() as usize / 8;
        }
        i += 8;
    }
    while i < bytes.len() && member(bytes[i]) {
        i += 1;
    }
    i
}

/// True for bytes that may start a SPARQL name (variable names, prefixes,
/// local parts). Multi-byte UTF-8 lead bytes are accepted so that
/// internationalized names in real logs tokenize.
#[inline(always)]
pub fn is_name_start_char(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that may continue a SPARQL name.
#[inline(always)]
pub fn is_name_char(b: u8) -> bool {
    is_name_start_char(b) || b.is_ascii_digit() || b == b'-'
}

/// The SPARQL whitespace set: the five bytes `is_ascii_whitespace` accepts
/// (space, tab, line feed, form feed, carriage return).
#[inline(always)]
pub fn is_whitespace(b: u8) -> bool {
    b.is_ascii_whitespace()
}

#[inline(always)]
fn whitespace_mask(w: u64) -> u64 {
    eq(w, b' ') | in_range(w, 0x09, 0x0A) | in_range(w, 0x0C, 0x0D)
}

#[inline(always)]
fn name_mask(w: u64) -> u64 {
    in_range(w, b'A', b'Z')
        | in_range(w, b'a', b'z')
        | in_range(w, b'0', b'9')
        | eq(w, b'_')
        | eq(w, b'-')
        | (w & HIGHS)
}

/// Returns the end of the whitespace run starting at `start`: the index of
/// the first non-whitespace byte, or `bytes.len()`.
#[inline]
pub fn skip_whitespace(bytes: &[u8], start: usize) -> usize {
    scan_while(bytes, start, whitespace_mask, is_whitespace)
}

/// Returns the end of the name-character run starting at `start`
/// (`[A-Za-z0-9_-]` plus any byte ≥ `0x80`).
#[inline]
pub fn scan_name(bytes: &[u8], start: usize) -> usize {
    scan_while(bytes, start, name_mask, is_name_char)
}

/// Returns the end of the prefixed-name *local part* run starting at
/// `start`: name characters plus `.`, `%` and `\` (the lexer rewinds
/// trailing dots afterwards).
#[inline]
pub fn scan_local(bytes: &[u8], start: usize) -> usize {
    scan_while(
        bytes,
        start,
        |w| name_mask(w) | eq(w, b'.') | eq(w, b'%') | eq(w, b'\\'),
        |b| is_name_char(b) || b == b'.' || b == b'%' || b == b'\\',
    )
}

/// Returns the end of the ASCII digit run starting at `start`.
#[inline]
pub fn scan_digits(bytes: &[u8], start: usize) -> usize {
    scan_while(
        bytes,
        start,
        |w| in_range(w, b'0', b'9'),
        |b| b.is_ascii_digit(),
    )
}

/// True for bytes an IRI reference body may contain: everything except the
/// closing `>`, the forbidden set `< " { } | ^ ` \` and control/space
/// bytes (≤ `0x20`).
#[inline(always)]
pub fn is_iri_body_char(b: u8) -> bool {
    !matches!(
        b,
        b'>' | b'<' | b'"' | b'{' | b'}' | b'|' | b'^' | b'`' | b'\\'
    ) && b > 0x20
}

/// Returns the index of the first byte after `start` that terminates an IRI
/// body — the closing `>`, a forbidden character or a control/space byte —
/// or `bytes.len()`. The caller inspects the byte at the returned index to
/// decide between an IRI reference and the `<` operator.
#[inline]
pub fn scan_iri_body(bytes: &[u8], start: usize) -> usize {
    scan_while(
        bytes,
        start,
        |w| {
            let stops = in_range(w, 0x00, 0x20)
                | eq(w, b'>')
                | eq(w, b'<')
                | eq(w, b'"')
                | eq(w, b'{')
                | eq(w, b'}')
                | eq(w, b'|')
                | eq(w, b'^')
                | eq(w, b'`')
                | eq(w, b'\\');
            !stops & HIGHS
        },
        is_iri_body_char,
    )
}

/// Returns the index of the first byte at or after `start` that needs
/// per-byte attention inside a string literal: the quote character, a
/// backslash, or (when `stop_at_newline` is set, for short strings) a line
/// terminator. Everything before that index is plain payload the zero-copy
/// lexer can borrow.
#[inline]
pub fn scan_string_plain(bytes: &[u8], start: usize, quote: u8, stop_at_newline: bool) -> usize {
    scan_while(
        bytes,
        start,
        |w| {
            let mut stops = eq(w, quote) | eq(w, b'\\');
            if stop_at_newline {
                stops |= eq(w, b'\n') | eq(w, b'\r');
            }
            !stops & HIGHS
        },
        |b| b != quote && b != b'\\' && (!stop_at_newline || (b != b'\n' && b != b'\r')),
    )
}

/// Counts the newlines in `bytes` and reports the index of the last one.
/// Used by the lexer to carry line/column bookkeeping across multi-line
/// regions (whitespace runs, long strings) it skipped word-at-a-time.
#[inline]
pub fn count_newlines(bytes: &[u8]) -> (u32, Option<usize>) {
    let mut count = 0u32;
    let mut last = None;
    let mut from = 0usize;
    while let Some(position) = find_newline(&bytes[from..]) {
        count += 1;
        last = Some(from + position);
        from += position + 1;
    }
    (count, last)
}

/// Returns the index of the first `\n` in `bytes`, scanning a machine word
/// at a time (SWAR — the classic "has zero byte" bit trick over the
/// XOR-masked word) instead of iterating per byte. `from_le_bytes` pins the
/// lane order so `trailing_zeros` locates the *first* match on any
/// endianness; lanes below the first match carry no borrow, so the reported
/// position is exact even though higher lanes may raise false flags.
pub fn find_newline(bytes: &[u8]) -> Option<usize> {
    const LANES: usize = std::mem::size_of::<usize>();
    const ONES: usize = usize::from_le_bytes([0x01; LANES]);
    const HIGHS: usize = usize::from_le_bytes([0x80; LANES]);
    const TARGET: usize = usize::from_le_bytes([b'\n'; LANES]);
    let mut i = 0;
    while i + LANES <= bytes.len() {
        let chunk: [u8; LANES] = bytes[i..i + LANES]
            .try_into()
            .expect("chunk is exactly LANES bytes");
        let word = usize::from_le_bytes(chunk) ^ TARGET;
        let matches = word.wrapping_sub(ONES) & !word & HIGHS;
        if matches != 0 {
            return Some(i + matches.trailing_zeros() as usize / 8);
        }
        i += LANES;
    }
    bytes[i..].iter().position(|&b| b == b'\n').map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scanner must agree with its scalar classifier at every start
    /// offset of a buffer exercising all 256 byte values in every lane
    /// position.
    fn exercise(scan: impl Fn(&[u8], usize) -> usize, member: impl Fn(u8) -> bool) {
        let mut buffer = Vec::new();
        for value in 0u16..=255 {
            buffer.push(value as u8);
            // Shift lane alignment so each value lands in several lanes.
            if value % 3 == 0 {
                buffer.push(b'x');
            }
        }
        // Long member runs so the SWAR stride actually engages.
        buffer.extend(std::iter::repeat_n(b'a', 40));
        buffer.push(b'!');
        buffer.extend(std::iter::repeat_n(b' ', 40));
        buffer.push(0xC3);
        for start in 0..buffer.len() {
            let mut expected = start;
            while expected < buffer.len() && member(buffer[expected]) {
                expected += 1;
            }
            assert_eq!(
                scan(&buffer, start),
                expected,
                "divergence at start {start} (byte {:#x})",
                buffer[start]
            );
        }
    }

    #[test]
    fn whitespace_scan_matches_scalar() {
        exercise(skip_whitespace, is_whitespace);
    }

    #[test]
    fn name_scan_matches_scalar() {
        exercise(scan_name, is_name_char);
    }

    #[test]
    fn local_scan_matches_scalar() {
        exercise(scan_local, |b| {
            is_name_char(b) || b == b'.' || b == b'%' || b == b'\\'
        });
    }

    #[test]
    fn digit_scan_matches_scalar() {
        exercise(scan_digits, |b| b.is_ascii_digit());
    }

    #[test]
    fn iri_scan_matches_scalar() {
        exercise(scan_iri_body, is_iri_body_char);
    }

    #[test]
    fn string_scan_matches_scalar_in_all_modes() {
        for quote in [b'"', b'\''] {
            for newline in [false, true] {
                exercise(
                    |bytes, start| scan_string_plain(bytes, start, quote, newline),
                    |b| b != quote && b != b'\\' && (!newline || (b != b'\n' && b != b'\r')),
                );
            }
        }
    }

    #[test]
    fn counts_newlines_and_reports_last() {
        assert_eq!(count_newlines(b""), (0, None));
        assert_eq!(count_newlines(b"abc"), (0, None));
        assert_eq!(count_newlines(b"a\nb\nc"), (2, Some(3)));
        let long = [b"x".repeat(20), b"\n".to_vec(), b"y".repeat(20)].concat();
        assert_eq!(count_newlines(&long), (1, Some(20)));
    }

    #[test]
    fn find_newline_agrees_with_naive_search_at_every_offset() {
        for len in 0..40 {
            let mut bytes = vec![b'x'; len];
            assert_eq!(find_newline(&bytes), None, "len {len}");
            for position in 0..len {
                bytes.iter_mut().for_each(|b| *b = b'x');
                bytes[position] = b'\n';
                assert_eq!(find_newline(&bytes), Some(position), "len {len}");
            }
        }
    }

    #[test]
    fn find_newline_reports_first_of_several() {
        assert_eq!(find_newline(b"ab\ncd\nef"), Some(2));
    }
}
