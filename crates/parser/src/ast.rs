//! The abstract syntax tree produced by the parser.
//!
//! The AST intentionally stays close to the *surface syntax* of SPARQL 1.1
//! rather than to the evaluation algebra: the analyses in the paper (keyword
//! census, operator-set classification, fragment membership, canonical graphs)
//! are all defined on the syntactic structure of queries, so preserving group
//! boundaries, UNION branches and OPTIONAL nesting exactly as written is what
//! we need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An RDF term or variable appearing in a triple pattern, expression, or
/// DESCRIBE / GRAPH argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// An IRI. Prefixed names are expanded by the parser when the prefix is
    /// declared; otherwise they are stored as `prefix:local` verbatim.
    Iri(String),
    /// A literal with optional datatype IRI or language tag.
    Literal {
        /// The lexical form (without quotes).
        lexical: String,
        /// Datatype IRI, if `^^` was used.
        datatype: Option<String>,
        /// Language tag, if `@tag` was used.
        lang: Option<String>,
    },
    /// A blank node (explicit label or generated for `[]` / property lists).
    BlankNode(String),
    /// A query variable (without the `?` / `$` sigil).
    Var(String),
}

impl Term {
    /// Convenience constructor for a plain (untyped, untagged) literal.
    pub fn literal(lexical: impl Into<String>) -> Term {
        Term::Literal {
            lexical: lexical.into(),
            datatype: None,
            lang: None,
        }
    }

    /// Convenience constructor for an IRI term.
    pub fn iri(iri: impl Into<String>) -> Term {
        Term::Iri(iri.into())
    }

    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Returns `true` if this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` if this term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// Returns `true` if this term is a variable or blank node — the "join
    /// positions" used when building canonical graphs and hypergraphs.
    pub fn is_var_or_blank(&self) -> bool {
        self.is_var() || self.is_blank()
    }

    /// Returns the variable name if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => {
                if i.contains("://") || i.starts_with("urn:") || i.starts_with("mailto:") {
                    write!(f, "<{i}>")
                } else {
                    write!(f, "{i}")
                }
            }
            Term::Literal {
                lexical,
                datatype,
                lang,
            } => {
                write!(f, "{:?}", lexical)?;
                if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                if let Some(l) = lang {
                    write!(f, "@{l}")?;
                }
                Ok(())
            }
            Term::BlankNode(b) => write!(f, "_:{b}"),
            Term::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A triple pattern `subject predicate object`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TriplePattern {
    /// The subject position.
    pub subject: Term,
    /// The predicate position (an IRI or a variable; never a literal).
    pub predicate: Term,
    /// The object position.
    pub object: Term,
}

impl TriplePattern {
    /// Creates a new triple pattern.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// Iterates over the variables of the pattern (with duplicates).
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|t| t.as_var())
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// A SPARQL 1.1 property path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropertyPath {
    /// A single IRI step.
    Iri(String),
    /// `^p` — inverse step.
    Inverse(Box<PropertyPath>),
    /// `p1 / p2` — sequence.
    Sequence(Box<PropertyPath>, Box<PropertyPath>),
    /// `p1 | p2` — alternative.
    Alternative(Box<PropertyPath>, Box<PropertyPath>),
    /// `p*` — zero or more.
    ZeroOrMore(Box<PropertyPath>),
    /// `p+` — one or more.
    OneOrMore(Box<PropertyPath>),
    /// `p?` — zero or one.
    ZeroOrOne(Box<PropertyPath>),
    /// `!(a | ^b | …)` — negated property set. Each entry is `(iri, inverse?)`.
    NegatedPropertySet(Vec<(String, bool)>),
}

impl PropertyPath {
    /// Returns `true` if the path is a single forward IRI step (i.e. it could
    /// have been written as a plain triple pattern).
    pub fn is_trivial(&self) -> bool {
        matches!(self, PropertyPath::Iri(_))
    }
}

impl fmt::Display for PropertyPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyPath::Iri(i) => write!(f, "<{i}>"),
            PropertyPath::Inverse(p) => write!(f, "^({p})"),
            PropertyPath::Sequence(a, b) => write!(f, "({a}/{b})"),
            PropertyPath::Alternative(a, b) => write!(f, "({a}|{b})"),
            PropertyPath::ZeroOrMore(p) => write!(f, "({p})*"),
            PropertyPath::OneOrMore(p) => write!(f, "({p})+"),
            PropertyPath::ZeroOrOne(p) => write!(f, "({p})?"),
            PropertyPath::NegatedPropertySet(items) => {
                write!(f, "!(")?;
                for (i, (iri, inv)) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    if *inv {
                        write!(f, "^")?;
                    }
                    write!(f, "<{iri}>")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A property path pattern `subject path object`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathPattern {
    /// The subject position.
    pub subject: Term,
    /// The property path connecting subject and object.
    pub path: PropertyPath,
    /// The object position.
    pub object: Term,
}

/// A triple-like element inside a basic graph pattern: either a plain triple
/// pattern or a property path pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TripleOrPath {
    /// A plain triple pattern.
    Triple(TriplePattern),
    /// A property path pattern.
    Path(PathPattern),
}

impl TripleOrPath {
    /// The subject term.
    pub fn subject(&self) -> &Term {
        match self {
            TripleOrPath::Triple(t) => &t.subject,
            TripleOrPath::Path(p) => &p.subject,
        }
    }

    /// The object term.
    pub fn object(&self) -> &Term {
        match self {
            TripleOrPath::Triple(t) => &t.object,
            TripleOrPath::Path(p) => &p.object,
        }
    }
}

/// Aggregate function kinds supported by SPARQL 1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateKind {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `AVG`.
    Avg,
    /// `SAMPLE`.
    Sample,
    /// `GROUP_CONCAT`.
    GroupConcat,
}

/// An aggregate expression such as `COUNT(DISTINCT ?x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Which aggregate function.
    pub kind: AggregateKind,
    /// Whether `DISTINCT` was used inside the aggregate.
    pub distinct: bool,
    /// The aggregated expression; `None` for `COUNT(*)`.
    pub expr: Option<Box<Expression>>,
    /// The `SEPARATOR` argument of `GROUP_CONCAT`, if present.
    pub separator: Option<String>,
}

/// A SPARQL expression (filter constraint, BIND / select expression, HAVING
/// condition, ORDER BY condition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expression {
    /// A variable reference.
    Var(String),
    /// A constant RDF term.
    Term(Term),
    /// `a || b`.
    Or(Box<Expression>, Box<Expression>),
    /// `a && b`.
    And(Box<Expression>, Box<Expression>),
    /// `a = b`.
    Equal(Box<Expression>, Box<Expression>),
    /// `a != b`.
    NotEqual(Box<Expression>, Box<Expression>),
    /// `a < b`.
    Less(Box<Expression>, Box<Expression>),
    /// `a > b`.
    Greater(Box<Expression>, Box<Expression>),
    /// `a <= b`.
    LessEq(Box<Expression>, Box<Expression>),
    /// `a >= b`.
    GreaterEq(Box<Expression>, Box<Expression>),
    /// `a IN (…)`.
    In(Box<Expression>, Vec<Expression>),
    /// `a NOT IN (…)`.
    NotIn(Box<Expression>, Vec<Expression>),
    /// `a + b`.
    Add(Box<Expression>, Box<Expression>),
    /// `a - b`.
    Subtract(Box<Expression>, Box<Expression>),
    /// `a * b`.
    Multiply(Box<Expression>, Box<Expression>),
    /// `a / b`.
    Divide(Box<Expression>, Box<Expression>),
    /// `!a`.
    Not(Box<Expression>),
    /// `-a`.
    UnaryMinus(Box<Expression>),
    /// `+a`.
    UnaryPlus(Box<Expression>),
    /// A built-in call or custom function call `name(args…)`. Built-in names
    /// are stored upper-cased (`LANG`, `REGEX`, …); IRI-named functions keep
    /// the IRI.
    FunctionCall(String, Vec<Expression>),
    /// `EXISTS { … }`.
    Exists(Box<GroupGraphPattern>),
    /// `NOT EXISTS { … }`.
    NotExists(Box<GroupGraphPattern>),
    /// An aggregate expression.
    Aggregate(Aggregate),
}

impl Expression {
    /// Collects the set of distinct variable names mentioned in the
    /// expression, including variables inside EXISTS patterns.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        match self {
            Expression::Var(v) => out.push(v.clone()),
            Expression::Term(_) => {}
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                a.collect_variables(out);
                for e in list {
                    e.collect_variables(out);
                }
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                a.collect_variables(out)
            }
            Expression::FunctionCall(_, args) => {
                for a in args {
                    a.collect_variables(out);
                }
            }
            Expression::Exists(g) | Expression::NotExists(g) => {
                for v in g.all_variables() {
                    out.push(v);
                }
            }
            Expression::Aggregate(agg) => {
                if let Some(e) = &agg.expr {
                    e.collect_variables(out);
                }
            }
        }
    }

    /// Visits every variable mentioned in the expression (with duplicates,
    /// in traversal order) without allocating — the borrowed counterpart of
    /// [`Expression::variables`].
    pub fn for_each_variable<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expression::Var(v) => f(v),
            Expression::Term(_) => {}
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                a.for_each_variable(f);
                b.for_each_variable(f);
            }
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                a.for_each_variable(f);
                for e in list {
                    e.for_each_variable(f);
                }
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                a.for_each_variable(f)
            }
            Expression::FunctionCall(_, args) => {
                for a in args {
                    a.for_each_variable(f);
                }
            }
            Expression::Exists(g) | Expression::NotExists(g) => g.for_each_variable(f),
            Expression::Aggregate(agg) => {
                if let Some(e) = &agg.expr {
                    e.for_each_variable(f);
                }
            }
        }
    }

    /// Returns `true` if the expression contains an EXISTS or NOT EXISTS.
    pub fn contains_exists(&self) -> bool {
        match self {
            Expression::Exists(_) | Expression::NotExists(_) => true,
            Expression::Var(_) | Expression::Term(_) => false,
            Expression::Or(a, b)
            | Expression::And(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::Greater(a, b)
            | Expression::LessEq(a, b)
            | Expression::GreaterEq(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => a.contains_exists() || b.contains_exists(),
            Expression::In(a, list) | Expression::NotIn(a, list) => {
                a.contains_exists() || list.iter().any(|e| e.contains_exists())
            }
            Expression::Not(a) | Expression::UnaryMinus(a) | Expression::UnaryPlus(a) => {
                a.contains_exists()
            }
            Expression::FunctionCall(_, args) => args.iter().any(|a| a.contains_exists()),
            Expression::Aggregate(agg) => agg.expr.as_ref().is_some_and(|e| e.contains_exists()),
        }
    }
}

/// One row of an inline `VALUES` data block; `None` represents `UNDEF`.
pub type ValuesRow = Vec<Option<Term>>;

/// An inline data block `VALUES (?x ?y) { (…) (…) }`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InlineData {
    /// The declared variables.
    pub variables: Vec<String>,
    /// The data rows (each the same length as `variables`).
    pub rows: Vec<ValuesRow>,
}

/// A single syntactic element of a group graph pattern (the content between
/// one pair of braces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupElement {
    /// A block of triple / path patterns joined by `.` / `;` / `,`.
    Triples(Vec<TripleOrPath>),
    /// `FILTER constraint`.
    Filter(Expression),
    /// `BIND (expr AS ?var)`.
    Bind {
        /// The bound expression.
        expr: Expression,
        /// The target variable (without sigil).
        var: String,
    },
    /// `OPTIONAL { … }`.
    Optional(GroupGraphPattern),
    /// A union chain `{A} UNION {B} UNION …` (two or more branches).
    Union(Vec<GroupGraphPattern>),
    /// `GRAPH term { … }`.
    Graph {
        /// The graph name (IRI or variable).
        name: Term,
        /// The nested pattern.
        pattern: GroupGraphPattern,
    },
    /// `MINUS { … }`.
    Minus(GroupGraphPattern),
    /// `SERVICE [SILENT] term { … }`.
    Service {
        /// Whether `SILENT` was given.
        silent: bool,
        /// The service endpoint (IRI or variable).
        name: Term,
        /// The nested pattern.
        pattern: GroupGraphPattern,
    },
    /// An inline `VALUES` block inside the group.
    Values(InlineData),
    /// A nested subquery `{ SELECT … }`.
    SubSelect(Box<Query>),
    /// A plain nested group `{ … }` that is not part of a UNION / OPTIONAL.
    Group(GroupGraphPattern),
}

/// A group graph pattern: the ordered list of elements between `{` and `}`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupGraphPattern {
    /// The elements in source order.
    pub elements: Vec<GroupElement>,
}

impl GroupGraphPattern {
    /// Creates an empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects every distinct variable syntactically occurring anywhere in
    /// the group, including nested groups, filters and subqueries.
    pub fn all_variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        for el in &self.elements {
            match el {
                GroupElement::Triples(ts) => {
                    for t in ts {
                        match t {
                            TripleOrPath::Triple(t) => {
                                for term in [&t.subject, &t.predicate, &t.object] {
                                    if let Term::Var(v) = term {
                                        out.push(v.clone());
                                    }
                                }
                            }
                            TripleOrPath::Path(p) => {
                                for term in [&p.subject, &p.object] {
                                    if let Term::Var(v) = term {
                                        out.push(v.clone());
                                    }
                                }
                            }
                        }
                    }
                }
                GroupElement::Filter(e) => out.extend(e.variables()),
                GroupElement::Bind { expr, var } => {
                    out.extend(expr.variables());
                    out.push(var.clone());
                }
                GroupElement::Optional(g) | GroupElement::Minus(g) | GroupElement::Group(g) => {
                    g.collect_variables(out)
                }
                GroupElement::Union(branches) => {
                    for b in branches {
                        b.collect_variables(out);
                    }
                }
                GroupElement::Graph { name, pattern } => {
                    if let Term::Var(v) = name {
                        out.push(v.clone());
                    }
                    pattern.collect_variables(out);
                }
                GroupElement::Service { name, pattern, .. } => {
                    if let Term::Var(v) = name {
                        out.push(v.clone());
                    }
                    pattern.collect_variables(out);
                }
                GroupElement::Values(d) => out.extend(d.variables.iter().cloned()),
                GroupElement::SubSelect(q) => {
                    if let Some(w) = &q.where_clause {
                        w.collect_variables(out);
                    }
                }
            }
        }
    }

    /// Visits every variable occurrence in the group (the same coverage as
    /// [`GroupGraphPattern::all_variables`], duplicates included) without
    /// allocating.
    pub fn for_each_variable<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        for el in &self.elements {
            match el {
                GroupElement::Triples(ts) => {
                    for t in ts {
                        match t {
                            TripleOrPath::Triple(t) => {
                                for term in [&t.subject, &t.predicate, &t.object] {
                                    if let Term::Var(v) = term {
                                        f(v);
                                    }
                                }
                            }
                            TripleOrPath::Path(p) => {
                                for term in [&p.subject, &p.object] {
                                    if let Term::Var(v) = term {
                                        f(v);
                                    }
                                }
                            }
                        }
                    }
                }
                GroupElement::Filter(e) => e.for_each_variable(f),
                GroupElement::Bind { expr, var } => {
                    expr.for_each_variable(f);
                    f(var);
                }
                GroupElement::Optional(g) | GroupElement::Minus(g) | GroupElement::Group(g) => {
                    g.for_each_variable(f)
                }
                GroupElement::Union(branches) => {
                    for b in branches {
                        b.for_each_variable(f);
                    }
                }
                GroupElement::Graph { name, pattern }
                | GroupElement::Service { name, pattern, .. } => {
                    if let Term::Var(v) = name {
                        f(v);
                    }
                    pattern.for_each_variable(f);
                }
                GroupElement::Values(d) => {
                    for v in &d.variables {
                        f(v);
                    }
                }
                GroupElement::SubSelect(q) => {
                    if let Some(w) = &q.where_clause {
                        w.for_each_variable(f);
                    }
                }
            }
        }
    }

    /// Returns `true` if the group (recursively) contains no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

/// The four SPARQL query forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryForm {
    /// `SELECT` — returns projected variable bindings.
    Select,
    /// `ASK` — returns a boolean.
    Ask,
    /// `CONSTRUCT` — returns a new RDF graph built from a template.
    Construct,
    /// `DESCRIBE` — returns RDF describing the given resources.
    Describe,
}

impl fmt::Display for QueryForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryForm::Select => write!(f, "SELECT"),
            QueryForm::Ask => write!(f, "ASK"),
            QueryForm::Construct => write!(f, "CONSTRUCT"),
            QueryForm::Describe => write!(f, "DESCRIBE"),
        }
    }
}

/// One item of a SELECT clause: a plain variable or `(expr AS ?var)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    /// The expression, if the item is `(expr AS ?var)`.
    pub expr: Option<Expression>,
    /// The (result) variable name.
    pub var: String,
}

/// What a query projects / describes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Projection {
    /// `SELECT *` (or DESCRIBE *).
    All,
    /// An explicit list of SELECT items.
    Items(Vec<SelectItem>),
    /// The resource list of a DESCRIBE query (IRIs and/or variables).
    Terms(Vec<Term>),
    /// ASK and CONSTRUCT queries have no projection.
    None,
}

/// `ASC` / `DESC` order directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderDirection {
    /// Ascending (the default).
    Asc,
    /// Descending.
    Desc,
}

/// A single ORDER BY condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderCondition {
    /// Direction of this condition.
    pub direction: OrderDirection,
    /// The ordering expression.
    pub expr: Expression,
}

/// One GROUP BY condition: an expression with an optional `AS ?var` alias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupCondition {
    /// The grouping expression.
    pub expr: Expression,
    /// Optional alias variable.
    pub alias: Option<String>,
}

/// Solution modifiers attached to a query (Section 4.1 of the paper, second
/// block of Table 2).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolutionModifiers {
    /// `DISTINCT` on the projection.
    pub distinct: bool,
    /// `REDUCED` on the projection.
    pub reduced: bool,
    /// `GROUP BY` conditions (empty when absent).
    pub group_by: Vec<GroupCondition>,
    /// `HAVING` constraints (empty when absent).
    pub having: Vec<Expression>,
    /// `ORDER BY` conditions (empty when absent).
    pub order_by: Vec<OrderCondition>,
    /// `LIMIT`, if present.
    pub limit: Option<u64>,
    /// `OFFSET`, if present.
    pub offset: Option<u64>,
}

/// A `FROM` / `FROM NAMED` dataset clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetClause {
    /// Whether the clause was `FROM NAMED`.
    pub named: bool,
    /// The graph IRI.
    pub iri: String,
}

/// The prologue of a query: BASE and PREFIX declarations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Prologue {
    /// The BASE IRI, if declared.
    pub base: Option<String>,
    /// The declared prefixes in source order as `(prefix, iri)` pairs.
    pub prefixes: Vec<(String, String)>,
}

/// A complete SPARQL query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// BASE / PREFIX declarations.
    pub prologue: Prologue,
    /// The query form (Select / Ask / Construct / Describe).
    pub form: QueryForm,
    /// What is projected or described.
    pub projection: Projection,
    /// The CONSTRUCT template, for CONSTRUCT queries.
    pub construct_template: Option<Vec<TriplePattern>>,
    /// FROM / FROM NAMED clauses.
    pub dataset: Vec<DatasetClause>,
    /// The WHERE clause. `None` for body-less DESCRIBE (and rare ASK) queries.
    pub where_clause: Option<GroupGraphPattern>,
    /// Solution modifiers.
    pub modifiers: SolutionModifiers,
    /// A trailing `VALUES` block after the solution modifiers, if present.
    pub values: Option<InlineData>,
}

impl Query {
    /// Returns `true` if the query has a (non-empty) WHERE clause body.
    pub fn has_body(&self) -> bool {
        self.where_clause.as_ref().is_some_and(|g| !g.is_empty())
    }

    /// Returns the set of distinct variables appearing in the WHERE clause.
    pub fn body_variables(&self) -> Vec<String> {
        self.where_clause
            .as_ref()
            .map(|g| g.all_variables())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_constructors_and_predicates() {
        assert!(Term::var("x").is_var());
        assert!(Term::BlankNode("b".into()).is_blank());
        assert!(Term::var("x").is_var_or_blank());
        assert!(!Term::iri("http://x").is_var_or_blank());
        assert_eq!(Term::var("x").as_var(), Some("x"));
        assert_eq!(Term::iri("http://x").as_var(), None);
    }

    #[test]
    fn triple_pattern_variables() {
        let t = TriplePattern::new(Term::var("s"), Term::iri("p"), Term::var("o"));
        let vars: Vec<_> = t.variables().collect();
        assert_eq!(vars, vec!["s", "o"]);
    }

    #[test]
    fn expression_variables_dedup_and_sort() {
        let e = Expression::And(
            Box::new(Expression::Equal(
                Box::new(Expression::Var("x".into())),
                Box::new(Expression::Var("y".into())),
            )),
            Box::new(Expression::FunctionCall(
                "LANG".into(),
                vec![Expression::Var("x".into())],
            )),
        );
        assert_eq!(e.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn group_all_variables_traverses_nested_structures() {
        let inner = GroupGraphPattern {
            elements: vec![GroupElement::Triples(vec![TripleOrPath::Triple(
                TriplePattern::new(Term::var("a"), Term::iri("p"), Term::var("b")),
            )])],
        };
        let g = GroupGraphPattern {
            elements: vec![
                GroupElement::Optional(inner),
                GroupElement::Filter(Expression::Var("c".into())),
            ],
        };
        assert_eq!(g.all_variables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn query_has_body() {
        let q = Query {
            prologue: Prologue::default(),
            form: QueryForm::Describe,
            projection: Projection::Terms(vec![Term::iri("http://x")]),
            construct_template: None,
            dataset: vec![],
            where_clause: None,
            modifiers: SolutionModifiers::default(),
            values: None,
        };
        assert!(!q.has_body());
    }

    #[test]
    fn property_path_display_and_trivial() {
        let p = PropertyPath::Sequence(
            Box::new(PropertyPath::Iri("a".into())),
            Box::new(PropertyPath::ZeroOrMore(Box::new(PropertyPath::Iri(
                "b".into(),
            )))),
        );
        assert!(p.to_string().contains("/"));
        assert!(!p.is_trivial());
        assert!(PropertyPath::Iri("a".into()).is_trivial());
    }
}
