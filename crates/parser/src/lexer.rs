//! A hand-written lexer for SPARQL 1.1 queries.
//!
//! The lexer converts a query string into a vector of [`Spanned`] tokens. It
//! handles the context-sensitive parts of the SPARQL token grammar that make
//! naive tokenization fail on real query logs:
//!
//! * `<…>` is an IRI reference only if it closes before a forbidden character;
//!   otherwise `<` is the less-than operator.
//! * `?` introduces a variable only when followed by a name character;
//!   otherwise it is the zero-or-one path modifier.
//! * `.` terminates triples but also appears inside decimal literals and
//!   prefixed-name local parts.
//! * comments (`# …`) and all four string quoting styles are supported.

use crate::error::{ParseError, Result};
use crate::token::{Keyword, Spanned, Token};

/// Tokenizes `input` into a stream of spanned tokens.
///
/// Returns an error on malformed lexical constructs (unterminated strings or
/// IRIs, stray characters). The corpus pipeline treats such entries as invalid
/// queries.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Spanned>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, token: Token, offset: usize, line: u32, column: u32) {
        self.out.push(Spanned {
            token,
            offset,
            line,
            column,
        });
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        loop {
            self.skip_ws_and_comments();
            let (offset, line, col) = (self.pos, self.line, self.col);
            let Some(b) = self.peek() else { break };
            let token = match b {
                b'{' => {
                    self.bump();
                    Token::LBrace
                }
                b'}' => {
                    self.bump();
                    Token::RBrace
                }
                b'(' => {
                    self.bump();
                    // NIL: '(' WS* ')'
                    let save = (self.pos, self.line, self.col);
                    self.skip_ws_and_comments();
                    if self.peek() == Some(b')') {
                        self.bump();
                        Token::Nil
                    } else {
                        self.pos = save.0;
                        self.line = save.1;
                        self.col = save.2;
                        Token::LParen
                    }
                }
                b')' => {
                    self.bump();
                    Token::RParen
                }
                b'[' => {
                    self.bump();
                    let save = (self.pos, self.line, self.col);
                    self.skip_ws_and_comments();
                    if self.peek() == Some(b']') {
                        self.bump();
                        Token::Anon
                    } else {
                        self.pos = save.0;
                        self.line = save.1;
                        self.col = save.2;
                        Token::LBracket
                    }
                }
                b']' => {
                    self.bump();
                    Token::RBracket
                }
                b',' => {
                    self.bump();
                    Token::Comma
                }
                b';' => {
                    self.bump();
                    Token::Semicolon
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        Token::OrOr
                    } else {
                        Token::Pipe
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        Token::AndAnd
                    } else {
                        return Err(self.error("stray '&'"));
                    }
                }
                b'/' => {
                    self.bump();
                    Token::Slash
                }
                b'^' => {
                    self.bump();
                    if self.peek() == Some(b'^') {
                        self.bump();
                        Token::DoubleCaret
                    } else {
                        Token::Caret
                    }
                }
                b'*' => {
                    self.bump();
                    Token::Star
                }
                b'+' => {
                    self.bump();
                    Token::Plus
                }
                b'-' => {
                    self.bump();
                    Token::Minus
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Token::NotEqual
                    } else {
                        Token::Bang
                    }
                }
                b'=' => {
                    self.bump();
                    Token::Equal
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Token::GreaterEq
                    } else {
                        Token::Greater
                    }
                }
                b'<' => self.lex_lt_or_iri()?,
                b'.' => {
                    // Decimal like ".5" is valid; otherwise a Dot.
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number()?
                    } else {
                        self.bump();
                        Token::Dot
                    }
                }
                b'?' | b'$' => {
                    if self.peek_at(1).is_some_and(is_name_start_char) {
                        self.lex_var()
                    } else {
                        self.bump();
                        Token::Question
                    }
                }
                b'"' | b'\'' => self.lex_string()?,
                b'@' => self.lex_lang_tag()?,
                b'_' if self.peek_at(1) == Some(b':') => self.lex_blank_node()?,
                b'0'..=b'9' => self.lex_number()?,
                _ if is_name_start_char(b) || b == b':' => self.lex_word()?,
                other => {
                    return Err(self.error(format!("unexpected character '{}'", other as char)))
                }
            };
            self.push(token, offset, line, col);
        }
        Ok(self.out)
    }

    /// Lexes either an IRI reference `<…>` or the `<` / `<=` operators.
    fn lex_lt_or_iri(&mut self) -> Result<Token> {
        // Try IRIREF: scan forward for '>' without hitting characters that are
        // illegal inside an IRI reference.
        let mut j = self.pos + 1;
        let mut is_iri = false;
        while let Some(&c) = self.bytes.get(j) {
            match c {
                b'>' => {
                    is_iri = true;
                    break;
                }
                b'<' | b'"' | b'{' | b'}' | b'|' | b'^' | b'`' | b'\\' => break,
                c if c <= 0x20 => break,
                _ => j += 1,
            }
        }
        if is_iri {
            let iri = self.src[self.pos + 1..j].to_string();
            // advance over '<' … '>'
            while self.pos <= j {
                self.bump();
            }
            Ok(Token::IriRef(iri))
        } else {
            self.bump();
            if self.peek() == Some(b'=') {
                self.bump();
                Ok(Token::LessEq)
            } else {
                Ok(Token::Less)
            }
        }
    }

    fn lex_var(&mut self) -> Token {
        self.bump(); // sigil
        let start = self.pos;
        while self.peek().is_some_and(is_name_char) {
            self.bump();
        }
        Token::Var(self.src[start..self.pos].to_string())
    }

    fn lex_blank_node(&mut self) -> Result<Token> {
        self.bump(); // '_'
        self.bump(); // ':'
        let start = self.pos;
        while self.peek().is_some_and(|c| is_name_char(c) || c == b'.') {
            self.bump();
        }
        let mut end = self.pos;
        while end > start && self.bytes[end - 1] == b'.' {
            end -= 1;
            // Re-emit trailing dots as Dot tokens by rewinding.
            self.pos -= 1;
            self.col -= 1;
        }
        if end == start {
            return Err(self.error("empty blank node label"));
        }
        Ok(Token::BlankNodeLabel(self.src[start..end].to_string()))
    }

    fn lex_lang_tag(&mut self) -> Result<Token> {
        self.bump(); // '@'
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'-')
        {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("empty language tag"));
        }
        Ok(Token::LangTag(self.src[start..self.pos].to_string()))
    }

    fn lex_number(&mut self) -> Result<Token> {
        let start = self.pos;
        let mut has_dot = false;
        let mut has_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !has_dot && !has_exp => {
                    // A '.' is part of the number only if followed by a digit
                    // or an exponent; "1." followed by whitespace terminates a
                    // triple in practice (e.g. "?x :p 1.").
                    if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        has_dot = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !has_exp => {
                    has_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = self.src[start..self.pos].to_string();
        if text.is_empty() {
            return Err(self.error("malformed numeric literal"));
        }
        Ok(if has_exp {
            Token::Double(text)
        } else if has_dot {
            Token::Decimal(text)
        } else {
            Token::Integer(text)
        })
    }

    fn lex_string(&mut self) -> Result<Token> {
        let quote = self.peek().expect("caller checked");
        // Detect long quote form (''' or """).
        let long = self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote);
        if long {
            self.bump();
            self.bump();
            self.bump();
        } else {
            self.bump();
        }
        let mut value = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string literal"));
            };
            if c == quote {
                if long {
                    if self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote) {
                        self.bump();
                        self.bump();
                        self.bump();
                        break;
                    }
                    value.push(c as char);
                    self.bump();
                } else {
                    self.bump();
                    break;
                }
            } else if c == b'\\' {
                self.bump();
                let Some(esc) = self.src[self.pos..].chars().next() else {
                    return Err(self.error("unterminated escape sequence"));
                };
                for _ in 0..esc.len_utf8() {
                    self.bump();
                }
                match esc {
                    't' => value.push('\t'),
                    'n' => value.push('\n'),
                    'r' => value.push('\r'),
                    'b' => value.push('\u{8}'),
                    'f' => value.push('\u{c}'),
                    '"' => value.push('"'),
                    '\'' => value.push('\''),
                    '\\' => value.push('\\'),
                    'u' | 'U' => {
                        let len = if esc == 'u' { 4 } else { 8 };
                        let mut code = 0u32;
                        for _ in 0..len {
                            let Some(h) = self.bump() else {
                                return Err(self.error("truncated unicode escape"));
                            };
                            let d = (h as char)
                                .to_digit(16)
                                .ok_or_else(|| self.error("invalid unicode escape"))?;
                            code = code * 16 + d;
                        }
                        value.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        // Be lenient: real logs contain sloppy escapes.
                        value.push('\\');
                        value.push(other);
                    }
                }
            } else if !long && (c == b'\n' || c == b'\r') {
                return Err(self.error("newline in short string literal"));
            } else {
                // Copy a full UTF-8 code point.
                let ch_start = self.pos;
                let ch = self.src[ch_start..].chars().next().expect("valid utf8");
                for _ in 0..ch.len_utf8() {
                    self.bump();
                }
                value.push(ch);
            }
        }
        Ok(Token::String(value))
    }

    /// Lexes an identifier-like word: a keyword, the `a` predicate, a boolean,
    /// a bare built-in name, or a prefixed name (when a ':' follows).
    fn lex_word(&mut self) -> Result<Token> {
        let start = self.pos;
        // Leading ':' means a prefixed name with the empty prefix.
        if self.peek() == Some(b':') {
            self.bump();
            let local = self.lex_local_part();
            return Ok(Token::PrefixedName(String::new(), local));
        }
        while self.peek().is_some_and(|c| is_name_char(c) || c == b'.') {
            // A '.' terminates the prefix part only if not followed by a name
            // char; here we conservatively stop at '.' since prefixes rarely
            // contain dots, and re-lex the dot as punctuation.
            if self.peek() == Some(b'.') {
                break;
            }
            self.bump();
        }
        let word = &self.src[start..self.pos];
        if self.peek() == Some(b':') {
            // Prefixed name.
            self.bump();
            let local = self.lex_local_part();
            return Ok(Token::PrefixedName(word.to_string(), local));
        }
        if word == "a" {
            return Ok(Token::A);
        }
        if word.eq_ignore_ascii_case("true") {
            return Ok(Token::Boolean(true));
        }
        if word.eq_ignore_ascii_case("false") {
            return Ok(Token::Boolean(false));
        }
        if let Some(kw) = Keyword::from_str_ci(word) {
            return Ok(Token::Keyword(kw));
        }
        if word.is_empty() {
            return Err(self.error("unexpected ':'"));
        }
        Ok(Token::Ident(word.to_string()))
    }

    fn lex_local_part(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| is_name_char(c) || c == b'.' || c == b'%' || c == b'\\')
        {
            self.bump();
        }
        // A trailing '.' belongs to the surrounding triple, not the name.
        let mut end = self.pos;
        while end > start && self.bytes[end - 1] == b'.' {
            end -= 1;
            self.pos -= 1;
            self.col -= 1;
        }
        self.src[start..end].to_string()
    }
}

/// True for characters that may start a name (variable names, prefixes,
/// local parts). Multi-byte UTF-8 lead bytes are accepted so that
/// internationalized names in real logs tokenize.
fn is_name_start_char(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for characters that may continue a name.
fn is_name_char(b: u8) -> bool {
    is_name_start_char(b) || b.is_ascii_digit() || b == b'-'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT ?x WHERE { ?x a <http://example.org/C> . }");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Var("x".into()),
                Token::Keyword(Keyword::Where),
                Token::LBrace,
                Token::Var("x".into()),
                Token::A,
                Token::IriRef("http://example.org/C".into()),
                Token::Dot,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn distinguishes_iri_from_less_than() {
        let t = toks("FILTER(?x < 5)");
        assert!(t.contains(&Token::Less));
        let t = toks("?s <http://p> ?o");
        assert!(t.contains(&Token::IriRef("http://p".into())));
    }

    #[test]
    fn lexes_prefixed_names_and_empty_prefix() {
        let t = toks("foaf:name :local wdt:P31");
        assert_eq!(
            t,
            vec![
                Token::PrefixedName("foaf".into(), "name".into()),
                Token::PrefixedName("".into(), "local".into()),
                Token::PrefixedName("wdt".into(), "P31".into()),
            ]
        );
    }

    #[test]
    fn prefixed_name_trailing_dot_is_triple_terminator() {
        let t = toks("?s foaf:knows foaf:Person.");
        assert_eq!(t.last(), Some(&Token::Dot));
        assert_eq!(t[2], Token::PrefixedName("foaf".into(), "Person".into()));
    }

    #[test]
    fn lexes_strings_and_lang_tags_and_datatypes() {
        let t = toks(r#""hello"@en "1"^^xsd:integer 'x' """long "quote" ok""""#);
        assert_eq!(t[0], Token::String("hello".into()));
        assert_eq!(t[1], Token::LangTag("en".into()));
        assert_eq!(t[2], Token::String("1".into()));
        assert_eq!(t[3], Token::DoubleCaret);
        assert_eq!(t[5], Token::String("x".into()));
        assert_eq!(t[6], Token::String("long \"quote\" ok".into()));
    }

    #[test]
    fn lexes_escapes() {
        let t = toks(r#""a\tb\n\"cA""#);
        assert_eq!(t[0], Token::String("a\tb\n\"cA".into()));
    }

    #[test]
    fn lexes_numbers() {
        let t = toks("1 2.5 .5 3e10 1.0E-2");
        assert_eq!(
            t,
            vec![
                Token::Integer("1".into()),
                Token::Decimal("2.5".into()),
                Token::Decimal(".5".into()),
                Token::Double("3e10".into()),
                Token::Double("1.0E-2".into()),
            ]
        );
    }

    #[test]
    fn number_followed_by_triple_dot() {
        let t = toks("?x :p 1 . ?y :q 2.");
        assert_eq!(t[3], Token::Dot);
        assert_eq!(t[6], Token::Integer("2".into()));
        assert_eq!(t[7], Token::Dot);
    }

    #[test]
    fn lexes_question_mark_as_path_modifier_when_not_var() {
        let t = toks("?s foaf:knows? ?o");
        assert_eq!(t[0], Token::Var("s".into()));
        assert_eq!(t[2], Token::Question);
        assert_eq!(t[3], Token::Var("o".into()));
    }

    #[test]
    fn lexes_nil_and_anon() {
        assert_eq!(toks("( ) [ ]"), vec![Token::Nil, Token::Anon]);
        assert_eq!(
            toks("(1)"),
            vec![Token::LParen, Token::Integer("1".into()), Token::RParen]
        );
    }

    #[test]
    fn lexes_blank_node_labels() {
        let t = toks("_:b0 _:x1.");
        assert_eq!(t[0], Token::BlankNodeLabel("b0".into()));
        assert_eq!(t[1], Token::BlankNodeLabel("x1".into()));
        assert_eq!(t[2], Token::Dot);
    }

    #[test]
    fn skips_comments() {
        let t = toks("SELECT ?x # a comment\nWHERE { }");
        assert_eq!(t[2], Token::Keyword(Keyword::Where));
    }

    #[test]
    fn operators_and_comparisons() {
        let t = toks("&& || != <= >= = ! ^ ^^ | / * + -");
        assert_eq!(
            t,
            vec![
                Token::AndAnd,
                Token::OrOr,
                Token::NotEqual,
                Token::LessEq,
                Token::GreaterEq,
                Token::Equal,
                Token::Bang,
                Token::Caret,
                Token::DoubleCaret,
                Token::Pipe,
                Token::Slash,
                Token::Star,
                Token::Plus,
                Token::Minus,
            ]
        );
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(tokenize("SELECT ?x WHERE { ?x :p \"oops }").is_err());
    }

    #[test]
    fn errors_on_http_request_line() {
        // Typical garbage entry in endpoint logs.
        assert!(tokenize("GET /sparql?query=SELECT%20?x HTTP/1.1\"").is_err());
    }

    #[test]
    fn escaped_multibyte_character_does_not_panic() {
        // A backslash followed by a multi-byte character must not split the
        // string at a non-boundary (regression test found by proptest).
        let t = toks("\"a\\ü b\"");
        assert_eq!(t[0], Token::String("a\\ü b".into()));
        // Stray escapes in garbage input may be rejected but must not panic.
        let _ = tokenize("q\\🂡\"unterminated");
    }

    #[test]
    fn unicode_in_names_and_strings() {
        let t = toks("?süd :größe \"köln\"");
        assert_eq!(t[0], Token::Var("süd".into()));
        assert_eq!(t[2], Token::String("köln".into()));
    }

    #[test]
    fn reports_line_and_column() {
        let spanned = tokenize("SELECT ?x\nWHERE { ?x a ?y }").unwrap();
        let where_tok = &spanned[2];
        assert_eq!(where_tok.line, 2);
        assert_eq!(where_tok.column, 1);
    }
}
