//! A hand-written zero-copy lexer for SPARQL 1.1 queries.
//!
//! The lexer converts a query string into a stream of [`Spanned`] tokens
//! whose payloads *borrow* the input — no per-token `String` is ever
//! materialized. Token bodies (IRI references, names, digit runs, string
//! payloads, whitespace) are scanned a machine word at a time through the
//! SWAR classifiers in [`bytescan`]; only the byte that
//! *ends* a run gets per-byte attention. The token buffer itself lives in
//! the caller's [`Arena`], so steady-state tokenization performs no global
//! allocation at all. The single exception is an escape-bearing string
//! literal: its payload falls back to an unescape into a transient `Cow`
//! whose owned form is materialized into the arena.
//!
//! It handles the context-sensitive parts of the SPARQL token grammar that
//! make naive tokenization fail on real query logs:
//!
//! * `<…>` is an IRI reference only if it closes before a forbidden character;
//!   otherwise `<` is the less-than operator.
//! * `?` introduces a variable only when followed by a name character;
//!   otherwise it is the zero-or-one path modifier.
//! * `.` terminates triples but also appears inside decimal literals and
//!   prefixed-name local parts.
//! * comments (`# …`) and all four string quoting styles are supported.

use crate::arena::{Arena, ArenaVec};
use crate::bytescan;
use crate::error::{ErrorKind, ParseError, Result};
use crate::token::{Keyword, Spanned, Token};
use std::borrow::Cow;

/// Tokenizes `input` into a stream of spanned tokens allocated in (and
/// borrowing) `arena`.
///
/// Returns an error on malformed lexical constructs (unterminated strings or
/// IRIs, stray characters). The corpus pipeline treats such entries as invalid
/// queries.
pub fn tokenize_in<'a>(input: &'a str, arena: &'a Arena) -> Result<&'a [Spanned<'a>]> {
    tokenize_in_limited(input, arena, 0)
}

/// [`tokenize_in`] with a token-count cap: an entry producing more than
/// `max_tokens` tokens fails with [`ErrorKind::OversizeEntry`] instead of
/// growing the token buffer without bound. `0` disables the cap.
pub fn tokenize_in_limited<'a>(
    input: &'a str,
    arena: &'a Arena,
    max_tokens: usize,
) -> Result<&'a [Spanned<'a>]> {
    Lexer::new(input, arena, max_tokens).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    arena: &'a Arena,
    pos: usize,
    line: u32,
    /// Byte offset where the current line starts; columns are derived from
    /// it instead of being bumped per byte.
    line_start: usize,
    /// Token-count cap (`0` = unlimited).
    max_tokens: usize,
    out: ArenaVec<'a, Spanned<'a>>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, arena: &'a Arena, max_tokens: usize) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            arena,
            pos: 0,
            line: 1,
            line_start: 0,
            max_tokens,
            out: ArenaVec::new(arena),
        }
    }

    /// 1-based column of the current position (in bytes, like the original
    /// per-byte lexer counted).
    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::with_kind(ErrorKind::Lex, msg, self.line, self.col())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances to `to`, a position known to share the current line (the
    /// skipped region contains no `\n`).
    fn advance_in_line(&mut self, to: usize) {
        debug_assert!(!self.bytes[self.pos..to].contains(&b'\n'));
        self.pos = to;
    }

    /// Advances to `to`, folding any newlines in the skipped region into
    /// the line/column bookkeeping.
    fn advance_counting(&mut self, to: usize) {
        let (count, last) = bytescan::count_newlines(&self.bytes[self.pos..to]);
        if count > 0 {
            self.line += count;
            self.line_start = self.pos + last.expect("count > 0 implies a position") + 1;
        }
        self.pos = to;
    }

    /// Advances over one byte that may be a newline (the slow string path).
    fn bump_byte(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn push(&mut self, token: Token<'a>, offset: usize, line: u32, column: u32) {
        self.out.push(Spanned {
            token,
            offset,
            line,
            column,
        });
    }

    /// Skips whitespace runs (word-at-a-time) and `# …` comments.
    fn skip_trivia(&mut self) {
        loop {
            let end = bytescan::skip_whitespace(self.bytes, self.pos);
            self.advance_counting(end);
            if self.peek() == Some(b'#') {
                // The newline stays unconsumed; the next whitespace skip
                // accounts for it.
                match bytescan::find_newline(&self.bytes[self.pos..]) {
                    Some(off) => self.advance_in_line(self.pos + off),
                    None => self.pos = self.bytes.len(),
                }
            } else {
                return;
            }
        }
    }

    fn run(mut self) -> Result<&'a [Spanned<'a>]> {
        loop {
            self.skip_trivia();
            let (offset, line, col) = (self.pos, self.line, self.col());
            let Some(b) = self.peek() else { break };
            let token = match b {
                b'{' => {
                    self.pos += 1;
                    Token::LBrace
                }
                b'}' => {
                    self.pos += 1;
                    Token::RBrace
                }
                b'(' => {
                    self.pos += 1;
                    // NIL: '(' WS* ')'
                    let save = (self.pos, self.line, self.line_start);
                    self.skip_trivia();
                    if self.peek() == Some(b')') {
                        self.pos += 1;
                        Token::Nil
                    } else {
                        (self.pos, self.line, self.line_start) = save;
                        Token::LParen
                    }
                }
                b')' => {
                    self.pos += 1;
                    Token::RParen
                }
                b'[' => {
                    self.pos += 1;
                    let save = (self.pos, self.line, self.line_start);
                    self.skip_trivia();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        Token::Anon
                    } else {
                        (self.pos, self.line, self.line_start) = save;
                        Token::LBracket
                    }
                }
                b']' => {
                    self.pos += 1;
                    Token::RBracket
                }
                b',' => {
                    self.pos += 1;
                    Token::Comma
                }
                b';' => {
                    self.pos += 1;
                    Token::Semicolon
                }
                b'|' => {
                    self.pos += 1;
                    if self.peek() == Some(b'|') {
                        self.pos += 1;
                        Token::OrOr
                    } else {
                        Token::Pipe
                    }
                }
                b'&' => {
                    self.pos += 1;
                    if self.peek() == Some(b'&') {
                        self.pos += 1;
                        Token::AndAnd
                    } else {
                        return Err(self.error("stray '&'"));
                    }
                }
                b'/' => {
                    self.pos += 1;
                    Token::Slash
                }
                b'^' => {
                    self.pos += 1;
                    if self.peek() == Some(b'^') {
                        self.pos += 1;
                        Token::DoubleCaret
                    } else {
                        Token::Caret
                    }
                }
                b'*' => {
                    self.pos += 1;
                    Token::Star
                }
                b'+' => {
                    self.pos += 1;
                    Token::Plus
                }
                b'-' => {
                    self.pos += 1;
                    Token::Minus
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        Token::NotEqual
                    } else {
                        Token::Bang
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Token::Equal
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        Token::GreaterEq
                    } else {
                        Token::Greater
                    }
                }
                b'<' => self.lex_lt_or_iri(),
                b'.' => {
                    // Decimal like ".5" is valid; otherwise a Dot.
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number()?
                    } else {
                        self.pos += 1;
                        Token::Dot
                    }
                }
                b'?' | b'$' => {
                    if self.peek_at(1).is_some_and(bytescan::is_name_start_char) {
                        self.lex_var()
                    } else {
                        self.pos += 1;
                        Token::Question
                    }
                }
                b'"' | b'\'' => self.lex_string()?,
                b'@' => self.lex_lang_tag()?,
                b'_' if self.peek_at(1) == Some(b':') => self.lex_blank_node()?,
                b'0'..=b'9' => self.lex_number()?,
                _ if bytescan::is_name_start_char(b) || b == b':' => self.lex_word()?,
                other => {
                    return Err(self.error(format!("unexpected character '{}'", other as char)))
                }
            };
            self.push(token, offset, line, col);
            if self.max_tokens > 0 && self.out.len() > self.max_tokens {
                return Err(ParseError::with_kind(
                    ErrorKind::OversizeEntry,
                    format!("entry exceeds the {}-token cap", self.max_tokens),
                    line,
                    col,
                ));
            }
        }
        Ok(self.out.finish())
    }

    /// Lexes either an IRI reference `<…>` or the `<` / `<=` operators. The
    /// IRI body — the longest token class in real logs — is scanned
    /// word-at-a-time for its terminator.
    fn lex_lt_or_iri(&mut self) -> Token<'a> {
        let body_end = bytescan::scan_iri_body(self.bytes, self.pos + 1);
        if self.bytes.get(body_end) == Some(&b'>') {
            let iri = &self.src[self.pos + 1..body_end];
            // IRI bodies stop at control bytes, so no newline was crossed.
            self.advance_in_line(body_end + 1);
            Token::IriRef(iri)
        } else {
            self.pos += 1;
            if self.peek() == Some(b'=') {
                self.pos += 1;
                Token::LessEq
            } else {
                Token::Less
            }
        }
    }

    fn lex_var(&mut self) -> Token<'a> {
        self.pos += 1; // sigil
        let start = self.pos;
        let end = bytescan::scan_name(self.bytes, start);
        self.advance_in_line(end);
        Token::Var(&self.src[start..end])
    }

    fn lex_blank_node(&mut self) -> Result<Token<'a>> {
        self.pos += 2; // '_:'
        let start = self.pos;
        let mut end = start;
        loop {
            end = bytescan::scan_name(self.bytes, end);
            if self.bytes.get(end) == Some(&b'.') {
                end += 1;
            } else {
                break;
            }
        }
        // Re-emit trailing dots as Dot tokens by stopping before them.
        while end > start && self.bytes[end - 1] == b'.' {
            end -= 1;
        }
        if end == start {
            return Err(self.error("empty blank node label"));
        }
        self.advance_in_line(end);
        Ok(Token::BlankNodeLabel(&self.src[start..end]))
    }

    fn lex_lang_tag(&mut self) -> Result<Token<'a>> {
        self.pos += 1; // '@'
        let start = self.pos;
        let mut end = start;
        while self
            .bytes
            .get(end)
            .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'-')
        {
            end += 1;
        }
        if end == start {
            return Err(self.error("empty language tag"));
        }
        self.advance_in_line(end);
        Ok(Token::LangTag(&self.src[start..end]))
    }

    fn lex_number(&mut self) -> Result<Token<'a>> {
        let start = self.pos;
        let mut has_dot = false;
        let mut has_exp = false;
        loop {
            self.pos = bytescan::scan_digits(self.bytes, self.pos);
            match self.peek() {
                Some(b'.') if !has_dot && !has_exp => {
                    // A '.' is part of the number only if followed by a digit
                    // or an exponent; "1." followed by whitespace terminates a
                    // triple in practice (e.g. "?x :p 1.").
                    if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        has_dot = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(b'e' | b'E') if !has_exp => {
                    has_exp = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if text.is_empty() {
            return Err(self.error("malformed numeric literal"));
        }
        Ok(if has_exp {
            Token::Double(text)
        } else if has_dot {
            Token::Decimal(text)
        } else {
            Token::Integer(text)
        })
    }

    fn lex_string(&mut self) -> Result<Token<'a>> {
        let quote = self.peek().expect("caller checked");
        // Detect long quote form (''' or """).
        let long = self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote);
        self.pos += if long { 3 } else { 1 };
        let content_start = self.pos;
        // Fast path: scan word-at-a-time over plain payload. As long as no
        // backslash shows up, the value is exactly an input slice — borrow
        // it. Lone quote characters inside a long string stay plain payload.
        loop {
            let special = bytescan::scan_string_plain(self.bytes, self.pos, quote, !long);
            if long {
                self.advance_counting(special);
            } else {
                self.advance_in_line(special);
            }
            match self.bytes.get(special).copied() {
                None => return Err(self.error("unterminated string literal")),
                Some(c) if c == quote => {
                    if long {
                        if self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote) {
                            let value = &self.src[content_start..self.pos];
                            self.pos += 3;
                            return Ok(Token::String(value));
                        }
                        self.pos += 1; // lone quote: part of the payload
                    } else {
                        let value = &self.src[content_start..self.pos];
                        self.pos += 1;
                        return Ok(Token::String(value));
                    }
                }
                Some(b'\\') => {
                    // Escape-bearing literal: fall back to unescaping into
                    // an owned buffer seeded with the borrowed prefix.
                    let prefix = &self.src[content_start..self.pos];
                    let value = self.lex_string_escaped(quote, long, prefix)?;
                    return Ok(Token::String(match value {
                        Cow::Borrowed(s) => s,
                        Cow::Owned(s) => self.arena.alloc_str(&s),
                    }));
                }
                Some(_) => return Err(self.error("newline in short string literal")),
            }
        }
    }

    /// The slow path for string literals containing at least one backslash:
    /// processes escapes per character into an owned value (returned as
    /// `Cow::Owned`; the caller materializes it into the arena).
    fn lex_string_escaped(&mut self, quote: u8, long: bool, prefix: &str) -> Result<Cow<'a, str>> {
        let mut value = String::with_capacity(prefix.len() + 16);
        value.push_str(prefix);
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string literal"));
            };
            if c == quote {
                if long {
                    if self.peek_at(1) == Some(quote) && self.peek_at(2) == Some(quote) {
                        self.pos += 3;
                        break;
                    }
                    value.push(c as char);
                    self.pos += 1;
                } else {
                    self.pos += 1;
                    break;
                }
            } else if c == b'\\' {
                self.pos += 1;
                let Some(esc) = self.src[self.pos..].chars().next() else {
                    return Err(self.error("unterminated escape sequence"));
                };
                for _ in 0..esc.len_utf8() {
                    self.bump_byte();
                }
                match esc {
                    't' => value.push('\t'),
                    'n' => value.push('\n'),
                    'r' => value.push('\r'),
                    'b' => value.push('\u{8}'),
                    'f' => value.push('\u{c}'),
                    '"' => value.push('"'),
                    '\'' => value.push('\''),
                    '\\' => value.push('\\'),
                    'u' | 'U' => {
                        let len = if esc == 'u' { 4 } else { 8 };
                        let mut code = 0u32;
                        for _ in 0..len {
                            let Some(h) = self.bump_byte() else {
                                return Err(self.error("truncated unicode escape"));
                            };
                            let d = (h as char)
                                .to_digit(16)
                                .ok_or_else(|| self.error("invalid unicode escape"))?;
                            code = code * 16 + d;
                        }
                        value.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        // Be lenient: real logs contain sloppy escapes.
                        value.push('\\');
                        value.push(other);
                    }
                }
            } else if !long && (c == b'\n' || c == b'\r') {
                return Err(self.error("newline in short string literal"));
            } else {
                // Copy a plain run up to the next special byte in one go.
                let special = bytescan::scan_string_plain(self.bytes, self.pos, quote, !long);
                value.push_str(&self.src[self.pos..special]);
                if long {
                    self.advance_counting(special);
                } else {
                    self.advance_in_line(special);
                }
            }
        }
        Ok(Cow::Owned(value))
    }

    /// Lexes an identifier-like word: a keyword, the `a` predicate, a boolean,
    /// a bare built-in name, or a prefixed name (when a ':' follows).
    fn lex_word(&mut self) -> Result<Token<'a>> {
        let start = self.pos;
        // Leading ':' means a prefixed name with the empty prefix.
        if self.peek() == Some(b':') {
            self.pos += 1;
            let local = self.lex_local_part();
            return Ok(Token::PrefixedName("", local));
        }
        // The prefix part stops at '.' (prefixes rarely contain dots; a dot
        // re-lexes as punctuation), which is exactly the name-run class.
        let end = bytescan::scan_name(self.bytes, start);
        self.advance_in_line(end);
        let word = &self.src[start..end];
        if self.peek() == Some(b':') {
            // Prefixed name.
            self.pos += 1;
            let local = self.lex_local_part();
            return Ok(Token::PrefixedName(word, local));
        }
        if word == "a" {
            return Ok(Token::A);
        }
        if word.eq_ignore_ascii_case("true") {
            return Ok(Token::Boolean(true));
        }
        if word.eq_ignore_ascii_case("false") {
            return Ok(Token::Boolean(false));
        }
        if let Some(kw) = Keyword::from_str_ci(word) {
            return Ok(Token::Keyword(kw));
        }
        if word.is_empty() {
            return Err(self.error("unexpected ':'"));
        }
        Ok(Token::Ident(word))
    }

    fn lex_local_part(&mut self) -> &'a str {
        let start = self.pos;
        let mut end = bytescan::scan_local(self.bytes, start);
        // A trailing '.' belongs to the surrounding triple, not the name.
        while end > start && self.bytes[end - 1] == b'.' {
            end -= 1;
        }
        self.advance_in_line(end);
        &self.src[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks<'a>(arena: &'a Arena, s: &'a str) -> Vec<Token<'a>> {
        tokenize_in(s, arena)
            .unwrap()
            .iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let arena = Arena::new();
        let t = toks(&arena, "SELECT ?x WHERE { ?x a <http://example.org/C> . }");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Var("x"),
                Token::Keyword(Keyword::Where),
                Token::LBrace,
                Token::Var("x"),
                Token::A,
                Token::IriRef("http://example.org/C"),
                Token::Dot,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn distinguishes_iri_from_less_than() {
        let arena = Arena::new();
        let t = toks(&arena, "FILTER(?x < 5)");
        assert!(t.contains(&Token::Less));
        let t = toks(&arena, "?s <http://p> ?o");
        assert!(t.contains(&Token::IriRef("http://p")));
    }

    #[test]
    fn lexes_prefixed_names_and_empty_prefix() {
        let arena = Arena::new();
        let t = toks(&arena, "foaf:name :local wdt:P31");
        assert_eq!(
            t,
            vec![
                Token::PrefixedName("foaf", "name"),
                Token::PrefixedName("", "local"),
                Token::PrefixedName("wdt", "P31"),
            ]
        );
    }

    #[test]
    fn prefixed_name_trailing_dot_is_triple_terminator() {
        let arena = Arena::new();
        let t = toks(&arena, "?s foaf:knows foaf:Person.");
        assert_eq!(t.last(), Some(&Token::Dot));
        assert_eq!(t[2], Token::PrefixedName("foaf", "Person"));
    }

    #[test]
    fn lexes_strings_and_lang_tags_and_datatypes() {
        let arena = Arena::new();
        let t = toks(
            &arena,
            r#""hello"@en "1"^^xsd:integer 'x' """long "quote" ok""""#,
        );
        assert_eq!(t[0], Token::String("hello"));
        assert_eq!(t[1], Token::LangTag("en"));
        assert_eq!(t[2], Token::String("1"));
        assert_eq!(t[3], Token::DoubleCaret);
        assert_eq!(t[5], Token::String("x"));
        assert_eq!(t[6], Token::String("long \"quote\" ok"));
    }

    #[test]
    fn lexes_escapes() {
        let arena = Arena::new();
        let t = toks(&arena, r#""a\tb\n\"cA""#);
        assert_eq!(t[0], Token::String("a\tb\n\"cA"));
    }

    #[test]
    fn escape_after_long_plain_prefix_keeps_the_prefix() {
        // The borrowed fast path must seed the owned value correctly when
        // the first backslash appears beyond one SWAR stride.
        let arena = Arena::new();
        let t = toks(&arena, r#""0123456789 abcdefghijk \t tail""#);
        assert_eq!(t[0], Token::String("0123456789 abcdefghijk \t tail"));
    }

    #[test]
    fn lexes_numbers() {
        let arena = Arena::new();
        let t = toks(&arena, "1 2.5 .5 3e10 1.0E-2");
        assert_eq!(
            t,
            vec![
                Token::Integer("1"),
                Token::Decimal("2.5"),
                Token::Decimal(".5"),
                Token::Double("3e10"),
                Token::Double("1.0E-2"),
            ]
        );
    }

    #[test]
    fn number_followed_by_triple_dot() {
        let arena = Arena::new();
        let t = toks(&arena, "?x :p 1 . ?y :q 2.");
        assert_eq!(t[3], Token::Dot);
        assert_eq!(t[6], Token::Integer("2"));
        assert_eq!(t[7], Token::Dot);
    }

    #[test]
    fn lexes_question_mark_as_path_modifier_when_not_var() {
        let arena = Arena::new();
        let t = toks(&arena, "?s foaf:knows? ?o");
        assert_eq!(t[0], Token::Var("s"));
        assert_eq!(t[2], Token::Question);
        assert_eq!(t[3], Token::Var("o"));
    }

    #[test]
    fn lexes_nil_and_anon() {
        let arena = Arena::new();
        assert_eq!(toks(&arena, "( ) [ ]"), vec![Token::Nil, Token::Anon]);
        assert_eq!(
            toks(&arena, "(1)"),
            vec![Token::LParen, Token::Integer("1"), Token::RParen]
        );
    }

    #[test]
    fn lexes_blank_node_labels() {
        let arena = Arena::new();
        let t = toks(&arena, "_:b0 _:x1.");
        assert_eq!(t[0], Token::BlankNodeLabel("b0"));
        assert_eq!(t[1], Token::BlankNodeLabel("x1"));
        assert_eq!(t[2], Token::Dot);
    }

    #[test]
    fn skips_comments() {
        let arena = Arena::new();
        let t = toks(&arena, "SELECT ?x # a comment\nWHERE { }");
        assert_eq!(t[2], Token::Keyword(Keyword::Where));
    }

    #[test]
    fn operators_and_comparisons() {
        let arena = Arena::new();
        let t = toks(&arena, "&& || != <= >= = ! ^ ^^ | / * + -");
        assert_eq!(
            t,
            vec![
                Token::AndAnd,
                Token::OrOr,
                Token::NotEqual,
                Token::LessEq,
                Token::GreaterEq,
                Token::Equal,
                Token::Bang,
                Token::Caret,
                Token::DoubleCaret,
                Token::Pipe,
                Token::Slash,
                Token::Star,
                Token::Plus,
                Token::Minus,
            ]
        );
    }

    #[test]
    fn errors_on_unterminated_string() {
        let arena = Arena::new();
        assert!(tokenize_in("SELECT ?x WHERE { ?x :p \"oops }", &arena).is_err());
    }

    #[test]
    fn errors_on_http_request_line() {
        // Typical garbage entry in endpoint logs.
        let arena = Arena::new();
        assert!(tokenize_in("GET /sparql?query=SELECT%20?x HTTP/1.1\"", &arena).is_err());
    }

    #[test]
    fn escaped_multibyte_character_does_not_panic() {
        // A backslash followed by a multi-byte character must not split the
        // string at a non-boundary (regression test found by proptest).
        let arena = Arena::new();
        let t = toks(&arena, "\"a\\ü b\"");
        assert_eq!(t[0], Token::String("a\\ü b"));
        // Stray escapes in garbage input may be rejected but must not panic.
        let _ = tokenize_in("q\\🂡\"unterminated", &arena);
    }

    #[test]
    fn unicode_in_names_and_strings() {
        let arena = Arena::new();
        let t = toks(&arena, "?süd :größe \"köln\"");
        assert_eq!(t[0], Token::Var("süd"));
        assert_eq!(t[2], Token::String("köln"));
    }

    #[test]
    fn long_string_with_newlines_keeps_line_numbers_straight() {
        let arena = Arena::new();
        let spanned = tokenize_in("\"\"\"line one\nline two\n\"\"\" ?x", &arena).unwrap();
        assert_eq!(spanned[0].token, Token::String("line one\nline two\n"));
        let var = &spanned[1];
        assert_eq!(var.token, Token::Var("x"));
        assert_eq!(var.line, 3);
        assert_eq!(var.column, 5);
    }

    #[test]
    fn reports_line_and_column() {
        let arena = Arena::new();
        let spanned = tokenize_in("SELECT ?x\nWHERE { ?x a ?y }", &arena).unwrap();
        let where_tok = &spanned[2];
        assert_eq!(where_tok.line, 2);
        assert_eq!(where_tok.column, 1);
    }
}
