//! Token definitions produced by the [`lexer`](crate::lexer).
//!
//! Tokens are **zero-copy**: every textual payload is a `&'src str` slice
//! borrowing either the query input or, for the rare escape-bearing string
//! literal, the arena the lexer unescaped it into. `Token` is `Copy`, so the
//! token buffer itself can live in the same arena and the whole
//! tokenization of a query touches the global allocator zero times.

use std::fmt;

/// A structural SPARQL keyword.
///
/// Keywords are case-insensitive in SPARQL; the lexer normalizes them to this
/// enum. Identifiers that are not structural keywords (e.g. built-in function
/// names such as `LANG` or `REGEX`) are lexed as [`Token::Ident`] instead so
/// the expression parser can treat them uniformly as function calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants mirror the SPARQL keywords one-to-one
pub enum Keyword {
    Base,
    Prefix,
    Select,
    Ask,
    Construct,
    Describe,
    Where,
    From,
    Named,
    Distinct,
    Reduced,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Offset,
    Group,
    Having,
    Optional,
    Union,
    Filter,
    Graph,
    Minus,
    Bind,
    As,
    Values,
    Service,
    Silent,
    Undef,
    Exists,
    Not,
    In,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Sample,
    GroupConcat,
    Separator,
}

impl Keyword {
    /// Looks up a structural keyword from a raw (case-insensitive)
    /// identifier, without allocating: candidates are pre-bucketed by
    /// length, then byte-compared case-insensitively in place (the old
    /// implementation built an uppercased `String` per identifier — on the
    /// hot parse path, one heap round-trip for every word in every query).
    pub fn from_str_ci(s: &str) -> Option<Keyword> {
        const CANDIDATES_BY_LEN: [&[(&str, Keyword)]; 13] = [
            &[],
            &[],
            &[
                ("BY", Keyword::By),
                ("AS", Keyword::As),
                ("IN", Keyword::In),
            ],
            &[
                ("ASK", Keyword::Ask),
                ("ASC", Keyword::Asc),
                ("NOT", Keyword::Not),
                ("SUM", Keyword::Sum),
                ("MIN", Keyword::Min),
                ("MAX", Keyword::Max),
                ("AVG", Keyword::Avg),
            ],
            &[
                ("BASE", Keyword::Base),
                ("FROM", Keyword::From),
                ("DESC", Keyword::Desc),
                ("BIND", Keyword::Bind),
            ],
            &[
                ("WHERE", Keyword::Where),
                ("NAMED", Keyword::Named),
                ("ORDER", Keyword::Order),
                ("LIMIT", Keyword::Limit),
                ("GROUP", Keyword::Group),
                ("UNION", Keyword::Union),
                ("GRAPH", Keyword::Graph),
                ("MINUS", Keyword::Minus),
                ("UNDEF", Keyword::Undef),
                ("COUNT", Keyword::Count),
            ],
            &[
                ("PREFIX", Keyword::Prefix),
                ("SELECT", Keyword::Select),
                ("OFFSET", Keyword::Offset),
                ("HAVING", Keyword::Having),
                ("FILTER", Keyword::Filter),
                ("VALUES", Keyword::Values),
                ("SILENT", Keyword::Silent),
                ("EXISTS", Keyword::Exists),
                ("SAMPLE", Keyword::Sample),
            ],
            &[("REDUCED", Keyword::Reduced), ("SERVICE", Keyword::Service)],
            &[
                ("DESCRIBE", Keyword::Describe),
                ("DISTINCT", Keyword::Distinct),
                ("OPTIONAL", Keyword::Optional),
            ],
            &[
                ("CONSTRUCT", Keyword::Construct),
                ("SEPARATOR", Keyword::Separator),
            ],
            &[],
            &[],
            &[("GROUP_CONCAT", Keyword::GroupConcat)],
        ];
        let bucket = CANDIDATES_BY_LEN.get(s.len())?;
        bucket
            .iter()
            .find(|(name, _)| s.eq_ignore_ascii_case(name))
            .map(|&(_, keyword)| keyword)
    }
}

/// A single lexical token together with its kind-specific payload.
///
/// Payloads borrow the source string (`'src`); escape-bearing string
/// literals borrow the lexer's arena instead. The type is `Copy` so token
/// buffers can be arena-resident.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // punctuation variants are self-describing
pub enum Token<'src> {
    /// A structural keyword such as `SELECT` or `FILTER`.
    Keyword(Keyword),
    /// A non-structural identifier (built-in function names, e.g. `lang`).
    Ident(&'src str),
    /// The keyword `a` used as a predicate abbreviation for `rdf:type`.
    A,
    /// An IRI reference written in angle brackets, e.g. `<http://example.org/>`.
    /// The payload excludes the brackets.
    IriRef(&'src str),
    /// A prefixed name, split into (prefix, local part). `foaf:name` becomes
    /// `("foaf", "name")`; `:x` becomes `("", "x")`.
    PrefixedName(&'src str, &'src str),
    /// A prefix declaration namespace token, e.g. `foaf:` in a PREFIX clause.
    /// Lexed identically to [`Token::PrefixedName`] with an empty local part.
    /// (Kept distinct only conceptually; the lexer emits `PrefixedName`.)
    /// A variable, `?x` or `$x` — payload excludes the sigil.
    Var(&'src str),
    /// A blank node label `_:b0` — payload excludes the `_:` sigil.
    BlankNodeLabel(&'src str),
    /// A string literal, with quotes/escapes already processed. Escape-free
    /// literals borrow the input; escape-bearing ones borrow the arena copy
    /// the lexer unescaped into.
    String(&'src str),
    /// An integer literal (kept as text to preserve the original form).
    Integer(&'src str),
    /// A decimal literal.
    Decimal(&'src str),
    /// A double (floating point with exponent) literal.
    Double(&'src str),
    /// A boolean literal.
    Boolean(bool),
    /// A language tag following a string literal, e.g. `@en` (without `@`).
    LangTag(&'src str),
    /// `^^` datatype marker.
    DoubleCaret,
    /// `(` / `)`.
    LParen,
    RParen,
    /// `{` / `}`.
    LBrace,
    RBrace,
    /// `[` / `]`.
    LBracket,
    RBracket,
    /// `()` empty collection / NIL.
    Nil,
    /// `[]` anonymous blank node.
    Anon,
    /// `.` `,` `;`
    Dot,
    Comma,
    Semicolon,
    /// Property path / arithmetic operators.
    Pipe,
    Slash,
    Caret,
    Star,
    Plus,
    Minus,
    Question,
    Bang,
    /// Comparison / logic.
    Equal,
    NotEqual,
    Less,
    Greater,
    LessEq,
    GreaterEq,
    AndAnd,
    OrOr,
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::A => write!(f, "a"),
            Token::IriRef(i) => write!(f, "<{i}>"),
            Token::PrefixedName(p, l) => write!(f, "{p}:{l}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::BlankNodeLabel(b) => write!(f, "_:{b}"),
            Token::String(s) => write!(f, "{s:?}"),
            Token::Integer(s) | Token::Decimal(s) | Token::Double(s) => write!(f, "{s}"),
            Token::Boolean(b) => write!(f, "{b}"),
            Token::LangTag(t) => write!(f, "@{t}"),
            Token::DoubleCaret => write!(f, "^^"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Nil => write!(f, "()"),
            Token::Anon => write!(f, "[]"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Pipe => write!(f, "|"),
            Token::Slash => write!(f, "/"),
            Token::Caret => write!(f, "^"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Question => write!(f, "?"),
            Token::Bang => write!(f, "!"),
            Token::Equal => write!(f, "="),
            Token::NotEqual => write!(f, "!="),
            Token::Less => write!(f, "<"),
            Token::Greater => write!(f, ">"),
            Token::LessEq => write!(f, "<="),
            Token::GreaterEq => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
        }
    }
}

/// A token annotated with its position in the input (byte offset, line, column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spanned<'src> {
    /// The token itself.
    pub token: Token<'src>,
    /// Byte offset of the first character of the token.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_str_ci("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("OPTIONAL"), Some(Keyword::Optional));
        assert_eq!(
            Keyword::from_str_ci("group_concat"),
            Some(Keyword::GroupConcat)
        );
        assert_eq!(Keyword::from_str_ci("lang"), None);
        assert_eq!(Keyword::from_str_ci("regex"), None);
        assert_eq!(Keyword::from_str_ci(""), None);
        assert_eq!(Keyword::from_str_ci("averylongidentifierindeed"), None);
    }

    #[test]
    fn every_keyword_round_trips_through_the_bucketed_lookup() {
        // The length buckets must cover all 40 variants; a variant filed
        // under the wrong length would silently stop lexing as a keyword.
        for keyword in [
            (Keyword::Base, "BASE"),
            (Keyword::Prefix, "PREFIX"),
            (Keyword::Select, "SELECT"),
            (Keyword::Ask, "ASK"),
            (Keyword::Construct, "CONSTRUCT"),
            (Keyword::Describe, "DESCRIBE"),
            (Keyword::Where, "WHERE"),
            (Keyword::From, "FROM"),
            (Keyword::Named, "NAMED"),
            (Keyword::Distinct, "DISTINCT"),
            (Keyword::Reduced, "REDUCED"),
            (Keyword::Order, "ORDER"),
            (Keyword::By, "BY"),
            (Keyword::Asc, "ASC"),
            (Keyword::Desc, "DESC"),
            (Keyword::Limit, "LIMIT"),
            (Keyword::Offset, "OFFSET"),
            (Keyword::Group, "GROUP"),
            (Keyword::Having, "HAVING"),
            (Keyword::Optional, "OPTIONAL"),
            (Keyword::Union, "UNION"),
            (Keyword::Filter, "FILTER"),
            (Keyword::Graph, "GRAPH"),
            (Keyword::Minus, "MINUS"),
            (Keyword::Bind, "BIND"),
            (Keyword::As, "AS"),
            (Keyword::Values, "VALUES"),
            (Keyword::Service, "SERVICE"),
            (Keyword::Silent, "SILENT"),
            (Keyword::Undef, "UNDEF"),
            (Keyword::Exists, "EXISTS"),
            (Keyword::Not, "NOT"),
            (Keyword::In, "IN"),
            (Keyword::Count, "COUNT"),
            (Keyword::Sum, "SUM"),
            (Keyword::Min, "MIN"),
            (Keyword::Max, "MAX"),
            (Keyword::Avg, "AVG"),
            (Keyword::Sample, "SAMPLE"),
            (Keyword::GroupConcat, "GROUP_CONCAT"),
        ] {
            assert_eq!(Keyword::from_str_ci(keyword.1), Some(keyword.0));
            assert_eq!(
                Keyword::from_str_ci(&keyword.1.to_ascii_lowercase()),
                Some(keyword.0)
            );
        }
        assert_eq!(Keyword::from_str_ci("SEPARATOR"), Some(Keyword::Separator));
    }

    #[test]
    fn token_display_roundtrips_punctuation() {
        assert_eq!(Token::DoubleCaret.to_string(), "^^");
        assert_eq!(Token::NotEqual.to_string(), "!=");
        assert_eq!(Token::Nil.to_string(), "()");
        assert_eq!(Token::PrefixedName("foaf", "name").to_string(), "foaf:name");
    }
}
