//! Token definitions produced by the [`lexer`](crate::lexer).

use std::fmt;

/// A structural SPARQL keyword.
///
/// Keywords are case-insensitive in SPARQL; the lexer normalizes them to this
/// enum. Identifiers that are not structural keywords (e.g. built-in function
/// names such as `LANG` or `REGEX`) are lexed as [`Token::Ident`] instead so
/// the expression parser can treat them uniformly as function calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants mirror the SPARQL keywords one-to-one
pub enum Keyword {
    Base,
    Prefix,
    Select,
    Ask,
    Construct,
    Describe,
    Where,
    From,
    Named,
    Distinct,
    Reduced,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Offset,
    Group,
    Having,
    Optional,
    Union,
    Filter,
    Graph,
    Minus,
    Bind,
    As,
    Values,
    Service,
    Silent,
    Undef,
    Exists,
    Not,
    In,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Sample,
    GroupConcat,
    Separator,
}

impl Keyword {
    /// Looks up a structural keyword from a raw (case-insensitive) identifier.
    pub fn from_str_ci(s: &str) -> Option<Keyword> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "BASE" => Keyword::Base,
            "PREFIX" => Keyword::Prefix,
            "SELECT" => Keyword::Select,
            "ASK" => Keyword::Ask,
            "CONSTRUCT" => Keyword::Construct,
            "DESCRIBE" => Keyword::Describe,
            "WHERE" => Keyword::Where,
            "FROM" => Keyword::From,
            "NAMED" => Keyword::Named,
            "DISTINCT" => Keyword::Distinct,
            "REDUCED" => Keyword::Reduced,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "OFFSET" => Keyword::Offset,
            "GROUP" => Keyword::Group,
            "HAVING" => Keyword::Having,
            "OPTIONAL" => Keyword::Optional,
            "UNION" => Keyword::Union,
            "FILTER" => Keyword::Filter,
            "GRAPH" => Keyword::Graph,
            "MINUS" => Keyword::Minus,
            "BIND" => Keyword::Bind,
            "AS" => Keyword::As,
            "VALUES" => Keyword::Values,
            "SERVICE" => Keyword::Service,
            "SILENT" => Keyword::Silent,
            "UNDEF" => Keyword::Undef,
            "EXISTS" => Keyword::Exists,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "AVG" => Keyword::Avg,
            "SAMPLE" => Keyword::Sample,
            "GROUP_CONCAT" => Keyword::GroupConcat,
            "SEPARATOR" => Keyword::Separator,
            _ => return None,
        })
    }
}

/// A single lexical token together with its kind-specific payload.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // punctuation variants are self-describing
pub enum Token {
    /// A structural keyword such as `SELECT` or `FILTER`.
    Keyword(Keyword),
    /// A non-structural identifier (built-in function names, e.g. `lang`).
    Ident(String),
    /// The keyword `a` used as a predicate abbreviation for `rdf:type`.
    A,
    /// An IRI reference written in angle brackets, e.g. `<http://example.org/>`.
    /// The payload excludes the brackets.
    IriRef(String),
    /// A prefixed name, split into (prefix, local part). `foaf:name` becomes
    /// `("foaf", "name")`; `:x` becomes `("", "x")`.
    PrefixedName(String, String),
    /// A prefix declaration namespace token, e.g. `foaf:` in a PREFIX clause.
    /// Lexed identically to [`Token::PrefixedName`] with an empty local part.
    /// (Kept distinct only conceptually; the lexer emits `PrefixedName`.)
    /// A variable, `?x` or `$x` — payload excludes the sigil.
    Var(String),
    /// A blank node label `_:b0` — payload excludes the `_:` sigil.
    BlankNodeLabel(String),
    /// A string literal, with quotes/escapes already processed.
    String(String),
    /// An integer literal (kept as text to preserve the original form).
    Integer(String),
    /// A decimal literal.
    Decimal(String),
    /// A double (floating point with exponent) literal.
    Double(String),
    /// A boolean literal.
    Boolean(bool),
    /// A language tag following a string literal, e.g. `@en` (without `@`).
    LangTag(String),
    /// `^^` datatype marker.
    DoubleCaret,
    /// `(` / `)`.
    LParen,
    RParen,
    /// `{` / `}`.
    LBrace,
    RBrace,
    /// `[` / `]`.
    LBracket,
    RBracket,
    /// `()` empty collection / NIL.
    Nil,
    /// `[]` anonymous blank node.
    Anon,
    /// `.` `,` `;`
    Dot,
    Comma,
    Semicolon,
    /// Property path / arithmetic operators.
    Pipe,
    Slash,
    Caret,
    Star,
    Plus,
    Minus,
    Question,
    Bang,
    /// Comparison / logic.
    Equal,
    NotEqual,
    Less,
    Greater,
    LessEq,
    GreaterEq,
    AndAnd,
    OrOr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::A => write!(f, "a"),
            Token::IriRef(i) => write!(f, "<{i}>"),
            Token::PrefixedName(p, l) => write!(f, "{p}:{l}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::BlankNodeLabel(b) => write!(f, "_:{b}"),
            Token::String(s) => write!(f, "{s:?}"),
            Token::Integer(s) | Token::Decimal(s) | Token::Double(s) => write!(f, "{s}"),
            Token::Boolean(b) => write!(f, "{b}"),
            Token::LangTag(t) => write!(f, "@{t}"),
            Token::DoubleCaret => write!(f, "^^"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Nil => write!(f, "()"),
            Token::Anon => write!(f, "[]"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Pipe => write!(f, "|"),
            Token::Slash => write!(f, "/"),
            Token::Caret => write!(f, "^"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Question => write!(f, "?"),
            Token::Bang => write!(f, "!"),
            Token::Equal => write!(f, "="),
            Token::NotEqual => write!(f, "!="),
            Token::Less => write!(f, "<"),
            Token::Greater => write!(f, ">"),
            Token::LessEq => write!(f, "<="),
            Token::GreaterEq => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
        }
    }
}

/// A token annotated with its position in the input (byte offset, line, column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token itself.
    pub token: Token,
    /// Byte offset of the first character of the token.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_str_ci("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("OPTIONAL"), Some(Keyword::Optional));
        assert_eq!(
            Keyword::from_str_ci("group_concat"),
            Some(Keyword::GroupConcat)
        );
        assert_eq!(Keyword::from_str_ci("lang"), None);
        assert_eq!(Keyword::from_str_ci("regex"), None);
    }

    #[test]
    fn token_display_roundtrips_punctuation() {
        assert_eq!(Token::DoubleCaret.to_string(), "^^");
        assert_eq!(Token::NotEqual.to_string(), "!=");
        assert_eq!(Token::Nil.to_string(), "()");
        assert_eq!(
            Token::PrefixedName("foaf".into(), "name".into()).to_string(),
            "foaf:name"
        );
    }
}
