//! The canonical hypergraph of a graph pattern (Section 5).
//!
//! Every triple pattern contributes the hyperedge consisting of the variables
//! and blank nodes that occur in it (constants are not hypergraph vertices).
//! The hypergraph correctly captures the join structure of queries with
//! variables in predicate position, for which the canonical *graph* is
//! meaningless (Example 5.1 of the paper).

use serde::{Deserialize, Serialize};
use sparqlog_parser::ast::{Term, TriplePattern};
use std::collections::{BTreeMap, BTreeSet};

/// A hypergraph over named vertices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Hypergraph {
    /// Vertex labels.
    pub vertices: Vec<String>,
    /// Hyperedges as sets of vertex indices. Empty edges (fully-constant
    /// triples) are not stored. Duplicate edges are kept (they correspond to
    /// distinct triple patterns) — deduplication happens where appropriate.
    pub edges: Vec<BTreeSet<usize>>,
}

impl Hypergraph {
    /// Builds the canonical hypergraph of a set of triple patterns.
    /// `equalities` lists `?x = ?y` filter pairs that are collapsed.
    pub fn from_triples(triples: &[TriplePattern], equalities: &[(String, String)]) -> Hypergraph {
        let refs: Vec<&TriplePattern> = triples.iter().collect();
        Hypergraph::from_triple_refs(&refs, equalities)
    }

    /// [`Hypergraph::from_triples`] over borrowed triples — the form the
    /// single-pass pipeline uses, where the triples are borrowed from a
    /// pattern tree instead of being cloned.
    pub fn from_triple_refs(
        triples: &[&TriplePattern],
        equalities: &[(String, String)],
    ) -> Hypergraph {
        let mut rename: BTreeMap<String, String> = BTreeMap::new();
        for (a, b) in equalities {
            // Collapse b into a (transitively resolved below).
            rename.insert(format!("?{b}"), format!("?{a}"));
        }
        let resolve = |label: &str, rename: &BTreeMap<String, String>| -> String {
            let mut cur = label.to_string();
            let mut steps = 0;
            while let Some(next) = rename.get(&cur) {
                if *next == cur || steps > rename.len() {
                    break;
                }
                cur = next.clone();
                steps += 1;
            }
            cur
        };

        let mut hg = Hypergraph::default();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for t in triples {
            let mut edge = BTreeSet::new();
            for term in [&t.subject, &t.predicate, &t.object] {
                let label = match term {
                    Term::Var(v) => resolve(&format!("?{v}"), &rename),
                    Term::BlankNode(b) => format!("_:{b}"),
                    _ => continue,
                };
                let id = *index.entry(label.clone()).or_insert_with(|| {
                    hg.vertices.push(label);
                    hg.vertices.len() - 1
                });
                edge.insert(id);
            }
            if !edge.is_empty() {
                hg.edges.push(edge);
            }
        }
        hg
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of hyperedges (including duplicates).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The distinct, non-subsumed hyperedges (edges contained in another edge
    /// are dropped). This is the edge set relevant for decompositions.
    pub fn reduced_edges(&self) -> Vec<BTreeSet<usize>> {
        let mut distinct: Vec<BTreeSet<usize>> = Vec::new();
        for e in &self.edges {
            if !distinct.contains(e) {
                distinct.push(e.clone());
            }
        }
        let mut keep = Vec::new();
        for (i, e) in distinct.iter().enumerate() {
            let subsumed = distinct
                .iter()
                .enumerate()
                .any(|(j, f)| i != j && e.is_subset(f) && (e.len() < f.len() || j < i));
            if !subsumed {
                keep.push(e.clone());
            }
        }
        keep
    }

    /// Tests α-acyclicity with the GYO reduction. An acyclic hypergraph has
    /// generalized hypertree width 1 (provided it has at least one edge).
    pub fn is_acyclic(&self) -> bool {
        let mut edges = self.reduced_edges();
        if edges.len() <= 1 {
            return true;
        }
        loop {
            let mut changed = false;

            // Rule 1: remove vertices that occur in exactly one edge.
            let mut occurrence: BTreeMap<usize, usize> = BTreeMap::new();
            for e in &edges {
                for &v in e {
                    *occurrence.entry(v).or_insert(0) += 1;
                }
            }
            let lonely: BTreeSet<usize> = occurrence
                .iter()
                .filter(|(_, &c)| c == 1)
                .map(|(&v, _)| v)
                .collect();
            if !lonely.is_empty() {
                for e in &mut edges {
                    let before = e.len();
                    e.retain(|v| !lonely.contains(v));
                    if e.len() != before {
                        changed = true;
                    }
                }
            }

            // Rule 2: remove edges that are empty or contained in another edge.
            let before = edges.len();
            let mut kept: Vec<BTreeSet<usize>> = Vec::new();
            for (i, e) in edges.iter().enumerate() {
                if e.is_empty() {
                    continue;
                }
                let subsumed = edges
                    .iter()
                    .enumerate()
                    .any(|(j, f)| i != j && e.is_subset(f) && (e.len() < f.len() || j < i));
                if !subsumed {
                    kept.push(e.clone());
                }
            }
            edges = kept;
            if edges.len() != before {
                changed = true;
            }

            if edges.len() <= 1 {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }

    /// The connected components of the hypergraph, as sets of vertex indices.
    pub fn connected_components(&self) -> Vec<BTreeSet<usize>> {
        let n = self.vertex_count();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for e in &self.edges {
            let mut it = e.iter();
            if let Some(&first) = it.next() {
                for &v in it {
                    let a = find(&mut parent, first);
                    let b = find(&mut parent, v);
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        let mut groups: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for v in 0..n {
            let r = find(&mut parent, v);
            groups.entry(r).or_default().insert(v);
        }
        groups.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::ast::Term;

    fn triple(s: &str, p: &str, o: &str) -> TriplePattern {
        let term = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                Term::var(v)
            } else {
                Term::iri(x)
            }
        };
        TriplePattern::new(term(s), term(p), term(o))
    }

    #[test]
    fn example_5_1_variable_predicate_query_is_cyclic() {
        // ?x1 ?x2 ?x3 . ?x3 :a ?x4 . ?x4 ?x2 ?x5 — the hypergraph captures
        // the join on ?x2 and is cyclic (Figure 2, right).
        let triples = [
            triple("?x1", "?x2", "?x3"),
            triple("?x3", "a", "?x4"),
            triple("?x4", "?x2", "?x5"),
        ];
        let h = Hypergraph::from_triples(&triples, &[]);
        assert_eq!(h.vertex_count(), 5);
        assert_eq!(h.edge_count(), 3);
        assert!(!h.is_acyclic());
    }

    #[test]
    fn chain_query_hypergraph_is_acyclic() {
        let triples = [
            triple("?x1", "a", "?x2"),
            triple("?x2", "b", "?x3"),
            triple("?x3", "c", "?x4"),
        ];
        let h = Hypergraph::from_triples(&triples, &[]);
        assert!(h.is_acyclic());
    }

    #[test]
    fn cycle_query_hypergraph_is_cyclic() {
        let triples = [
            triple("?a", "p", "?b"),
            triple("?b", "p", "?c"),
            triple("?c", "p", "?a"),
        ];
        let h = Hypergraph::from_triples(&triples, &[]);
        assert!(!h.is_acyclic());
    }

    #[test]
    fn constants_are_not_vertices() {
        let triples = [triple("?x", "p", "c1"), triple("c2", "q", "c3")];
        let h = Hypergraph::from_triples(&triples, &[]);
        assert_eq!(h.vertex_count(), 1);
        // The fully-constant triple contributes no edge.
        assert_eq!(h.edge_count(), 1);
        assert!(h.is_acyclic());
    }

    #[test]
    fn star_query_is_acyclic() {
        let triples = [
            triple("?c", "p", "?l1"),
            triple("?c", "q", "?l2"),
            triple("?c", "r", "?l3"),
        ];
        let h = Hypergraph::from_triples(&triples, &[]);
        assert!(h.is_acyclic());
    }

    #[test]
    fn equalities_collapse_vertices() {
        let triples = [triple("?x", "p", "?y"), triple("?z", "q", "?w")];
        let h = Hypergraph::from_triples(&triples, &[("y".to_string(), "z".to_string())]);
        assert_eq!(h.vertex_count(), 3);
        assert!(h.is_acyclic());
        assert_eq!(h.connected_components().len(), 1);
    }

    #[test]
    fn reduced_edges_drop_duplicates_and_subsumed() {
        let triples = [
            triple("?x", "p", "?y"),
            triple("?x", "q", "?y"),
            triple("?x", "r", "c"),
        ];
        let h = Hypergraph::from_triples(&triples, &[]);
        assert_eq!(h.edge_count(), 3);
        assert_eq!(h.reduced_edges().len(), 1);
    }

    #[test]
    fn components_split_disconnected_queries() {
        let triples = [triple("?a", "p", "?b"), triple("?c", "p", "?d")];
        let h = Hypergraph::from_triples(&triples, &[]);
        assert_eq!(h.connected_components().len(), 2);
    }
}
