//! Exact treewidth computation for query graphs (Section 6.2).
//!
//! Query graphs in SPARQL logs are tiny (almost all have fewer than a dozen
//! nodes), so exact computation is feasible:
//!
//! * treewidth 0 — no edges;
//! * treewidth 1 — forests;
//! * treewidth ≤ 2 — recognised by the classic reduction: repeatedly remove
//!   degree-≤1 vertices and *bypass* degree-2 vertices (connecting their two
//!   neighbours); the graph has treewidth ≤ 2 iff this empties it;
//! * otherwise, an exact elimination-ordering search with memoisation decides
//!   `tw ≤ k` for increasing `k` (graphs up to 63 nodes). For larger graphs a
//!   greedy min-fill upper bound is returned — such graphs do not occur in
//!   the corpora studied here.

use crate::graph::CanonicalGraph;
use std::collections::{BTreeSet, HashMap};

/// The result of a treewidth computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Treewidth {
    /// The exact treewidth.
    Exact(usize),
    /// An upper bound (returned only for graphs larger than the exact-search
    /// threshold).
    UpperBound(usize),
}

impl Treewidth {
    /// The numeric value (exact or upper bound).
    pub fn value(&self) -> usize {
        match self {
            Treewidth::Exact(k) | Treewidth::UpperBound(k) => *k,
        }
    }

    /// True if the value is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, Treewidth::Exact(_))
    }
}

/// Maximum node count for which the exact elimination search is attempted.
const EXACT_LIMIT: usize = 63;

/// Computes the treewidth of a canonical graph.
pub fn treewidth(g: &CanonicalGraph) -> Treewidth {
    if g.edge_count() == 0 {
        return Treewidth::Exact(0);
    }
    if !g.has_cycle() {
        return Treewidth::Exact(1);
    }
    if has_treewidth_at_most_2(g) {
        return Treewidth::Exact(2);
    }
    if g.node_count() > EXACT_LIMIT {
        return Treewidth::UpperBound(min_fill_upper_bound(g));
    }
    let adj = bitmask_adjacency(g);
    let upper = min_fill_upper_bound(g);
    for k in 3..=upper {
        let mut memo = HashMap::new();
        let all = (0..g.node_count()).fold(0u64, |m, v| m | (1 << v));
        if tw_at_most(&adj, all, k, &mut memo) {
            return Treewidth::Exact(k);
        }
    }
    Treewidth::Exact(upper)
}

/// Decides whether the graph has treewidth at most two, using the
/// series-parallel style reduction.
pub fn has_treewidth_at_most_2(g: &CanonicalGraph) -> bool {
    let n = g.node_count();
    let mut adj: Vec<BTreeSet<usize>> = g.adj.clone();
    let mut alive: Vec<bool> = vec![true; n];
    let mut remaining = n;
    loop {
        let mut changed = false;
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let deg = adj[v].len();
            if deg <= 1 {
                // Remove leaf / isolated vertex.
                let neighbours: Vec<usize> = adj[v].iter().copied().collect();
                for u in neighbours {
                    adj[u].remove(&v);
                }
                adj[v].clear();
                alive[v] = false;
                remaining -= 1;
                changed = true;
            } else if deg == 2 {
                // Bypass: connect the two neighbours and remove v.
                let mut it = adj[v].iter().copied();
                let a = it.next().expect("degree 2");
                let b = it.next().expect("degree 2");
                adj[a].remove(&v);
                adj[b].remove(&v);
                if a != b {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
                adj[v].clear();
                alive[v] = false;
                remaining -= 1;
                changed = true;
            }
        }
        if remaining == 0 {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

fn bitmask_adjacency(g: &CanonicalGraph) -> Vec<u64> {
    let n = g.node_count();
    let mut adj = vec![0u64; n];
    for (v, mask) in adj.iter_mut().enumerate() {
        for &w in &g.adj[v] {
            *mask |= 1 << w;
        }
    }
    adj
}

/// Memoised check: can the subgraph induced by `remaining` (with the original
/// adjacency, vertices outside `remaining` already eliminated and their
/// neighbourhoods made cliques, folded into `adj`) be eliminated with bags of
/// size ≤ k+1? We pass the *current* adjacency implicitly by recomputing the
/// fill-in: when a vertex is eliminated, its neighbours within `remaining`
/// become a clique. To keep the recursion simple we recompute neighbourhoods
/// on the fly from a mutable adjacency copy.
fn tw_at_most(adj: &[u64], remaining: u64, k: usize, memo: &mut HashMap<u64, bool>) -> bool {
    if remaining.count_ones() as usize <= k + 1 {
        return true;
    }
    if let Some(&r) = memo.get(&remaining) {
        return r;
    }
    let n = adj.len();
    let mut result = false;
    for v in 0..n {
        if remaining & (1 << v) == 0 {
            continue;
        }
        // Neighbourhood of v in the *eliminated* graph: vertices reachable
        // from v through already-eliminated vertices form a clique with v.
        let neigh = eliminated_neighbourhood(adj, remaining, v);
        if (neigh.count_ones() as usize) <= k && tw_at_most(adj, remaining & !(1 << v), k, memo) {
            result = true;
            break;
        }
    }
    memo.insert(remaining, result);
    result
}

/// The neighbourhood of `v` in the graph where all vertices outside
/// `remaining` have been eliminated: u is a neighbour iff there is a path
/// from v to u whose internal vertices are all eliminated.
fn eliminated_neighbourhood(adj: &[u64], remaining: u64, v: usize) -> u64 {
    let eliminated = !remaining;
    let mut seen = 1u64 << v;
    let mut frontier = 1u64 << v;
    let mut neighbours = 0u64;
    while frontier != 0 {
        let mut next = 0u64;
        let mut f = frontier;
        while f != 0 {
            let u = f.trailing_zeros() as usize;
            f &= f - 1;
            let mut nbrs = adj[u] & !seen;
            while nbrs != 0 {
                let w = nbrs.trailing_zeros() as usize;
                nbrs &= nbrs - 1;
                seen |= 1 << w;
                if remaining & (1 << w) != 0 {
                    neighbours |= 1 << w;
                } else if eliminated & (1 << w) != 0 {
                    next |= 1 << w;
                }
            }
        }
        frontier = next;
    }
    neighbours & !(1 << v)
}

/// A greedy min-fill elimination producing an upper bound on the treewidth.
pub fn min_fill_upper_bound(g: &CanonicalGraph) -> usize {
    let n = g.node_count();
    let mut adj: Vec<BTreeSet<usize>> = g.adj.clone();
    let mut alive: BTreeSet<usize> = (0..n).collect();
    let mut width = 0;
    while !alive.is_empty() {
        // Pick the vertex whose elimination adds the fewest fill edges.
        let mut best_v = usize::MAX;
        let mut best_fill = usize::MAX;
        for &v in &alive {
            let nbrs: Vec<usize> = adj[v].iter().copied().collect();
            let mut fill = 0usize;
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    if !adj[nbrs[i]].contains(&nbrs[j]) {
                        fill += 1;
                    }
                }
            }
            if fill < best_fill {
                best_fill = fill;
                best_v = v;
            }
        }
        let v = best_v;
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        width = width.max(nbrs.len());
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                adj[nbrs[i]].insert(nbrs[j]);
                adj[nbrs[j]].insert(nbrs[i]);
            }
        }
        for &u in &nbrs {
            adj[u].remove(&v);
        }
        adj[v].clear();
        alive.remove(&v);
    }
    width.max(if g.edge_count() > 0 { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphMode;
    use sparqlog_parser::ast::{Term, TriplePattern};

    fn graph(edges: &[(&str, &str)]) -> CanonicalGraph {
        let triples: Vec<TriplePattern> = edges
            .iter()
            .map(|(s, o)| TriplePattern::new(Term::var(*s), Term::iri("p"), Term::var(*o)))
            .collect();
        CanonicalGraph::from_triples(&triples, &[], GraphMode::WithConstants).unwrap()
    }

    #[test]
    fn forest_has_treewidth_one() {
        let g = graph(&[("a", "b"), ("b", "c"), ("d", "e")]);
        assert_eq!(treewidth(&g), Treewidth::Exact(1));
    }

    #[test]
    fn empty_graph_has_treewidth_zero() {
        assert_eq!(treewidth(&CanonicalGraph::default()), Treewidth::Exact(0));
    }

    #[test]
    fn cycle_has_treewidth_two() {
        let g = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]);
        assert_eq!(treewidth(&g), Treewidth::Exact(2));
    }

    #[test]
    fn flower_has_treewidth_two() {
        let g = graph(&[
            ("x", "a"),
            ("a", "t"),
            ("x", "b"),
            ("b", "t"),
            ("x", "s1"),
            ("s1", "s2"),
        ]);
        assert_eq!(treewidth(&g), Treewidth::Exact(2));
    }

    #[test]
    fn k4_has_treewidth_three() {
        let g = graph(&[
            ("a", "b"),
            ("a", "c"),
            ("a", "d"),
            ("b", "c"),
            ("b", "d"),
            ("c", "d"),
        ]);
        assert_eq!(treewidth(&g), Treewidth::Exact(3));
    }

    #[test]
    fn k23_plus_subject_edge_has_treewidth_two() {
        // A K_{2,3}-like query graph (two subjects sharing three value
        // variables) plus a direct edge between the subjects still reduces to
        // treewidth 2 via the degree-2 bypass rule.
        let g = graph(&[
            ("s", "nat"),
            ("s", "bp"),
            ("s", "gen"),
            ("o", "nat"),
            ("o", "bp"),
            ("o", "gen"),
            ("s", "o"),
        ]);
        let tw = treewidth(&g);
        assert!(tw.is_exact());
        assert_eq!(tw.value(), 2);
    }

    #[test]
    fn k23_has_treewidth_two() {
        let g = graph(&[
            ("s", "nat"),
            ("s", "bp"),
            ("s", "gen"),
            ("o", "nat"),
            ("o", "bp"),
            ("o", "gen"),
        ]);
        assert_eq!(treewidth(&g), Treewidth::Exact(2));
    }

    #[test]
    fn k5_has_treewidth_four() {
        let names = ["a", "b", "c", "d", "e"];
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in i + 1..5 {
                edges.push((names[i], names[j]));
            }
        }
        let g = graph(&edges);
        assert_eq!(treewidth(&g), Treewidth::Exact(4));
    }

    #[test]
    fn grid_3x3_has_treewidth_three() {
        // 3×3 grid graph, a classic treewidth-3 example.
        let mut edges = Vec::new();
        let name = |r: usize, c: usize| format!("n{r}{c}");
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push((name(r, c), name(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((name(r, c), name(r + 1, c)));
                }
            }
        }
        let edge_refs: Vec<(&str, &str)> = edges
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let g = graph(&edge_refs);
        assert_eq!(treewidth(&g), Treewidth::Exact(3));
    }

    #[test]
    fn min_fill_bound_is_at_least_exact() {
        let g = graph(&[
            ("a", "b"),
            ("b", "c"),
            ("c", "a"),
            ("c", "d"),
            ("d", "e"),
            ("e", "c"),
        ]);
        let exact = treewidth(&g).value();
        assert!(min_fill_upper_bound(&g) >= exact);
        assert_eq!(exact, 2);
    }
}
