//! End-to-end structural analysis of a single query: fragment membership,
//! canonical graph shape, treewidth and hypertree width.
//!
//! This is the per-query building block behind Table 4 / Table 9 and
//! Section 6.2 of the paper, combining the [`sparqlog_algebra`] fragment
//! machinery with this crate's graph and hypergraph analyses.

use crate::graph::CanonicalGraph;
use crate::hypergraph::Hypergraph;
use crate::hypertree::{generalized_hypertree_width, HypertreeWidth};
use crate::shape::ShapeReport;
use crate::treewidth::{treewidth, Treewidth};
use serde::{Deserialize, Serialize};
use sparqlog_algebra::fragments::{classify_fragments, variable_equalities, FragmentReport};
use sparqlog_algebra::pattern_tree::PatternTree;
use sparqlog_parser::ast::Query;
use sparqlog_parser::intern::Interner;

/// The structural analysis of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructuralReport {
    /// Fragment membership (CQ / CQF / CQOF / …).
    pub fragments: FragmentReport,
    /// Shape of the canonical graph (only for CQ-like queries without
    /// variable predicates).
    pub shape: Option<ShapeReport>,
    /// Shape of the canonical graph with constants excluded.
    pub shape_vars_only: Option<ShapeReport>,
    /// Exact treewidth of the canonical graph, when available.
    pub treewidth: Option<usize>,
    /// Girth (shortest cycle length) of the canonical graph, if cyclic.
    pub shortest_cycle: Option<usize>,
    /// Generalized hypertree width of the canonical hypergraph (computed for
    /// CQOF queries that use variable predicates, per Section 6.2).
    pub hypertree: Option<HypertreeReportEntry>,
    /// Number of triples feeding the structural analysis.
    pub triples: u32,
}

/// Serializable summary of a hypertree-width computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HypertreeReportEntry {
    /// The generalized hypertree width.
    pub width: usize,
    /// Number of decomposition nodes.
    pub nodes: usize,
    /// Whether the width is exact.
    pub exact: bool,
}

impl From<HypertreeWidth> for HypertreeReportEntry {
    fn from(h: HypertreeWidth) -> Self {
        HypertreeReportEntry {
            width: h.width,
            nodes: h.nodes,
            exact: h.exact,
        }
    }
}

impl StructuralReport {
    /// Analyses one query through the original multi-walk path: the fragment
    /// classification re-traverses the query and the pattern tree is rebuilt
    /// from scratch. Kept as the reference the differential tests compare the
    /// single-pass pipeline ([`StructuralReport::from_walk`]) against.
    pub fn of(query: &Query) -> StructuralReport {
        let fragments = classify_fragments(query);
        // Build the tree only when the structural analysis will use it,
        // matching the laziness of the original implementation.
        let tree = (fragments.in_cqof() && fragments.select_or_ask)
            .then(|| PatternTree::build(query))
            .flatten();
        StructuralReport::from_parts(fragments, tree.as_ref())
    }

    /// Analyses one query from a completed
    /// [`QueryWalk`](sparqlog_algebra::walk::QueryWalk): the fragment report
    /// and the pattern tree both come out of the walk's single traversal, so
    /// no part of the query is visited again.
    pub fn from_walk(fragments: FragmentReport, tree: Option<&PatternTree>) -> StructuralReport {
        StructuralReport::from_parts(fragments, tree)
    }

    /// [`StructuralReport::from_walk`] on the interned-term diet: the
    /// canonical graph is constructed through
    /// [`CanonicalGraph::from_triples_both_interned`], so node identity, the
    /// equality union-find and the node index run over `u32` symbols of the
    /// calling worker's [`Interner`] instead of freshly rendered label
    /// strings. The produced report is byte-identical to [`from_walk`]
    /// (differential-tested); only the allocation profile changes.
    ///
    /// [`from_walk`]: StructuralReport::from_walk
    pub fn from_walk_interned(
        fragments: FragmentReport,
        tree: Option<&PatternTree>,
        interner: &mut Interner,
    ) -> StructuralReport {
        StructuralReport::assemble(fragments, tree, |triples, equalities| {
            CanonicalGraph::from_triples_both_interned(triples, equalities, interner)
        })
    }

    /// Non-CQ-like queries get only their fragment classification; CQ-like
    /// queries additionally get a shape, treewidth and (when they use
    /// variable predicates) a hypertree width. The canonical graph is
    /// constructed **once**, in both modes simultaneously, through the
    /// string-keyed builder ([`CanonicalGraph::from_triples_both`]).
    fn from_parts(fragments: FragmentReport, tree: Option<&PatternTree>) -> StructuralReport {
        StructuralReport::assemble(fragments, tree, CanonicalGraph::from_triples_both)
    }

    /// The shared report assembly: the string and interned paths differ only
    /// in `build_graphs`, the dual-mode canonical-graph constructor handed
    /// the tree's triples and `?x = ?y` equalities. The built pair (with
    /// constants, variables only) feeds the shape, treewidth, girth and
    /// constants-excluded analyses; variable-predicate queries bypass it for
    /// the hypergraph.
    fn assemble(
        fragments: FragmentReport,
        tree: Option<&PatternTree>,
        build_graphs: impl FnOnce(
            &[&sparqlog_parser::ast::TriplePattern],
            &[(String, String)],
        ) -> Option<(CanonicalGraph, CanonicalGraph)>,
    ) -> StructuralReport {
        let mut report = StructuralReport {
            fragments,
            shape: None,
            shape_vars_only: None,
            treewidth: None,
            shortest_cycle: None,
            hypertree: None,
            triples: fragments.triples,
        };
        if !fragments.in_cqof() || !fragments.select_or_ask {
            return report;
        }
        // CQ-like query: gather its triples and equality filters through the
        // pattern tree (CQ and CQF queries are single-node trees; CQOF adds
        // the OPTIONAL levels, whose triples also enter the canonical graph).
        let Some(tree) = tree else {
            return report;
        };
        let triples = tree.all_triples();
        let filters = tree.all_filters();
        let equalities = variable_equalities(&filters);

        if fragments.has_var_predicate {
            // Graph analysis is not meaningful; use the hypergraph.
            let hg = Hypergraph::from_triple_refs(&triples, &equalities);
            report.hypertree = generalized_hypertree_width(&hg, 5).map(Into::into);
            return report;
        }
        if let Some((with_constants, vars_only)) = build_graphs(&triples, &equalities) {
            report.shape = Some(ShapeReport::classify(&with_constants));
            report.treewidth = Some(match treewidth(&with_constants) {
                Treewidth::Exact(k) | Treewidth::UpperBound(k) => k,
            });
            report.shortest_cycle = with_constants.girth();
            report.shape_vars_only = Some(ShapeReport::classify(&vars_only));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::parse_query;

    fn analyze(q: &str) -> StructuralReport {
        StructuralReport::of(&parse_query(q).unwrap())
    }

    #[test]
    fn chain_query_is_tree_shaped_with_treewidth_one() {
        let r = analyze("ASK WHERE {?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4}");
        let shape = r.shape.unwrap();
        assert!(shape.chain && shape.tree);
        assert_eq!(r.treewidth, Some(1));
        assert_eq!(r.shortest_cycle, None);
    }

    #[test]
    fn cycle_query_has_treewidth_two_and_girth() {
        let r = analyze("ASK WHERE {?a <p> ?b . ?b <p> ?c . ?c <p> ?a}");
        let shape = r.shape.unwrap();
        assert!(shape.cycle);
        assert_eq!(r.treewidth, Some(2));
        assert_eq!(r.shortest_cycle, Some(3));
    }

    #[test]
    fn variable_predicate_query_gets_hypertree_analysis() {
        let r = analyze("ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}");
        assert!(r.shape.is_none());
        let ht = r.hypertree.unwrap();
        assert_eq!(ht.width, 2);
    }

    #[test]
    fn optional_triples_enter_the_canonical_graph() {
        let r = analyze("SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } }");
        let shape = r.shape.unwrap();
        assert!(shape.tree);
        assert_eq!(r.triples, 2);
    }

    #[test]
    fn union_query_gets_no_structural_analysis() {
        let r = analyze("SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }");
        assert!(r.shape.is_none() && r.hypertree.is_none());
        assert!(!r.fragments.aof);
    }

    #[test]
    fn constants_excluded_mode_changes_single_edge_status() {
        // With constants, this query is a single edge (?x — constant); with
        // variables only, the graph has one node and no edge.
        let r = analyze("SELECT ?x WHERE { ?x <p> <http://const> }");
        assert!(r.shape.unwrap().single_edge);
        assert!(r.shape_vars_only.unwrap().empty);
    }

    #[test]
    fn equality_filter_can_create_cycles() {
        // Without the filter this is a chain; collapsing ?d = ?a closes it
        // into a cycle of length 3.
        let r = analyze("SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . ?c <p> ?d FILTER(?d = ?a) }");
        let shape = r.shape.unwrap();
        assert!(shape.cycle);
        assert_eq!(r.treewidth, Some(2));
    }

    #[test]
    fn describe_queries_are_skipped() {
        let r = analyze("DESCRIBE <http://r>");
        assert!(!r.fragments.select_or_ask);
        assert!(r.shape.is_none());
    }
}
