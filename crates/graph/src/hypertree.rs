//! Generalized hypertree width of query hypergraphs (Section 6.2).
//!
//! The paper used the `detkdecomp` tool to determine the (generalized)
//! hypertree width of the CQOF queries that use variables in predicate
//! position, finding widths 1, 2 and — for eight queries — 3. We implement a
//! det-k-decomp style search: acyclicity (width 1) is decided by the GYO
//! reduction, and for k ≥ 2 a memoised recursive separator search tries to
//! cover each sub-component with at most `k` hyperedges.
//!
//! Query hypergraphs are small (tens of edges at most), so the exhaustive
//! separator enumeration is well within budget; a configurable edge-count
//! limit guards against pathological inputs.

use crate::hypergraph::Hypergraph;
use std::collections::{BTreeSet, HashMap};

/// The outcome of a hypertree-width computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypertreeWidth {
    /// The (generalized) hypertree width.
    pub width: usize,
    /// The number of nodes in the decomposition found. For width-1
    /// (acyclic) hypergraphs this is the number of join-tree nodes, i.e. the
    /// number of distinct non-subsumed hyperedges, matching the convention
    /// used in the paper.
    pub nodes: usize,
    /// True if the width is exact; false if the search was cut off by the
    /// edge-count limit and `width` is only an upper bound from a greedy
    /// cover.
    pub exact: bool,
}

/// Maximum number of (reduced) hyperedges for which the exhaustive
/// det-k-decomp search runs. Larger hypergraphs receive a greedy upper bound.
pub const DEFAULT_EDGE_LIMIT: usize = 40;

/// Computes the generalized hypertree width of a hypergraph, searching widths
/// up to `max_k`.
///
/// Returns `None` if the hypergraph needs width larger than `max_k` (within
/// the exact search) — callers typically pass `max_k = 4` or so, since query
/// logs do not contain wider queries.
pub fn generalized_hypertree_width(h: &Hypergraph, max_k: usize) -> Option<HypertreeWidth> {
    generalized_hypertree_width_with_limit(h, max_k, DEFAULT_EDGE_LIMIT)
}

/// Like [`generalized_hypertree_width`] with an explicit edge-count limit for
/// the exact search.
pub fn generalized_hypertree_width_with_limit(
    h: &Hypergraph,
    max_k: usize,
    edge_limit: usize,
) -> Option<HypertreeWidth> {
    let edges = h.reduced_edges();
    if edges.is_empty() {
        return Some(HypertreeWidth {
            width: 0,
            nodes: 0,
            exact: true,
        });
    }
    if h.is_acyclic() {
        return Some(HypertreeWidth {
            width: 1,
            nodes: edges.len(),
            exact: true,
        });
    }
    if edges.len() > edge_limit {
        // Greedy upper bound: cover all vertices component by component with
        // a set-cover heuristic; the width is the number of edges needed for
        // the largest bag produced.
        let width = greedy_cover_bound(&edges);
        return Some(HypertreeWidth {
            width,
            nodes: 1,
            exact: false,
        });
    }
    let all_vertices: BTreeSet<usize> = edges.iter().flatten().copied().collect();
    for k in 2..=max_k {
        let mut solver = Solver {
            edges: &edges,
            k,
            memo: HashMap::new(),
        };
        if let Some(nodes) = solver.decompose(&all_vertices, &BTreeSet::new()) {
            return Some(HypertreeWidth {
                width: k,
                nodes,
                exact: true,
            });
        }
    }
    None
}

fn greedy_cover_bound(edges: &[BTreeSet<usize>]) -> usize {
    let mut uncovered: BTreeSet<usize> = edges.iter().flatten().copied().collect();
    let mut used = 0usize;
    while !uncovered.is_empty() {
        let best = edges
            .iter()
            .max_by_key(|e| e.intersection(&uncovered).count())
            .expect("non-empty edge list");
        let before = uncovered.len();
        for v in best {
            uncovered.remove(v);
        }
        used += 1;
        if uncovered.len() == before {
            break;
        }
    }
    used.max(2)
}

struct Solver<'a> {
    edges: &'a [BTreeSet<usize>],
    k: usize,
    memo: HashMap<(Vec<usize>, Vec<usize>), Option<usize>>,
}

impl Solver<'_> {
    /// Tries to decompose the sub-hypergraph induced by `component`, whose
    /// interface to the rest of the decomposition is `connector`. Returns the
    /// number of decomposition nodes used, or `None` if impossible with the
    /// solver's width `k`.
    fn decompose(
        &mut self,
        component: &BTreeSet<usize>,
        connector: &BTreeSet<usize>,
    ) -> Option<usize> {
        let key = (
            component.iter().copied().collect::<Vec<_>>(),
            connector.iter().copied().collect::<Vec<_>>(),
        );
        if let Some(cached) = self.memo.get(&key) {
            return *cached;
        }
        let result = self.decompose_inner(component, connector);
        self.memo.insert(key, result);
        result
    }

    fn decompose_inner(
        &mut self,
        component: &BTreeSet<usize>,
        connector: &BTreeSet<usize>,
    ) -> Option<usize> {
        let target: BTreeSet<usize> = component.union(connector).copied().collect();
        // Base case: a single bag of ≤ k edges covers everything.
        if let Some(()) = self.coverable(&target) {
            return Some(1);
        }
        // Otherwise try separators λ of at most k edges.
        let relevant: Vec<usize> = (0..self.edges.len())
            .filter(|&i| !self.edges[i].is_disjoint(&target))
            .collect();
        let mut best: Option<usize> = None;
        for lambda in subsets_up_to(&relevant, self.k) {
            if lambda.is_empty() {
                continue;
            }
            let bag: BTreeSet<usize> = lambda
                .iter()
                .flat_map(|&i| self.edges[i].iter().copied())
                .collect();
            // The bag must cover the connector and make progress on the
            // component.
            if !connector.iter().all(|v| bag.contains(v)) {
                continue;
            }
            if component.iter().all(|v| !bag.contains(v)) {
                continue;
            }
            // Split the remaining component vertices into connected parts.
            let rest: BTreeSet<usize> = component.difference(&bag).copied().collect();
            let parts = self.split_components(&rest);
            if parts.iter().any(|p| p.len() >= component.len()) {
                continue; // no progress
            }
            let mut nodes = 1usize;
            let mut ok = true;
            for part in &parts {
                // The child's connector: bag vertices adjacent to the part.
                let child_connector: BTreeSet<usize> = bag
                    .iter()
                    .copied()
                    .filter(|&v| {
                        self.edges
                            .iter()
                            .any(|e| e.contains(&v) && !e.is_disjoint(part))
                    })
                    .collect();
                match self.decompose(part, &child_connector) {
                    Some(n) => nodes += n,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                best = Some(best.map_or(nodes, |b: usize| b.min(nodes)));
                // A single feasible decomposition is enough for the width
                // decision; keep searching only to minimise node count a bit,
                // but cap the effort by stopping at the first solution.
                break;
            }
        }
        best
    }

    /// Returns `Some(())` if `target` can be covered by at most `k` edges.
    fn coverable(&self, target: &BTreeSet<usize>) -> Option<()> {
        let relevant: Vec<usize> = (0..self.edges.len())
            .filter(|&i| !self.edges[i].is_disjoint(target))
            .collect();
        for lambda in subsets_up_to(&relevant, self.k) {
            if lambda.is_empty() {
                continue;
            }
            let bag: BTreeSet<usize> = lambda
                .iter()
                .flat_map(|&i| self.edges[i].iter().copied())
                .collect();
            if target.iter().all(|v| bag.contains(v)) {
                return Some(());
            }
        }
        None
    }

    /// Splits a vertex set into connected components (w.r.t. the hyperedges).
    fn split_components(&self, vertices: &BTreeSet<usize>) -> Vec<BTreeSet<usize>> {
        let mut remaining: BTreeSet<usize> = vertices.clone();
        let mut out = Vec::new();
        while let Some(&start) = remaining.iter().next() {
            let mut comp = BTreeSet::new();
            let mut stack = vec![start];
            remaining.remove(&start);
            comp.insert(start);
            while let Some(v) = stack.pop() {
                for e in self.edges {
                    if e.contains(&v) {
                        for &w in e {
                            if remaining.contains(&w) {
                                remaining.remove(&w);
                                comp.insert(w);
                                stack.push(w);
                            }
                        }
                    }
                }
            }
            out.push(comp);
        }
        out
    }
}

/// Enumerates all subsets of `items` of size 1..=k (as vectors of items).
fn subsets_up_to(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let n = items.len();
    fn rec(
        items: &[usize],
        start: usize,
        k: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if !cur.is_empty() {
            out.push(cur.clone());
        }
        if cur.len() == k {
            return;
        }
        for i in start..items.len() {
            cur.push(items[i]);
            rec(items, i + 1, k, cur, out);
            cur.pop();
        }
    }
    let mut cur = Vec::with_capacity(k.min(n));
    rec(items, 0, k, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_parser::ast::{Term, TriplePattern};

    fn triple(s: &str, p: &str, o: &str) -> TriplePattern {
        let term = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                Term::var(v)
            } else {
                Term::iri(x)
            }
        };
        TriplePattern::new(term(s), term(p), term(o))
    }

    fn hg(triples: &[TriplePattern]) -> Hypergraph {
        Hypergraph::from_triples(triples, &[])
    }

    #[test]
    fn acyclic_chain_has_width_one_with_edge_count_nodes() {
        let h = hg(&[
            triple("?a", "p", "?b"),
            triple("?b", "p", "?c"),
            triple("?c", "p", "?d"),
        ]);
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert_eq!(w.width, 1);
        assert_eq!(w.nodes, 3);
        assert!(w.exact);
    }

    #[test]
    fn triangle_of_binary_edges_has_width_two() {
        let h = hg(&[
            triple("?a", "p", "?b"),
            triple("?b", "p", "?c"),
            triple("?c", "p", "?a"),
        ]);
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert_eq!(w.width, 2);
        assert!(w.exact);
    }

    #[test]
    fn example_5_1_query_has_width_two() {
        let h = hg(&[
            triple("?x1", "?x2", "?x3"),
            triple("?x3", "a", "?x4"),
            triple("?x4", "?x2", "?x5"),
        ]);
        assert!(!h.is_acyclic());
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert_eq!(w.width, 2);
    }

    #[test]
    fn long_cycle_has_width_two() {
        let mut triples = Vec::new();
        let n = 6;
        for i in 0..n {
            triples.push(triple(
                &format!("?v{i}"),
                "p",
                &format!("?v{}", (i + 1) % n),
            ));
        }
        let h = hg(&triples);
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert_eq!(w.width, 2);
        assert!(w.nodes >= 2);
    }

    #[test]
    fn grid_3x3_of_binary_edges_needs_width_at_least_two() {
        let mut triples = Vec::new();
        let name = |r: usize, c: usize| format!("?n{r}{c}");
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    triples.push(triple(&name(r, c), "p", &name(r, c + 1)));
                }
                if r + 1 < 3 {
                    triples.push(triple(&name(r, c), "p", &name(r + 1, c)));
                }
            }
        }
        let h = hg(&triples);
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert!(w.width >= 2, "3x3 grid must not be acyclic");
        assert!(w.width <= 3);
    }

    #[test]
    fn empty_hypergraph_has_width_zero() {
        let h = hg(&[triple("a", "p", "b")]); // all constants, no edge
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert_eq!(w.width, 0);
        assert_eq!(w.nodes, 0);
    }

    #[test]
    fn single_triple_has_width_one_single_node() {
        let h = hg(&[triple("?s", "?p", "?o")]);
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert_eq!(w.width, 1);
        assert_eq!(w.nodes, 1);
    }

    #[test]
    fn edge_limit_falls_back_to_greedy_bound() {
        let h = hg(&[
            triple("?a", "p", "?b"),
            triple("?b", "p", "?c"),
            triple("?c", "p", "?a"),
        ]);
        let w = generalized_hypertree_width_with_limit(&h, 4, 2).unwrap();
        assert!(!w.exact);
        assert!(w.width >= 2);
    }

    #[test]
    fn ternary_hyperedges_make_cycles_cheap() {
        // Two ternary edges sharing two vertices plus a closing binary edge:
        // coverable by the two ternary edges → width 2.
        let h = hg(&[
            triple("?a", "?p", "?b"),
            triple("?b", "?q", "?c"),
            triple("?c", "r", "?a"),
        ]);
        let w = generalized_hypertree_width(&h, 4).unwrap();
        assert_eq!(w.width, 2);
    }
}
